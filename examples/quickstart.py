#!/usr/bin/env python
"""Quickstart: compress a path set with OFFS, retrieve individual paths.

Walks the core API end to end in under a minute:

1. generate a small synthetic path set,
2. fit an OFFS codec (builds the supernode table),
3. load everything into a compressed store,
4. retrieve single paths without touching the rest,
5. persist the archive to disk and load it back.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import CompressedPathStore, OFFSCodec, OFFSConfig
from repro.analysis.stats import format_table
from repro.core.serialize import dumps_store, loads_store
from repro.workloads import make_dataset


def main() -> None:
    # 1. A scaled-down version of the paper's Alibaba Cloud workload:
    #    IP-hop transaction paths over a tiered service topology.
    dataset = make_dataset("alibaba", "small")
    stats = dataset.stats()
    print(f"dataset: {stats.path_number:,} paths, {stats.node_number:,} vertices, "
          f"avg length {stats.avg_length:.1f}")

    # 2. Fit OFFS.  The paper's deployed defaults are delta=8, alpha=5,
    #    i=4 iterations, sampling 1 path in 2^k.  At this scale a smaller
    #    sample exponent keeps the training sample representative.
    codec = OFFSCodec(OFFSConfig(iterations=4, sample_exponent=2))
    codec.fit(dataset)
    print(f"table:   {codec.build_report.summary()}")

    # 3. Compress everything into a randomly accessible store.
    store = CompressedPathStore.from_dataset(dataset, codec.table)
    print(f"ratio:   CR = {store.compression_ratio():.2f} "
          f"({store.raw_size_bytes():,} B -> {store.compressed_size_bytes():,} B)")

    # 4. Retrieve one path — only that path is decompressed.
    path_id = 1234
    original = dataset[path_id]
    restored = store.retrieve(path_id)
    assert restored == original
    print(f"path {path_id}: {list(restored)[:6]}... retrieved losslessly")

    # 5. Persist and reload.
    blob = dumps_store(store)
    with tempfile.TemporaryDirectory() as tmp:
        archive = Path(tmp) / "paths.offs"
        archive.write_bytes(blob)
        reloaded = loads_store(archive.read_bytes())
        assert reloaded.retrieve(path_id) == original
        print(f"archive: {archive.stat().st_size:,} bytes on disk, reload OK")

    # Bonus: what the table looks like.
    rows = [("supernode id", "subpath")]
    for sid, subpath in list(codec.table)[:5]:
        rows.append((sid, str(list(subpath))))
    print()
    print(format_table(rows, title="first supernode table entries"))


if __name__ == "__main__":
    main()
