#!/usr/bin/env python
"""Cloud monitoring: the paper's two operational use cases (Cases 1 & 2).

Scenario (paper Figures 1–2): every transaction through Alibaba Cloud is
recorded as an IP-hop path.  Operations keeps the archive compressed with
OFFS, yet must answer, without bulk decompression:

* **Case 1 — identifying affected nodes.**  A host server misbehaves; find
  every path through it and hence every machine and client affected.
* **Case 2 — locating anomalies.**  A customer reports problems between a
  client and a terminal server; inspect all intermediate hops.

Run:  python examples/cloud_monitoring.py
"""

from __future__ import annotations

import time

from repro import CompressedPathStore, OFFSCodec, OFFSConfig, PathQueryEngine
from repro.graphs.topology import CloudTopology
from repro.paths.dataset import PathDataset
from repro.paths.preprocess import preprocess_paths


def main() -> None:
    # Ingest a day's worth of (scaled-down) transaction logs.
    topology = CloudTopology(clients=1500, seed=11)
    raw_paths = topology.generate_paths(8000, seed=12)
    dataset, report = preprocess_paths(raw_paths, name="transactions")
    print(f"ingest:  {report.summary()}")

    codec = OFFSCodec(OFFSConfig(iterations=4, sample_exponent=3))
    store = CompressedPathStore.from_codec(dataset, codec)
    print(f"archive: {len(store):,} paths compressed, CR = {store.compression_ratio():.2f}")

    engine = PathQueryEngine(store)
    print(f"index:   {engine.index.vertex_count():,} vertices indexed\n")

    # ------------------------------------------------------------------
    # Case 1: a web server starts failing.
    # ------------------------------------------------------------------
    issue_server = topology.pod_routes[0][2]  # the busiest pod's web server
    started = time.perf_counter()
    affected_paths = engine.affected_paths(issue_server)
    affected = engine.affected_vertices(issue_server)
    elapsed_ms = (time.perf_counter() - started) * 1e3
    clients = [v for v in affected if v < topology.clients]
    print(f"CASE 1   anomaly on web server {issue_server}")
    print(f"         {len(affected_paths):,} transactions pass through it "
          f"({len(affected_paths) / len(store):.1%} of the archive)")
    print(f"         {len(affected):,} machines/clients affected, "
          f"of which {len(clients):,} are client IPs")
    print(f"         answered in {elapsed_ms:.1f} ms, decompressing only the matches\n")

    # ------------------------------------------------------------------
    # Case 2: a customer reports failures reaching a database.
    # ------------------------------------------------------------------
    sample = dataset[42]
    client_ip, terminal_ip = sample[0], sample[-1]
    started = time.perf_counter()
    routes = engine.paths_between(client_ip, terminal_ip)
    hops = engine.intermediate_vertices(client_ip, terminal_ip)
    elapsed_ms = (time.perf_counter() - started) * 1e3
    print(f"CASE 2   client {client_ip} -> terminal {terminal_ip}")
    print(f"         {len(routes)} recorded transactions between the pair")
    print(f"         {len(hops)} distinct intermediate machines to inspect")
    print(f"         answered in {elapsed_ms:.1f} ms\n")

    # Sanity: everything the engine returned is exact.
    brute_force = [p for p in dataset if issue_server in p]
    assert affected_paths == brute_force
    print("verified: query answers match a brute-force scan of the originals")


if __name__ == "__main__":
    main()
