#!/usr/bin/env python
"""Taxi trajectories: the full Section VI-A preprocessing pipeline, then OFFS.

The paper's public datasets are raw GPS traces.  This example rebuilds that
situation synthetically and walks the exact preparation the paper describes:

1. record noisy GPS point streams over a road network (jitter, repeated
   fixes, backtracking),
2. **new id** — snap points to grid cells, producing integer walks,
3. **simple path** — collapse adjacent duplicates, cut cycles, prune
   trivial fragments,
4. **group set** — organize paths by their terminals,
5. compress each group and the whole set with OFFS; compare with the
   generic Dlz4 baseline.

Run:  python examples/taxi_trajectories.py
"""

from __future__ import annotations

from repro import CompressedPathStore, OFFSCodec, OFFSConfig
from repro.analysis.metrics import measure_codec
from repro.baselines.dlz4 import Dlz4Codec
from repro.graphs.road import RoadNetwork
from repro.graphs.trajectory import TrajectoryRecorder
from repro.paths.preprocess import group_by_terminals, preprocess_paths


def main() -> None:
    # 1. Record raw GPS traces for a fleet.
    network = RoadNetwork(width=40, height=40, hotspots=16, seed=7)
    recorder = TrajectoryRecorder(
        network, fixes_per_cell=(1, 3), jitter=0.10, backtrack_probability=0.03
    )
    raw_walks = recorder.record_dataset(trip_count=3000, seed=8)
    total_fixes = sum(len(w) for w in raw_walks)
    print(f"recorded: {len(raw_walks):,} trips, {total_fixes:,} grid-snapped GPS fixes")

    # 2+3. The paper's preprocessing: noise removal, cycle cutting, pruning.
    dataset, report = preprocess_paths(raw_walks, name="taxi")
    print(f"repair:   {report.summary()}")
    stats = dataset.stats()
    print(f"paths:    avg length {stats.avg_length:.1f}, max {stats.max_length}, "
          f"{stats.id_number:,} distinct cells\n")

    # 4. Group sets by terminals (the paper's example grouping rule).
    groups = group_by_terminals(dataset)
    big = sorted(groups.values(), key=len, reverse=True)[:3]
    print("top origin->destination groups:")
    for group in big:
        print(f"  {group.name}: {len(group)} trips")
    print()

    # 5. Compress; compare OFFS against the generic baseline.
    offs = measure_codec(OFFSCodec(OFFSConfig(iterations=4, sample_exponent=2)), dataset)
    dlz4 = measure_codec(Dlz4Codec(sample_exponent=2), dataset)
    print(f"OFFS:     CR = {offs.compression_ratio:.2f} "
          f"(rule {offs.rule_bytes:,} B)")
    print(f"Dlz4:     CR = {dlz4.compression_ratio:.2f} "
          f"(dictionary {dlz4.rule_bytes:,} B)")

    # Per-group compression also works (distinct archives per terminal pair).
    group_store = CompressedPathStore.from_codec(
        big[0], OFFSCodec(OFFSConfig(iterations=3, sample_exponent=0))
    )
    print(f"group:    {big[0].name} compresses alone at "
          f"CR = {group_store.compression_ratio():.2f}")

    assert group_store.retrieve_all() == list(big[0])
    print("\nverified: every trip decompresses losslessly")


if __name__ == "__main__":
    main()
