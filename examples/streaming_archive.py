#!/usr/bin/env python
"""Streaming ingestion with drift detection and segment rotation.

The paper's deployment keeps collecting: "there are massive data to be
collected by more tables every day", and at scale "it is preferable to adopt
a more advanced stream mode that simultaneously handles reading and
processing".  This example runs that operational loop:

1. a :class:`StreamingCompressor` warms up on the first arriving paths,
   builds a table and compresses everything after in flight;
2. traffic drifts (a deployment migration changes the hot routes) — the
   windowed ratio monitor flags it;
3. the operator rotates a :class:`SegmentedArchive`: a fresh segment with a
   table trained on recent traffic, old segments staying decodable;
4. queries keep working across segments.

Run:  python examples/streaming_archive.py
"""

from __future__ import annotations

from repro.core.config import OFFSConfig
from repro.core.segment import SegmentedArchive
from repro.core.stream import StreamingCompressor
from repro.graphs.topology import CloudTopology
from repro.queries.analytics import compression_summary


def main() -> None:
    config = OFFSConfig(iterations=4, sample_exponent=0)

    # Epoch 1: the original deployment.
    old_topology = CloudTopology(clients=400, seed=21)
    epoch1 = old_topology.generate_paths(3000, seed=22)
    # Epoch 2: a migration re-homes the middle tier (fresh machine ids).
    new_topology = CloudTopology(clients=400, seed=77)
    shift = old_topology.vertex_count + 1000
    epoch2 = [tuple(v + shift for v in p) for p in new_topology.generate_paths(2000, seed=23)]

    # ------------------------------------------------------------------
    # 1+2: stream epoch 1, then watch the drift monitor catch epoch 2.
    # ------------------------------------------------------------------
    stream = StreamingCompressor(
        config=config, train_after=1000, window=400, refit_ratio=0.7,
        base_id=10_000_000,
    )
    stream.feed_many(epoch1)
    ratio_before = compression_summary(stream.store)["symbol_ratio"]
    print(f"epoch 1: {len(stream.store):,} paths streamed, "
          f"symbol ratio {ratio_before:.2f}, drifted={stream.drifted}")

    stream.feed_many(epoch2[:600])
    print(f"epoch 2 begins: after 600 drifted paths -> drifted={stream.drifted}")
    assert stream.drifted, "the regime change must be detected"

    # ------------------------------------------------------------------
    # 3: respond by rotating a segmented archive.
    # ------------------------------------------------------------------
    archive = SegmentedArchive(config=config, base_id=10_000_000)
    archive.start_segment(epoch1[:1000])      # table from epoch-1 traffic
    archive.extend(epoch1)
    print(f"\nsegment 0 sealed: {len(archive):,} paths, "
          f"CR {archive.compression_ratio():.2f}")

    archive.rotate(epoch2[:600])              # new table from recent traffic
    archive.extend(epoch2)
    print(f"segment 1 active: {len(archive):,} paths total in "
          f"{archive.segment_count} segments, CR {archive.compression_ratio():.2f}")

    # ------------------------------------------------------------------
    # 4: cross-segment retrieval and queries still work.
    # ------------------------------------------------------------------
    first, last = archive.retrieve(0), archive.retrieve(len(archive) - 1)
    assert first == tuple(epoch1[0]) and last == tuple(epoch2[-1])

    issue = epoch2[0][3]  # a machine introduced by the migration
    hits = archive.paths_containing(issue)
    print(f"\nCase 1 across segments: machine {issue} appears in "
          f"{len(hits):,} archived transactions")

    blob = archive.dumps()
    restored = SegmentedArchive.loads(blob, config=config)
    assert restored.retrieve_all() == archive.retrieve_all()
    print(f"archive serializes to {len(blob):,} bytes and reloads losslessly")


if __name__ == "__main__":
    main()
