#!/usr/bin/env python
"""Parameter tuning: reproduce the paper's Exp-1 trade-off study in miniature.

OFFS has two operational knobs (paper Section VI-C, Exp-1):

* ``iterations`` (i) — more merge/expansion passes refine the table:
  compression ratio rises fast until candidates reach δ (iteration 3 with
  δ = 8), then flattens while speed keeps dropping;
* ``sample_exponent`` (k) — training on 1 path in 2^k: speed rises steeply
  with k, ratio decays slowly until the sample stops being representative.

The paper picks (i=4, k=7) as the default mode and (i=2, k=7) as the fast
mode OFFS*.  This script sweeps both knobs on a scaled workload and prints
the same curves, so you can pick your own operating point.

Run:  python examples/tuning_parameters.py
"""

from __future__ import annotations

from repro import OFFSCodec, OFFSConfig
from repro.analysis.metrics import measure_codec
from repro.analysis.stats import format_table
from repro.workloads import make_dataset


def sweep_iterations(dataset, k: int) -> list:
    rows = [("i", "CR", "CS (MB/s)", "table entries")]
    for i in range(0, 8):
        codec = OFFSCodec(OFFSConfig(iterations=i, sample_exponent=k))
        m = measure_codec(codec, dataset)
        rows.append(
            (i, round(m.compression_ratio, 2), round(m.compression_speed_mbps, 2),
             len(codec.table))
        )
    return rows

def sweep_sampling(dataset, i: int) -> list:
    rows = [("k", "sampled", "CR", "CS (MB/s)")]
    for k in range(0, 9):
        codec = OFFSCodec(OFFSConfig(iterations=i, sample_exponent=k))
        m = measure_codec(codec, dataset)
        rows.append(
            (k, max(1, len(dataset) // (1 << k)), round(m.compression_ratio, 2),
             round(m.compression_speed_mbps, 2))
        )
    return rows


def main() -> None:
    dataset = make_dataset("alibaba", "small")
    print(f"workload: {dataset.stats().path_number:,} paths "
          f"(avg length {dataset.stats().avg_length:.1f})\n")

    print(format_table(sweep_iterations(dataset, k=2),
                       title="Exp-1a: iterations i (k=2)"))
    print("\n-> CR gains concentrate in i <= 3; afterwards you pay speed "
          "for little ratio.\n")

    print(format_table(sweep_sampling(dataset, i=4),
                       title="Exp-1b: sample exponent k (i=4)"))
    print("\n-> small k wastes time re-reading the data; large k starves "
          "the table. The knee is where 2^k approaches the path count.\n")

    default = measure_codec(OFFSCodec(OFFSConfig(iterations=4, sample_exponent=2)), dataset)
    fast = measure_codec(OFFSCodec(OFFSConfig(iterations=2, sample_exponent=2)), dataset)
    print(f"default mode (i=4): CR {default.compression_ratio:.2f}, "
          f"CS {default.compression_speed_mbps:.2f} MB/s")
    print(f"fast mode    (i=2): CR {fast.compression_ratio:.2f}, "
          f"CS {fast.compression_speed_mbps:.2f} MB/s  <- OFFS*")


if __name__ == "__main__":
    main()
