"""Counters, gauges and timers — the metrics half of :mod:`repro.obs`.

A :class:`MetricsRegistry` is a named bag of three instrument kinds:

* :class:`Counter` — a monotonically increasing integer (``probes``,
  ``paths compressed``, ``bytes written``);
* :class:`Gauge` — a last-write-wins scalar (``table entries``,
  ``compressed bytes``);
* :class:`Timer` — an accumulator of monotonic-clock durations
  (count / total / min / max), fed by :meth:`MetricsRegistry.timeit` in
  either context-manager or decorator form.

Two properties matter for this repository:

**Disabled mode is free.**  A registry constructed with ``enabled=False``
hands out shared null instruments whose methods do nothing, so call sites
never need ``if`` guards.  The hot paths in :mod:`repro.core` go one step
further and skip the registry entirely when no instrumentation is active
(see :mod:`repro.obs.runtime`), keeping the paper-fidelity benchmarks
honest.

**Snapshots merge.**  :meth:`MetricsRegistry.as_dict` produces a plain
JSON-safe dict and :meth:`MetricsRegistry.merge_dict` folds one back in —
counters add, gauges last-write-win, timers pool their distributions.
That pair is how :mod:`repro.core.parallel` reconciles per-worker metrics
across process boundaries.
"""

from __future__ import annotations

import functools
import json
import time
from typing import Any, Callable, Dict, Mapping, Optional


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, by: int = 1) -> None:
        """Add *by* (default 1) to the counter."""
        self.value += by

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A last-write-wins scalar metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current level of whatever this gauge watches."""
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Timer:
    """An accumulator of durations measured on the monotonic clock."""

    __slots__ = ("name", "count", "total_seconds", "min_seconds", "max_seconds")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_seconds = 0.0
        self.min_seconds: Optional[float] = None
        self.max_seconds: Optional[float] = None

    def observe(self, seconds: float) -> None:
        """Fold one measured duration into the distribution."""
        self.count += 1
        self.total_seconds += seconds
        if self.min_seconds is None or seconds < self.min_seconds:
            self.min_seconds = seconds
        if self.max_seconds is None or seconds > self.max_seconds:
            self.max_seconds = seconds

    @property
    def mean_seconds(self) -> float:
        """Average observed duration (0.0 before any observation)."""
        return self.total_seconds / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "min_seconds": self.min_seconds if self.min_seconds is not None else 0.0,
            "max_seconds": self.max_seconds if self.max_seconds is not None else 0.0,
        }

    def __repr__(self) -> str:
        return f"Timer({self.name!r}, count={self.count}, total={self.total_seconds:.6f}s)"


class _TimerHandle:
    """One timing scope over a :class:`Timer` — ``with`` block or decorator.

    A fresh handle is created per :meth:`MetricsRegistry.timeit` call, so
    nested and concurrent scopes over the same timer never interfere.
    """

    __slots__ = ("_timer", "_started")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._started = 0.0

    def __enter__(self) -> "_TimerHandle":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        self._timer.observe(time.perf_counter() - self._started)
        return False

    def __call__(self, fn: Callable) -> Callable:
        timer = self._timer

        @functools.wraps(fn)
        def timed(*args: Any, **kwargs: Any) -> Any:
            started = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                timer.observe(time.perf_counter() - started)

        return timed


class _NullCounter:
    """Shared no-op counter handed out by disabled registries."""

    __slots__ = ()
    name = "<null>"
    value = 0

    def inc(self, by: int = 1) -> None:
        pass


class _NullGauge:
    """Shared no-op gauge handed out by disabled registries."""

    __slots__ = ()
    name = "<null>"
    value = 0.0

    def set(self, value: float) -> None:
        pass


class _NullTimerHandle:
    """Shared no-op timing scope: enters, exits and decorates for free."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimerHandle":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def __call__(self, fn: Callable) -> Callable:
        return fn


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_TIMER_HANDLE = _NullTimerHandle()


class MetricsRegistry:
    """A named collection of counters, gauges and timers.

    :param enabled: when ``False`` every accessor returns a shared null
        instrument and the registry stays permanently empty.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}

    # -- instruments ---------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter called *name*, created on first use."""
        if not self.enabled:
            return _NULL_COUNTER  # type: ignore[return-value]
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge:
        """The gauge called *name*, created on first use."""
        if not self.enabled:
            return _NULL_GAUGE  # type: ignore[return-value]
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge(name)
        return found

    def timer(self, name: str) -> Timer:
        """The timer called *name*, created on first use.

        Use :meth:`timeit` to measure a scope; this accessor exposes the
        accumulator itself (for :meth:`Timer.observe` and inspection).
        """
        if not self.enabled:
            timer = Timer(name)  # detached: observations are discarded
            return timer
        found = self._timers.get(name)
        if found is None:
            found = self._timers[name] = Timer(name)
        return found

    def timeit(self, name: str):
        """A fresh timing scope over timer *name*.

        Usable both ways::

            with registry.timeit("build.seconds"):
                ...

            @registry.timeit("compress.seconds")
            def compress(...): ...
        """
        if not self.enabled:
            return _NULL_TIMER_HANDLE
        return _TimerHandle(self.timer(name))

    # -- conveniences --------------------------------------------------------------

    def inc(self, name: str, by: int = 1) -> None:
        """Shorthand for ``registry.counter(name).inc(by)``."""
        self.counter(name).inc(by)

    def set_gauge(self, name: str, value: float) -> None:
        """Shorthand for ``registry.gauge(name).set(value)``."""
        self.gauge(name).set(value)

    def observe(self, name: str, seconds: float) -> None:
        """Shorthand for ``registry.timer(name).observe(seconds)``."""
        if self.enabled:
            self.timer(name).observe(seconds)

    # -- snapshot / merge ----------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """Current counter values, ``{name: value}``."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot of every instrument."""
        return {
            "counters": self.counters(),
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "timers": {name: t.as_dict() for name, t in sorted(self._timers.items())},
        }

    def merge_dict(self, data: Mapping[str, Any]) -> None:
        """Fold a snapshot produced by :meth:`as_dict` into this registry.

        Counters add, gauges last-write-win, timers pool count/total and
        widen min/max — the right semantics for reconciling per-worker
        metrics after a parallel fan-out.
        """
        if not self.enabled:
            return
        for name, value in data.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in data.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, stats in data.get("timers", {}).items():
            timer = self.timer(name)
            count = stats.get("count", 0)
            if not count:
                continue
            timer.count += count
            timer.total_seconds += stats.get("total_seconds", 0.0)
            low, high = stats.get("min_seconds", 0.0), stats.get("max_seconds", 0.0)
            if timer.min_seconds is None or low < timer.min_seconds:
                timer.min_seconds = low
            if timer.max_seconds is None or high > timer.max_seconds:
                timer.max_seconds = high

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's current state into this one."""
        self.merge_dict(other.as_dict())

    def reset(self) -> None:
        """Drop every instrument (the registry stays enabled)."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The :meth:`as_dict` snapshot as a JSON document."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._timers)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(enabled={self.enabled}, counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, timers={len(self._timers)})"
        )
