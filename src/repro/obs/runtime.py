"""Activation plumbing — how hot code finds the instrumentation, if any.

The design constraint is the acceptance bar of every perf PR in this
repository: with instrumentation off, the hot loops must run at full speed.
So there is exactly one global — the *active* :class:`Instrumentation`,
``None`` by default — and instrumented code pays one function call and one
``is None`` test to discover that nothing is listening::

    obs = get_active()
    if obs is not None:
        obs.registry.counter("compress.paths").inc(n)

Scoped activation is the public API::

    with instrumented() as obs:
        codec.fit(dataset)
    print(obs.to_json())

``activate`` / ``deactivate`` exist for the one case a ``with`` block cannot
express: multiprocessing workers, which activate their own instrumentation
at pool-initializer time and report snapshots back with each result chunk
(see :mod:`repro.core.parallel`).

Instrumentation is deliberately *not* inherited across a ``fork``: a child
that kept writing into the (copied) parent registry would lose every count.
Workers must activate their own.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import Any, Dict, Iterator, Optional

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanTracer


class Instrumentation:
    """A metrics registry and a span tracer, bundled for one observation run.

    :param registry: defaults to a fresh enabled :class:`MetricsRegistry`.
    :param tracer: defaults to a fresh enabled :class:`SpanTracer`; pass
        ``SpanTracer(enabled=False)`` for counters-only instrumentation
        (the multiprocessing workers do, to keep chunk results small).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else SpanTracer()

    def span(self, name: str, **attrs: Any):
        """Shorthand for ``self.tracer.span(name, **attrs)``."""
        return self.tracer.span(name, **attrs)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe combined state: ``{"metrics": ..., "spans": ...}``."""
        return {"metrics": self.registry.as_dict(), "spans": self.tracer.as_dict()}

    def to_json(self, indent: Optional[int] = 2) -> str:
        import json

        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def __repr__(self) -> str:
        return f"Instrumentation(registry={self.registry!r}, tracer={self.tracer!r})"


_ACTIVE: Optional[Instrumentation] = None


def get_active() -> Optional[Instrumentation]:
    """The currently active instrumentation, or ``None`` (the default)."""
    return _ACTIVE


def activate(instrumentation: Instrumentation) -> Instrumentation:
    """Make *instrumentation* the active sink until :func:`deactivate`.

    Prefer the :func:`instrumented` context manager; this imperative form is
    for process-lifetime activation (multiprocessing pool initializers).
    """
    global _ACTIVE
    _ACTIVE = instrumentation
    return instrumentation


def deactivate() -> None:
    """Clear the active instrumentation (back to zero-overhead mode)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def instrumented(
    instrumentation: Optional[Instrumentation] = None,
) -> Iterator[Instrumentation]:
    """Activate *instrumentation* (or a fresh one) for the scope of the block.

    Nests correctly: the previously active instrumentation (if any) is
    restored on exit, so a metrics-collecting CLI command can call library
    code that opens its own scoped observation.
    """
    global _ACTIVE
    inst = instrumentation if instrumentation is not None else Instrumentation()
    previous = _ACTIVE
    _ACTIVE = inst
    try:
        yield inst
    finally:
        _ACTIVE = previous


def active_span(name: str, **attrs: Any):
    """A span on the active tracer, or a free no-op context when off.

    The ``with active_span(...) as span`` idiom the core modules use; *span*
    is ``None`` whenever instrumentation is inactive or tracing disabled.
    """
    obs = _ACTIVE
    if obs is None:
        return nullcontext(None)
    return obs.tracer.span(name, **attrs)


def active_timer(name: str):
    """A timing scope on the active registry, or a free no-op context."""
    obs = _ACTIVE
    if obs is None:
        return nullcontext(None)
    return obs.registry.timeit(name)
