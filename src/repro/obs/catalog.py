"""The metric and span name catalog — single source of observability names.

Every counter, gauge, timer and span name used anywhere in this repository
is declared here, once, as a module-level constant.  Call sites import the
constant instead of repeating the string::

    from repro.obs.catalog import COMPRESS_PATHS
    registry.counter(COMPRESS_PATHS).inc(n)

Why a catalog instead of loose literals:

* **Cross-process conservation.**  The parallel differential tests assert
  that counter totals are identical across 1/2/4 worker processes.  That
  only holds if every process spells a metric the same way; a typo'd name
  silently forks a counter and the totals drift.
* **Dashboards aggregate on names.**  docs/observability.md promises a
  small closed set of dotted names.  The catalog *is* that set; the
  ``repro.lint`` rule R004 statically rejects any call site that passes a
  name not drawn from here.
* **Duplicate registration is a hard error.**  Declaring the same name
  twice (e.g. once as a counter and once as a gauge) raises
  :class:`DuplicateNameError` at import time, before any test can pass.

The only names not spelled literally here are the probe-counter families
published by :meth:`repro.core.probestats.ProbeStats.publish`, which carry
a caller-chosen prefix.  Those prefixes are still closed: every valid
``(prefix + suffix)`` combination is registered below and resolved through
:func:`probe_counter_names`, which rejects unknown prefixes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

KIND_COUNTER = "counter"
KIND_GAUGE = "gauge"
KIND_TIMER = "timer"


class DuplicateNameError(ValueError):
    """The same observability name was registered twice."""


class UnknownNameError(KeyError):
    """A name (or probe prefix) is not in the catalog."""


_METRICS: Dict[str, str] = {}
_SPANS: Dict[str, str] = {}


def _register(table: Dict[str, str], name: str, kind: str) -> str:
    if name in table:
        raise DuplicateNameError(
            f"observability name {name!r} registered twice (as {table[name]} "
            f"and again as {kind}); every name may be declared exactly once"
        )
    table[name] = kind
    return name


def _counter(name: str) -> str:
    return _register(_METRICS, name, KIND_COUNTER)


def _gauge(name: str) -> str:
    return _register(_METRICS, name, KIND_GAUGE)


def _timer(name: str) -> str:
    return _register(_METRICS, name, KIND_TIMER)


def _span(name: str) -> str:
    return _register(_SPANS, name, "span")


# -- compression / decompression batches (repro.core.compressor) ----------------

COMPRESS_PATHS = _counter("compress.paths")
COMPRESS_SYMBOLS_IN = _counter("compress.symbols_in")
COMPRESS_SYMBOLS_OUT = _counter("compress.symbols_out")
COMPRESS_FLAT_BATCHES = _counter("compress.flat_batches")
COMPRESS_SECONDS = _timer("compress.seconds")

DECOMPRESS_PATHS = _counter("decompress.paths")
DECOMPRESS_SYMBOLS_IN = _counter("decompress.symbols_in")
DECOMPRESS_SYMBOLS_OUT = _counter("decompress.symbols_out")
DECOMPRESS_FLAT_BATCHES = _counter("decompress.flat_batches")
DECOMPRESS_SECONDS = _timer("decompress.seconds")

# -- table construction (repro.core.builder / repro.core.topdown) ---------------

BUILD_ITERATIONS = _counter("build.iterations")
BUILD_MATCHES = _counter("build.matches")
BUILD_CANDIDATES_PRUNED = _counter("build.candidates_pruned")
BUILD_SAMPLED_PATHS = _counter("build.sampled_paths")
BUILD_SAMPLED_NODES = _counter("build.sampled_nodes")
BUILD_DROPPED_AT_FINALIZATION = _counter("build.dropped_at_finalization")
BUILD_TOPDOWN_ROUNDS = _counter("build.topdown.rounds")
BUILD_TOPDOWN_TRIMMED = _counter("build.topdown.trimmed")
BUILD_TABLE_ENTRIES = _gauge("build.table_entries")
BUILD_LAMBDA_CAPACITY = _gauge("build.lambda_capacity")
BUILD_SECONDS = _timer("build.seconds")

# -- compressed store (repro.core.store) ----------------------------------------

STORE_INGESTED_PATHS = _counter("store.ingested_paths")
STORE_INGESTED_SYMBOLS_IN = _counter("store.ingested_symbols_in")
STORE_INGESTED_SYMBOLS_OUT = _counter("store.ingested_symbols_out")
STORE_RETRIEVED_PATHS = _counter("store.retrieved_paths")
STORE_RETRIEVED_SLICES = _counter("store.retrieved_slices")
STORE_COMPRESSED_BYTES = _gauge("store.compressed_bytes")
STORE_RAW_BYTES = _gauge("store.raw_bytes")
STORE_MAPPED_BYTES = _gauge("store.mapped_bytes")
STORE_INGEST_SECONDS = _timer("store.ingest.seconds")
STORE_RETRIEVE_SECONDS = _timer("store.retrieve.seconds")
STORE_RETRIEVE_SLICE_SECONDS = _timer("store.retrieve_slice.seconds")
STORE_RETRIEVE_ALL_SECONDS = _timer("store.retrieve_all.seconds")
STORE_OPEN_SECONDS = _timer("store.open.seconds")

# -- path-query serving layer (repro.serve) --------------------------------------
#
# Every worker process owns its own registry (activated post-fork, like the
# repro.core.parallel workers); the integration tests assert that the sum of
# ``serve.requests`` over the per-worker shutdown snapshots equals the number
# of requests the client sent — counters below must therefore be incremented
# exactly once per handled request.

SERVE_REQUESTS = _counter("serve.requests")
SERVE_ERRORS = _counter("serve.errors")
SERVE_REQUEST_SECONDS = _timer("serve.request.seconds")
SERVE_RETRIEVE_REQUESTS = _counter("serve.retrieve.requests")
SERVE_RETRIEVE_SECONDS = _timer("serve.retrieve.seconds")
SERVE_RETRIEVE_SLICE_REQUESTS = _counter("serve.retrieve_slice.requests")
SERVE_RETRIEVE_SLICE_SECONDS = _timer("serve.retrieve_slice.seconds")
SERVE_RETRIEVE_MANY_REQUESTS = _counter("serve.retrieve_many.requests")
SERVE_RETRIEVE_MANY_SECONDS = _timer("serve.retrieve_many.seconds")
SERVE_EXPANDED_LENGTH_REQUESTS = _counter("serve.expanded_length.requests")
SERVE_EXPANDED_LENGTH_SECONDS = _timer("serve.expanded_length.seconds")
SERVE_PATHS_BETWEEN_REQUESTS = _counter("serve.paths_between.requests")
SERVE_PATHS_BETWEEN_SECONDS = _timer("serve.paths_between.seconds")
SERVE_SUBPATH_SEARCH_REQUESTS = _counter("serve.subpath_search.requests")
SERVE_SUBPATH_SEARCH_SECONDS = _timer("serve.subpath_search.seconds")
SERVE_BATCHES = _counter("serve.batches")
SERVE_BATCH_PATHS = _counter("serve.batch_paths")

# -- sharded store (repro.core.sharded) ------------------------------------------
#
# The sharded layer reports both build-side work (parallel per-shard
# compression, memtable seals, drift-triggered refits) and read-side fan-out
# (how many queries touched how many shards).  Like every other counter
# family, totals must be conserved across process counts: the parallel build
# workers ship their snapshots back through the repro.core.parallel pool
# machinery.

SHARD_COUNT = _gauge("shard.count")
SHARD_MAPPED_BYTES = _gauge("shard.mapped_bytes")
SHARD_OPEN_SECONDS = _timer("shard.open.seconds")
SHARD_BUILD_SECONDS = _timer("shard.build.seconds")
SHARD_BUILT = _counter("shard.built")
SHARD_SEALED = _counter("shard.sealed")
SHARD_SEAL_SECONDS = _timer("shard.seal.seconds")
SHARD_REFITS = _counter("shard.refits")
SHARD_MEMTABLE_PATHS = _gauge("shard.memtable_paths")
SHARD_INGESTED_PATHS = _counter("shard.ingested_paths")
SHARD_FANOUT_QUERIES = _counter("shard.fanout.queries")
SHARD_FANOUT_SHARDS = _counter("shard.fanout.shards")

# -- streaming compressor drift watch (repro.core.stream) -------------------------
#
# ``stream.drift_ratio`` is the windowed symbol ratio divided by the ratio
# observed at training time (1.0 = compressing exactly as well as at train
# time; below ``refit_ratio`` the stream is drifted).  ``stream.drifted``
# counts False→True transitions of the drift flag, so compaction/refit
# decisions are observable instead of a bare boolean.

STREAM_DRIFT_RATIO = _gauge("stream.drift_ratio")
STREAM_DRIFTED = _counter("stream.drifted")

# -- ablation harness (repro.bench.ablation) --------------------------------------
#
# The run-matrix executor counts every cell it measures and every cell it
# skipped because a resumable partial-results file already contained it —
# ``cells + cells_skipped`` therefore always equals the generated matrix
# size, which the resume tests assert.  Per-cell wall time lands on the
# timer so nightly runs can watch matrix cost drift.

ABLATION_CELLS = _counter("ablation.cells")
ABLATION_CELLS_SKIPPED = _counter("ablation.cells_skipped")
ABLATION_CELL_SECONDS = _timer("ablation.cell.seconds")
ABLATION_SECONDS = _timer("ablation.seconds")

# -- vertex reordering (repro.paths.reorder) --------------------------------------
#
# ``fit_order`` publishes one timer per fit plus three gauges describing the
# order it produced: how many vertices it covers, the Shannon entropy of the
# vertex-frequency distribution (low entropy predicts large hottest-first
# wins), and the net varint bytes the order saves across the fitted corpus.

REORDER_FIT_SECONDS = _timer("reorder.fit.seconds")
REORDER_VERTICES = _gauge("reorder.vertices")
REORDER_ORDER_ENTROPY = _gauge("reorder.order_entropy")
REORDER_VARINT_BYTES_SAVED = _gauge("reorder.varint_bytes_saved")

# -- supernode-expansion cache (repro.core.expansion) ----------------------------

TABLE_EXPANSION_CACHE_HITS = _counter("table.expansion_cache.hits")
TABLE_EXPANSION_CACHE_MISSES = _counter("table.expansion_cache.misses")
TABLE_EXPANSION_CACHE_ENTRIES = _gauge("table.expansion_cache.entries")

# -- probe-cost families (repro.core.probestats) --------------------------------
#
# ProbeStats.publish(registry, prefix) emits "<prefix>.probes" and
# "<prefix>.hashed_vertices"; the closed set of prefixes is declared here and
# every resulting full name is registered like any other counter.

_PROBE_SUFFIXES: Tuple[str, str] = ("probes", "hashed_vertices")

MATCHER_PROBES = _counter("matcher.probes")
MATCHER_HASHED_VERTICES = _counter("matcher.hashed_vertices")
BUILD_MATCHER_PROBES = _counter("build.matcher.probes")
BUILD_MATCHER_HASHED_VERTICES = _counter("build.matcher.hashed_vertices")

PROBE_PREFIX_MATCHER = "matcher"
PROBE_PREFIX_BUILD_MATCHER = "build.matcher"
PROBE_PREFIXES: FrozenSet[str] = frozenset(
    (PROBE_PREFIX_MATCHER, PROBE_PREFIX_BUILD_MATCHER)
)

# -- spans ----------------------------------------------------------------------

SPAN_COMPRESS = _span("compress")
SPAN_DECOMPRESS = _span("decompress")
SPAN_BUILD = _span("build")
SPAN_BUILD_INITIALIZE = _span("build.initialize")
SPAN_BUILD_ITERATION = _span("build.iteration")
SPAN_BUILD_FINALIZE = _span("build.finalize")
SPAN_BUILD_TOPDOWN = _span("build.topdown")
SPAN_BUILD_TOPDOWN_ROUND = _span("build.topdown.round")
SPAN_STORE_INGEST = _span("store.ingest")
SPAN_STORE_RETRIEVE_ALL = _span("store.retrieve_all")
SPAN_STORE_OPEN = _span("store.open")
SPAN_SHARD_BUILD = _span("shard.build")
SPAN_SHARD_SEAL = _span("shard.seal")
SPAN_SHARD_OPEN = _span("shard.open")
SPAN_ABLATION_CELL = _span("ablation.cell")


# -- queries --------------------------------------------------------------------


def probe_counter_names(prefix: str) -> Tuple[str, str]:
    """The registered ``(probes, hashed_vertices)`` counter names for *prefix*.

    :raises UnknownNameError: for a prefix outside :data:`PROBE_PREFIXES` —
        publishing probe work under an unregistered prefix would create
        counters no dashboard (and no conservation test) knows about.
    """
    if prefix not in PROBE_PREFIXES:
        raise UnknownNameError(
            f"unknown probe prefix {prefix!r}; registered prefixes: "
            f"{sorted(PROBE_PREFIXES)}"
        )
    return (f"{prefix}.{_PROBE_SUFFIXES[0]}", f"{prefix}.{_PROBE_SUFFIXES[1]}")


def metric_names() -> Dict[str, str]:
    """Every registered metric name mapped to its kind (counter/gauge/timer)."""
    return dict(_METRICS)


def span_names() -> FrozenSet[str]:
    """Every registered span name."""
    return frozenset(_SPANS)


def is_registered(name: str) -> bool:
    """Whether *name* is a declared metric or span name."""
    return name in _METRICS or name in _SPANS
