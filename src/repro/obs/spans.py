"""Hierarchical span tracing — phase breakdowns for multi-stage operations.

Where the registry answers "how much work happened", spans answer "where the
time went": a :class:`SpanTracer` records a tree of named, timed scopes, so a
table-construction run renders as::

    build                                1.204s
      build.initialize                   0.087s
      build.iteration  it=1 cap=2        0.311s  matches=4810 pruned=1205
      build.iteration  it=2 cap=4        0.298s  matches=5922 pruned=980
      ...
      build.finalize                     0.019s

Span naming convention (see docs/observability.md): dotted lowercase paths
whose first segment is the owning phase (``build``, ``compress``,
``decompress``, ``store``), with dynamic values carried as attributes —
``build.iteration`` with ``iteration=3``, never ``build.iteration.3`` — so
span names stay a small closed set that dashboards can aggregate on.

Tracers nest via an explicit stack, not thread-locals: the repository's
parallelism is process-based (each worker owns a whole tracer), so a plain
stack is both sufficient and cheap.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One named, timed scope in the trace tree."""

    __slots__ = ("name", "attrs", "counts", "children", "elapsed_seconds", "_started")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = attrs or {}
        self.counts: Dict[str, int] = {}
        self.children: List["Span"] = []
        self.elapsed_seconds = 0.0
        self._started = 0.0

    def add(self, name: str, by: int = 1) -> None:
        """Accumulate a per-span count (e.g. matches inside one iteration)."""
        self.counts[name] = self.counts.get(name, 0) + by

    def annotate(self, **attrs: Any) -> None:
        """Attach or overwrite attributes on the span."""
        self.attrs.update(attrs)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (children recurse)."""
        out: Dict[str, Any] = {
            "name": self.name,
            "elapsed_seconds": self.elapsed_seconds,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.counts:
            out["counts"] = dict(self.counts)
        if self.children:
            out["children"] = [child.as_dict() for child in self.children]
        return out

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, elapsed={self.elapsed_seconds:.6f}s, "
            f"children={len(self.children)})"
        )


class SpanTracer:
    """Records a forest of spans via a context-manager API.

    :param enabled: when ``False``, :meth:`span` yields ``None`` and records
        nothing, so instrumented code needs no guards.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Optional[Span]]:
        """Open a span named *name*; nested calls become children.

        Yields the live :class:`Span` (or ``None`` when disabled) so the
        body can :meth:`~Span.add` counts and :meth:`~Span.annotate` attrs.
        """
        if not self.enabled:
            yield None
            return
        span = Span(name, attrs or None)
        span._started = time.perf_counter()
        self._stack.append(span)
        try:
            yield span
        finally:
            span.elapsed_seconds = time.perf_counter() - span._started
            self._stack.pop()
            if self._stack:
                self._stack[-1].children.append(span)
            else:
                self.roots.append(span)

    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None`` outside any scope."""
        return self._stack[-1] if self._stack else None

    def add(self, name: str, by: int = 1) -> None:
        """Accumulate a count on the innermost open span (no-op outside)."""
        if self._stack:
            self._stack[-1].add(name, by)

    def as_dict(self) -> List[Dict[str, Any]]:
        """JSON-safe list of completed root spans."""
        return [span.as_dict() for span in self.roots]

    def reset(self) -> None:
        """Drop all completed spans (open spans are unaffected)."""
        self.roots.clear()

    def __repr__(self) -> str:
        return (
            f"SpanTracer(enabled={self.enabled}, roots={len(self.roots)}, "
            f"open={len(self._stack)})"
        )
