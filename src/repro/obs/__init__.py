"""Lightweight, zero-dependency instrumentation for the OFFS pipeline.

The paper's own arguments are counter-based (§IV-C counts hashed vertices,
not milliseconds), and the ROADMAP's north star — "as fast as the hardware
allows" — needs every perf PR to be measurable.  This package is that
measurement layer:

* :mod:`repro.obs.registry` — :class:`MetricsRegistry` with counters,
  gauges and monotonic-clock timers (context-manager and decorator forms);
* :mod:`repro.obs.spans` — :class:`SpanTracer`, a hierarchical span tree
  for phase breakdowns (``build → build.iteration → …``);
* :mod:`repro.obs.runtime` — scoped activation; the hot layers in
  :mod:`repro.core` observe only while an :class:`Instrumentation` is
  active, so the default mode costs one ``None`` check;
* :mod:`repro.obs.export` — JSON and text exporters for snapshots.

Quick start::

    from repro.obs import Instrumentation, instrumented, render_text

    with instrumented() as obs:
        codec = OFFSCodec().fit(dataset)
        store = CompressedPathStore.from_dataset(dataset, codec.table)
    print(render_text(obs))          # or write_json(obs, "metrics.json")

See docs/observability.md for metric and span naming conventions.
"""

from repro.obs.export import from_json, render_text, to_json, write_json
from repro.obs.registry import Counter, Gauge, MetricsRegistry, Timer
from repro.obs.runtime import (
    Instrumentation,
    activate,
    active_span,
    active_timer,
    deactivate,
    get_active,
    instrumented,
)
from repro.obs.spans import Span, SpanTracer

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
    "Instrumentation",
    "get_active",
    "activate",
    "deactivate",
    "instrumented",
    "active_span",
    "active_timer",
    "to_json",
    "from_json",
    "write_json",
    "render_text",
]
