"""Exporters — snapshots to JSON documents and terminal-friendly text.

Both exporters operate on the plain-dict snapshot shape
(:meth:`repro.obs.runtime.Instrumentation.snapshot`)::

    {"metrics": {"counters": ..., "gauges": ..., "timers": ...},
     "spans": [<span dict>, ...]}

so they also accept snapshots that crossed a process or file boundary.
``schema_version`` is stamped into written documents for forward
compatibility of any tooling that parses them.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Union

from repro.obs.runtime import Instrumentation

SCHEMA_VERSION = 1

Snapshot = Dict[str, Any]


def _as_snapshot(source: Union[Instrumentation, Snapshot]) -> Snapshot:
    if isinstance(source, Instrumentation):
        return source.snapshot()
    return source


def to_json(source: Union[Instrumentation, Snapshot], indent: Optional[int] = 2) -> str:
    """Serialize an instrumentation (or raw snapshot) as a JSON document."""
    snapshot = dict(_as_snapshot(source))
    snapshot.setdefault("schema_version", SCHEMA_VERSION)
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def from_json(document: str) -> Snapshot:
    """Parse a document produced by :func:`to_json` back into a snapshot."""
    snapshot = json.loads(document)
    if not isinstance(snapshot, dict) or "metrics" not in snapshot:
        raise ValueError("not an obs snapshot: missing 'metrics' section")
    return snapshot


def write_json(source: Union[Instrumentation, Snapshot], path: str) -> None:
    """Write the JSON export of *source* to *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_json(source))
        fh.write("\n")


def render_text(source: Union[Instrumentation, Snapshot]) -> str:
    """Human-readable report: metric listings plus an indented span tree."""
    snapshot = _as_snapshot(source)
    metrics = snapshot.get("metrics", {})
    lines: List[str] = []

    counters = metrics.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append(f"  {name:<{width}}  {value:,}")

    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name, value in gauges.items():
            lines.append(f"  {name:<{width}}  {value:g}")

    timers = metrics.get("timers", {})
    if timers:
        lines.append("timers:")
        width = max(len(name) for name in timers)
        for name, stats in timers.items():
            count = stats.get("count", 0)
            total = stats.get("total_seconds", 0.0)
            mean = total / count if count else 0.0
            lines.append(
                f"  {name:<{width}}  n={count}  total={total:.6f}s  mean={mean:.6f}s"
            )

    spans = snapshot.get("spans", [])
    if spans:
        lines.append("spans:")
        for span in spans:
            _render_span(span, lines, depth=1)

    return "\n".join(lines) if lines else "(no metrics recorded)"


def _render_span(span: Dict[str, Any], lines: List[str], depth: int) -> None:
    indent = "  " * depth
    parts = [f"{indent}{span.get('name', '?')}"]
    attrs = span.get("attrs")
    if attrs:
        parts.append(" ".join(f"{k}={v}" for k, v in attrs.items()))
    parts.append(f"{span.get('elapsed_seconds', 0.0):.6f}s")
    counts = span.get("counts")
    if counts:
        parts.append(" ".join(f"{k}={v}" for k, v in counts.items()))
    lines.append("  ".join(parts))
    for child in span.get("children", []):
        _render_span(child, lines, depth + 1)
