"""Named access to the dataset surrogates, with size presets.

Tests, examples and benchmarks all obtain data through
:func:`make_dataset` so a given ``(name, size, seed)`` triple means the same
paths everywhere.  Generated datasets are memoized per triple — the figure
benches sweep parameters over the *same* dataset many times and regeneration
would dominate their runtime.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List

from repro.paths.dataset import PathDataset
from repro.workloads.synthetic import (
    alibaba_cloud_workload,
    collision_workload,
    porto_workload,
    random_noise_workload,
    rome_workload,
    sanfrancisco_workload,
    web_navigation_workload,
)

#: The four Table III surrogates, in the paper's order.
DATASET_NAMES = ("alibaba", "rome", "porto", "sanfrancisco")

#: Path counts per size preset.  ``tiny`` keeps unit tests snappy; ``small``
#: is the benchmark default; ``medium`` exercises scaling behaviour.
SIZE_PRESETS: Dict[str, Dict[str, int]] = {
    "tiny": {"alibaba": 400, "rome": 150, "porto": 250, "sanfrancisco": 300,
             "collision": 200, "noise": 150, "web": 300},
    "small": {"alibaba": 4000, "rome": 1200, "porto": 2000, "sanfrancisco": 2500,
              "collision": 1000, "noise": 500, "web": 2500},
    "medium": {"alibaba": 20000, "rome": 5000, "porto": 9000, "sanfrancisco": 12000,
               "collision": 5000, "noise": 2000, "web": 12000},
}

_FACTORIES = {
    "alibaba": alibaba_cloud_workload,
    "rome": rome_workload,
    "porto": porto_workload,
    "sanfrancisco": sanfrancisco_workload,
    "collision": collision_workload,
    "noise": random_noise_workload,
    "web": web_navigation_workload,
}


@lru_cache(maxsize=32)
def make_dataset(name: str, size: str = "small", seed: int = 0) -> PathDataset:
    """Build (or fetch from cache) the dataset *name* at *size*.

    :param name: one of :data:`DATASET_NAMES`, ``"collision"`` or
        ``"noise"``.
    :param size: a :data:`SIZE_PRESETS` key.
    :raises KeyError: on unknown name or size.
    """
    if name not in _FACTORIES:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(_FACTORIES)}")
    if size not in SIZE_PRESETS:
        raise KeyError(f"unknown size {size!r}; known: {sorted(SIZE_PRESETS)}")
    return _FACTORIES[name](SIZE_PRESETS[size][name], seed=seed)


def make_all_datasets(size: str = "small", seed: int = 0) -> List[PathDataset]:
    """The four Table III surrogates at *size*, in the paper's order."""
    return [make_dataset(name, size, seed) for name in DATASET_NAMES]
