"""The four dataset surrogates and the adversarial ablation workloads.

Each surrogate targets the corresponding Table III row's *shape* — average
length, relative id-universe size, redundancy profile — scaled down in path
count so pure-Python benchmarks finish in minutes (DESIGN.md §2 records the
substitution).  All generators are deterministic in their seed.

================  ==============  =============  ====================
surrogate         paper avg len   paper max len  structure
================  ==============  =============  ====================
alibaba           17.20           30             tiered cloud transactions
rome              67.12           503            long cross-town taxi trips
porto             32.73           1355           mid-length trips, rare epics
sanfrancisco      17.42           103            short trips, tiny id pool
================  ==============  =============  ====================
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.graphs.road import RoadNetwork
from repro.graphs.topology import CloudTopology
from repro.graphs.walks import zipf_choice
from repro.paths.dataset import PathDataset
from repro.paths.preprocess import cut_cycles


def alibaba_cloud_workload(path_count: int = 2000, seed: int = 0) -> PathDataset:
    """IP-hop transaction paths over a tiered cloud (the private dataset).

    Mean length ≈ 17, maximum ≈ 30 (a rare retry re-runs part of the service
    chain on distinct fallback machines, mirroring the long tail).  The
    client pool scales with the path count to keep the paper's id density
    (Table III: ≈ 400 paths per distinct id), so client prefixes repeat the
    way NATed real traffic does.
    """
    topology = CloudTopology(
        clients=max(200, path_count // 3), chain_length=(7, 13), seed=seed
    )
    rng = random.Random(seed + 1)
    base = topology.generate_paths(path_count, seed=seed + 2)
    paths: List[Tuple[int, ...]] = []
    fallback0 = topology.vertex_count  # distinct fallback-service id range
    for path in base:
        if rng.random() < 0.05:
            # A retried middle-tier call: the chain re-executes on fallback
            # machines (fresh, deduplicated ids keep the path simple).
            seen = set()
            extra: List[int] = []
            for v in path[4:-1]:
                fid = fallback0 + (v % 200)
                if fid not in seen:
                    seen.add(fid)
                    extra.append(fid)
            path = path[:-1] + tuple(extra[: max(0, 30 - len(path))]) + (path[-1],)
        paths.append(path)
    return PathDataset(paths, name="alibaba")


def _road_workload(
    name: str,
    path_count: int,
    seed: int,
    width: int,
    height: int,
    hotspots: int,
    detour_probability: float,
    epic_probability: float = 0.0,
) -> PathDataset:
    """Shared recipe for the taxi surrogates.

    Trips are routed between Zipf-popular hotspots; *epic_probability* adds
    rare multi-waypoint odysseys (Porto's 1355-cell maximum against a
    33-cell average).  Detour legs can revisit cells, so cycle cutting is
    applied exactly as the paper's preprocessing would.
    """
    network = RoadNetwork(width=width, height=height, hotspots=hotspots, seed=seed)
    rng = random.Random(seed + 1)
    paths: List[Tuple[int, ...]] = []
    n = len(network.hotspots)
    while len(paths) < path_count:
        if epic_probability and rng.random() < epic_probability:
            stops = rng.sample(range(n), min(n, rng.randint(4, 7)))
            route: Tuple[int, ...] = network.route(
                network.hotspots[stops[0]], network.hotspots[stops[1]]
            )
            for a, b in zip(stops[1:], stops[2:]):
                route = route + network.route(network.hotspots[a], network.hotspots[b])[1:]
        else:
            route = network.sample_trip(rng, detour_probability)
        for piece in cut_cycles(route):
            if len(piece) >= 3 and len(paths) < path_count:
                paths.append(tuple(piece))
    return PathDataset(paths, name=name)


def rome_workload(path_count: int = 1500, seed: int = 0) -> PathDataset:
    """Long cross-town trips on a large grid (Rome: avg 67, max 503)."""
    return _road_workload(
        "rome", path_count, seed,
        width=72, height=72, hotspots=20,
        detour_probability=0.25, epic_probability=0.01,
    )


def porto_workload(path_count: int = 2500, seed: int = 0) -> PathDataset:
    """Mid-length trips with rare epic outliers (Porto: avg 33, max 1355)."""
    return _road_workload(
        "porto", path_count, seed,
        width=48, height=48, hotspots=36,
        detour_probability=0.15, epic_probability=0.02,
    )


def sanfrancisco_workload(path_count: int = 2000, seed: int = 0) -> PathDataset:
    """Short trips over a small id pool (San Francisco: avg 17, max 103)."""
    return _road_workload(
        "sanfrancisco", path_count, seed,
        width=26, height=26, hotspots=30,
        detour_probability=0.10, epic_probability=0.005,
    )


def collision_workload(path_count: int = 1000, seed: int = 0) -> PathDataset:
    """The match-collision stress test behind Example 1 / ablation A2.

    Every path is ``prefix ⊕ hot ⊕ suffix``: one globally hot subpath of
    length 8 flanked by affixes drawn from small pools of recurring triples.
    Under *gross* frequency, the hot subpath **and its ~27 contiguous
    fragments** all score near the top (each occurs once per path), so a
    capacity-bound GFS table fills with overlaps that the greedy matcher can
    never use — exactly Table I.  Practical frequency zeroes the shadowed
    fragments after one iteration and spends the capacity on the affix
    triples instead.
    """
    rng = random.Random(seed)
    hot = tuple(range(1000, 1008))
    prefix_pool = [tuple(rng.sample(range(0, 300), 3)) for _ in range(12)]
    suffix_pool = [tuple(rng.sample(range(400, 700), 3)) for _ in range(12)]
    paths: List[Tuple[int, ...]] = []
    for _ in range(path_count):
        prefix = prefix_pool[zipf_choice(rng, len(prefix_pool), 1.2)]
        suffix = suffix_pool[zipf_choice(rng, len(suffix_pool), 1.2)]
        paths.append(prefix + hot + suffix)
    return PathDataset(paths, name="collision")


def web_navigation_workload(path_count: int = 2000, seed: int = 0) -> PathDataset:
    """Navigation sessions over a scale-free site graph (§I's social/web
    motivation).

    Hub-heavy click streams: sessions funnel through high-degree vertices,
    producing frequent hub-spine subpaths — a degree distribution unlike
    the tiered-cloud and road-grid surrogates.
    """
    from repro.graphs.scalefree import navigation_sessions, preferential_attachment_graph
    from repro.paths.preprocess import prune_trivial

    graph = preferential_attachment_graph(
        vertex_count=max(200, path_count // 4), edges_per_vertex=3, seed=seed
    )
    sessions = navigation_sessions(graph, int(path_count * 1.2), seed=seed + 1)
    kept = prune_trivial(sessions)[:path_count]
    return PathDataset(kept, name="web")


def random_noise_workload(
    path_count: int = 500,
    vertex_count: int = 5000,
    length: Tuple[int, int] = (5, 20),
    seed: int = 0,
) -> PathDataset:
    """Incompressible control: uniformly random simple paths.

    No subpath is systematically frequent, so every DICT method should
    degrade toward CR ≈ 1 here — the sanity floor the test suite checks.
    """
    rng = random.Random(seed)
    lo, hi = length
    paths = []
    for _ in range(path_count):
        n = rng.randint(lo, hi)
        paths.append(tuple(rng.sample(range(vertex_count), n)))
    return PathDataset(paths, name="noise")
