"""Workload generators calibrated to the paper's datasets (Table III).

:mod:`repro.workloads.synthetic` builds the four dataset surrogates —
``alibaba``, ``rome``, ``porto``, ``sanfrancisco`` — plus adversarial
workloads used by the ablations; :mod:`repro.workloads.registry` exposes them
by name with size presets so tests, examples and benchmarks all draw from the
same source.
"""

from repro.workloads.registry import (
    DATASET_NAMES,
    SIZE_PRESETS,
    make_dataset,
    make_all_datasets,
)
from repro.workloads.synthetic import (
    alibaba_cloud_workload,
    collision_workload,
    random_noise_workload,
    rome_workload,
    porto_workload,
    sanfrancisco_workload,
    web_navigation_workload,
)

__all__ = [
    "DATASET_NAMES",
    "SIZE_PRESETS",
    "make_dataset",
    "make_all_datasets",
    "alibaba_cloud_workload",
    "collision_workload",
    "random_noise_workload",
    "rome_workload",
    "porto_workload",
    "sanfrancisco_workload",
    "web_navigation_workload",
]
