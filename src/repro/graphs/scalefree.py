"""Scale-free graphs and navigation sessions — the web/social workload.

The introduction motivates path recording beyond Alibaba Cloud: "a routing
record in telephone networks, or a message transmission in social networks".
Those substrates are scale-free, not tiered or grid-like, so this module
adds a preferential-attachment generator (Barabási–Albert flavoured, made
directed) plus a *navigation session* sampler: walks that start at
Zipf-popular entry vertices and follow out-edges with popularity bias —
think users clicking through a website or messages relayed through hubs.

Hub-heavy traffic produces frequent subpaths through the hub spine, which
is what makes such logs compressible; the ``web`` workload built on this
generator exercises OFFS on a degree distribution unlike the other four.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.graphs.digraph import DiGraph
from repro.graphs.walks import zipf_choice


def preferential_attachment_graph(
    vertex_count: int,
    edges_per_vertex: int = 3,
    seed: int = 0,
) -> DiGraph:
    """A directed preferential-attachment graph.

    Vertices arrive one at a time; each new vertex links *to*
    ``edges_per_vertex`` existing vertices chosen proportionally to their
    current in-degree (plus one, so newcomers are reachable targets), and
    receives one back-link from a uniformly random earlier vertex so walks
    can leave hubs again.

    :returns: a :class:`DiGraph` with ``vertex_count`` vertices.
    """
    if vertex_count < 2:
        raise ValueError("vertex_count must be >= 2")
    if edges_per_vertex < 1:
        raise ValueError("edges_per_vertex must be >= 1")
    rng = random.Random(seed)
    graph = DiGraph()
    graph.add_edge(0, 1)
    # Repeated-targets list implements degree-proportional choice in O(1).
    attachment_pool: List[int] = [0, 1]
    for v in range(2, vertex_count):
        targets = set()
        limit = min(edges_per_vertex, v)
        while len(targets) < limit:
            targets.add(rng.choice(attachment_pool))
        for t in targets:
            graph.add_edge(v, t)
            attachment_pool.append(t)
        back = rng.randrange(v)
        graph.add_edge(back, v)
        attachment_pool.append(v)
    return graph


def navigation_sessions(
    graph: DiGraph,
    session_count: int,
    max_length: int = 12,
    entry_skew: float = 1.2,
    trail_reuse: float = 0.7,
    seed: int = 0,
) -> List[Tuple[int, ...]]:
    """Sample user navigation sessions over *graph*.

    Sessions start at Zipf-popular entry vertices (hubs are landing pages),
    then repeatedly follow an out-edge, preferring high in-degree targets
    (popular links get clicked); a session ends at ``max_length``, at a
    dead end, or when every neighbour was already visited (sessions are
    simple paths, matching the paper's model).

    Real click streams concentrate on popular trails — most users walk a
    route someone walked before.  With probability *trail_reuse* a session
    replays a Zipf-popular earlier session, possibly truncated (the user
    leaves early); otherwise a fresh walk is sampled.
    """
    if max_length < 1:
        raise ValueError("max_length must be >= 1")
    if not 0.0 <= trail_reuse < 1.0:
        raise ValueError("trail_reuse must be in [0, 1)")
    rng = random.Random(seed)
    # Entry popularity: vertices ranked by in-degree.
    by_popularity = sorted(
        graph.vertices(), key=lambda v: (-graph.in_degree(v), v)
    )

    def fresh_session() -> Tuple[int, ...]:
        current = by_popularity[zipf_choice(rng, len(by_popularity), entry_skew)]
        walk = [current]
        visited = {current}
        while len(walk) < max_length:
            options = [v for v in graph.out_neighbours(current) if v not in visited]
            if not options:
                break
            options.sort(key=lambda v: (-graph.in_degree(v), v))
            current = options[zipf_choice(rng, len(options), entry_skew)]
            walk.append(current)
            visited.add(current)
        return tuple(walk)

    trails: List[Tuple[int, ...]] = []
    sessions: List[Tuple[int, ...]] = []
    for _ in range(session_count):
        if trails and rng.random() < trail_reuse:
            trail = trails[zipf_choice(rng, len(trails), 1.1)]
            if len(trail) > 2 and rng.random() < 0.3:
                # Early exit: the user abandons the trail part-way.
                trail = trail[: rng.randint(2, len(trail))]
            sessions.append(trail)
        else:
            session = fresh_session()
            trails.append(session)
            sessions.append(session)
    return sessions
