"""A lightweight directed graph — the substrate AFS and workloads assume.

The paper's problem statement starts from "a directed graph G = (V, E)";
recorded paths are walks over it.  Most of this repository never needs the
graph itself (the compressor consumes paths), but two places do:

* AFS (Algorithm 3) joins candidates with out-edges "suppose there is a
  graph as ground truth";
* workload generators need adjacency to sample structured walks.

:class:`DiGraph` is deliberately small: adjacency sets, degree statistics,
BFS shortest paths and reachability — no external dependency, no cleverness.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple


class DiGraph:
    """A directed graph over integer vertex ids."""

    def __init__(self) -> None:
        self._out: Dict[int, Set[int]] = {}
        self._in: Dict[int, Set[int]] = {}
        self._edge_count = 0

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[int, int]]) -> "DiGraph":
        """Build a graph from an edge iterable."""
        graph = cls()
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    @classmethod
    def from_paths(cls, paths: Iterable[Sequence[int]]) -> "DiGraph":
        """The edge union of a path set — the observable ground truth."""
        graph = cls()
        for path in paths:
            for i in range(len(path) - 1):
                graph.add_edge(path[i], path[i + 1])
        return graph

    def add_vertex(self, v: int) -> None:
        """Ensure *v* exists (isolated vertices are allowed)."""
        self._out.setdefault(v, set())
        self._in.setdefault(v, set())

    def add_edge(self, u: int, v: int) -> bool:
        """Add edge ``u -> v``; returns ``True`` when it is new."""
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._out[u]:
            return False
        self._out[u].add(v)
        self._in[v].add(u)
        self._edge_count += 1
        return True

    # -- queries ---------------------------------------------------------------------

    def __contains__(self, v: int) -> bool:
        return v in self._out

    def has_edge(self, u: int, v: int) -> bool:
        """``True`` when edge ``u -> v`` exists."""
        return v in self._out.get(u, ())

    def out_neighbours(self, v: int) -> Set[int]:
        """Successors of *v* (empty set for unknown vertices)."""
        return set(self._out.get(v, ()))

    def in_neighbours(self, v: int) -> Set[int]:
        """Predecessors of *v*."""
        return set(self._in.get(v, ()))

    def out_degree(self, v: int) -> int:
        return len(self._out.get(v, ()))

    def in_degree(self, v: int) -> int:
        return len(self._in.get(v, ()))

    def vertices(self) -> List[int]:
        """All vertex ids, sorted (deterministic iteration)."""
        return sorted(self._out)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """All edges, in sorted order."""
        for u in sorted(self._out):
            for v in sorted(self._out[u]):
                yield (u, v)

    @property
    def vertex_count(self) -> int:
        return len(self._out)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def __repr__(self) -> str:
        return f"DiGraph(vertices={self.vertex_count}, edges={self.edge_count})"

    # -- walks -----------------------------------------------------------------------

    def is_walk(self, path: Sequence[int]) -> bool:
        """``True`` when consecutive vertices of *path* are all edges."""
        return all(self.has_edge(path[i], path[i + 1]) for i in range(len(path) - 1))

    def shortest_path(self, source: int, target: int) -> Optional[Tuple[int, ...]]:
        """BFS shortest path (fewest hops) or ``None`` if unreachable.

        Deterministic: neighbours are expanded in sorted order.
        """
        if source not in self._out or target not in self._out:
            return None
        if source == target:
            return (source,)
        parents: Dict[int, int] = {source: source}
        queue: deque = deque([source])
        while queue:
            current = queue.popleft()
            for nxt in sorted(self._out[current]):
                if nxt in parents:
                    continue
                parents[nxt] = current
                if nxt == target:
                    path = [nxt]
                    while path[-1] != source:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return tuple(path)
                queue.append(nxt)
        return None

    def reachable_from(self, source: int) -> Set[int]:
        """Every vertex reachable from *source* (including itself)."""
        if source not in self._out:
            return set()
        seen: Set[int] = {source}
        queue: deque = deque([source])
        while queue:
            current = queue.popleft()
            for nxt in self._out[current]:
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return seen

    # -- statistics --------------------------------------------------------------------

    def degree_histogram(self) -> Dict[int, int]:
        """``{out-degree: vertex count}`` — workload shape validation."""
        histogram: Dict[int, int] = {}
        for v in self._out:
            d = len(self._out[v])
            histogram[d] = histogram.get(d, 0) + 1
        return histogram
