"""Tiered cloud topology — the Alibaba Cloud surrogate (Figures 1 and 2).

A transaction path in the paper's motivating scenario hops
``client → (internet gateways) → firewall → web server → application
servers → DBMS``, with each tier deployed on many machines and a dispatcher
choosing among them by load, network status and strategy.  Two properties
matter for compression and are modelled explicitly:

* **skewed dispatch** — popular machines take most traffic (Zipf), so a small
  set of tier-machine combinations dominates;
* **service-chain templates** — the middle tier executes one of a bounded set
  of microservice call chains, and popular chains recur across millions of
  transactions.  These chains are precisely the long frequent subpaths OFFS
  harvests.

Vertex ids are dense and segregated by tier, so generated paths are simple by
construction (no vertex appears in two tiers; chains visit distinct services).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.graphs.walks import zipf_choice


@dataclass
class CloudTopology:
    """A synthetic multi-tier cloud deployment.

    :param clients: size of the client id pool (large, mostly cold).
    :param gateways: internet gateway machines.
    :param firewalls: firewall machines.
    :param web_servers: web-tier machines.
    :param app_servers: application-tier machines.
    :param services: microservice machines available to call chains.
    :param databases: DBMS machines.
    :param chain_templates: number of distinct service call chains.
    :param chain_length: ``(min, max)`` services per chain template.
    :param pods: number of deployment pods.  Real cloud traffic is routed
        within pods — fixed (gateway, firewall, web, app) machine tuples —
        so tier combinations repeat heavily instead of being an independent
        cross-product; this is what makes IP-hop logs so compressible.
    :param pod_probability: fraction of transactions dispatched to a pod;
        the remainder picks tier machines independently (the long tail).
    :param skew: Zipf exponent for all popularity choices.
    :param seed: RNG seed for the topology itself (templates, wiring).
    """

    clients: int = 20000
    gateways: int = 8
    firewalls: int = 4
    web_servers: int = 48
    app_servers: int = 64
    services: int = 160
    databases: int = 6
    chain_templates: int = 32
    chain_length: Tuple[int, int] = (6, 12)
    pods: int = 24
    pod_probability: float = 0.85
    skew: float = 1.2
    seed: int = 0
    _templates: List[Tuple[int, ...]] = field(init=False, repr=False, default_factory=list)
    _pods: List[Tuple[int, ...]] = field(init=False, repr=False, default_factory=list)

    def __post_init__(self) -> None:
        for name in (
            "clients", "gateways", "firewalls", "web_servers",
            "app_servers", "services", "databases", "chain_templates",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        lo, hi = self.chain_length
        if not 1 <= lo <= hi:
            raise ValueError("chain_length must be an increasing positive pair")
        if hi > self.services:
            raise ValueError("chain_length cannot exceed the service pool")
        if self.pods < 1:
            raise ValueError("pods must be >= 1")
        if not 0.0 <= self.pod_probability <= 1.0:
            raise ValueError("pod_probability must be in [0, 1]")
        self._build_templates()
        self._build_pods()

    # -- id layout (dense, tier-segregated) -------------------------------------

    @property
    def _offsets(self):
        client0 = 0
        gateway0 = client0 + self.clients
        firewall0 = gateway0 + self.gateways
        web0 = firewall0 + self.firewalls
        app0 = web0 + self.web_servers
        service0 = app0 + self.app_servers
        db0 = service0 + self.services
        return client0, gateway0, firewall0, web0, app0, service0, db0

    @property
    def vertex_count(self) -> int:
        """Total machines across all tiers."""
        return (
            self.clients + self.gateways + self.firewalls + self.web_servers
            + self.app_servers + self.services + self.databases
        )

    def _build_templates(self) -> None:
        rng = random.Random(self.seed)
        _, _, _, _, _, service0, _ = self._offsets
        lo, hi = self.chain_length
        templates: List[Tuple[int, ...]] = []
        pool = list(range(service0, service0 + self.services))
        for _ in range(self.chain_templates):
            length = rng.randint(lo, hi)
            templates.append(tuple(rng.sample(pool, length)))
        self._templates = templates

    def _build_pods(self) -> None:
        rng = random.Random(self.seed + 7)
        _, gateway0, firewall0, web0, app0, _, _ = self._offsets
        pods: List[Tuple[int, ...]] = []
        for _ in range(self.pods):
            pods.append(
                (
                    gateway0 + rng.randrange(self.gateways),
                    firewall0 + rng.randrange(self.firewalls),
                    web0 + rng.randrange(self.web_servers),
                    app0 + rng.randrange(self.app_servers),
                )
            )
        self._pods = pods

    @property
    def templates(self) -> List[Tuple[int, ...]]:
        """The service call-chain templates (popularity order)."""
        return list(self._templates)

    @property
    def pod_routes(self) -> List[Tuple[int, ...]]:
        """The pod tier tuples ``(gateway, firewall, web, app)``."""
        return list(self._pods)

    # -- path generation -------------------------------------------------------------

    def transaction_path(self, rng: random.Random) -> Tuple[int, ...]:
        """Sample one transaction path through the deployment.

        Structure: client, 1–2 gateways, firewall, web server, app server,
        a popular service chain, database — matching the Figure 1 flow with
        the Table III length profile (mean ≈ 17, max ≈ 30 for the default
        template lengths).
        """
        client0, gateway0, firewall0, web0, app0, _, db0 = self._offsets
        # Clients are mildly Zipf-skewed: NAT gateways, corporate proxies and
        # heavy buyers recur across many transactions.
        path: List[int] = [client0 + zipf_choice(rng, self.clients, 1.05)]
        if rng.random() < self.pod_probability:
            # Pod dispatch: the whole middle tier is one popular fixed tuple.
            pod = self._pods[zipf_choice(rng, len(self._pods), self.skew)]
            path.extend(pod)
        else:
            # Long tail: independent per-tier choices, occasionally with a
            # cross-region second gateway hop.
            path.append(gateway0 + zipf_choice(rng, self.gateways, self.skew))
            if rng.random() < 0.35 and self.gateways > 1:
                second = gateway0 + zipf_choice(rng, self.gateways, self.skew)
                if second != path[-1]:
                    path.append(second)
            path.append(firewall0 + zipf_choice(rng, self.firewalls, self.skew))
            path.append(web0 + zipf_choice(rng, self.web_servers, self.skew))
            path.append(app0 + zipf_choice(rng, self.app_servers, self.skew))
        template = self._templates[zipf_choice(rng, len(self._templates), self.skew)]
        path.extend(template)
        path.append(db0 + zipf_choice(rng, self.databases, self.skew))
        return tuple(path)

    def generate_paths(self, count: int, seed: int = 0) -> List[Tuple[int, ...]]:
        """Sample *count* transaction paths deterministically for *seed*."""
        rng = random.Random(seed)
        return [self.transaction_path(rng) for _ in range(count)]
