"""Grid road networks with hotspot routing — the taxi-trace surrogate.

The CRAWDAD taxi datasets (Rome, Porto, San Francisco) become, after the
paper's grid-snapping preprocessing, paths over a bounded universe of grid
cells in which popular origin/destination pairs share long route segments.
:class:`RoadNetwork` reproduces that structure directly:

* the city is a ``width × height`` 4-connected grid of cells (vertex id
  ``row * width + col``);
* trips run between *hotspots* (stations, malls, airports) whose pair
  popularity is Zipf-distributed;
* routing is deterministic A* (Manhattan heuristic, fixed tie-breaking), so
  the same pair always yields the same route — shared segments arise exactly
  as they do from real road constraints — with optional detour waypoints
  modelling driver variation.

Routes are cached per (origin, destination) so sampling a large dataset costs
one A* per distinct pair.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, List, Optional, Tuple

from repro.graphs.walks import zipf_choice

Cell = Tuple[int, int]


class RoadNetwork:
    """A 4-connected grid city with Zipf-popular hotspots.

    :param width: grid columns.
    :param height: grid rows.
    :param hotspots: number of trip endpoints to scatter.
    :param skew: Zipf exponent of hotspot popularity.
    :param seed: seed for hotspot placement.
    """

    def __init__(
        self,
        width: int = 48,
        height: int = 48,
        hotspots: int = 24,
        skew: float = 1.1,
        seed: int = 0,
    ) -> None:
        if width < 2 or height < 2:
            raise ValueError("grid must be at least 2x2")
        if hotspots < 2:
            raise ValueError("need at least two hotspots")
        if hotspots > width * height:
            raise ValueError("more hotspots than cells")
        self.width = width
        self.height = height
        self.skew = skew
        rng = random.Random(seed)
        cells = rng.sample(
            [(r, c) for r in range(height) for c in range(width)], hotspots
        )
        self.hotspots: List[Cell] = cells
        self._route_cache: Dict[Tuple[Cell, Cell], Tuple[int, ...]] = {}

    # -- geometry ---------------------------------------------------------------

    def cell_id(self, cell: Cell) -> int:
        """Dense vertex id of a grid cell."""
        r, c = cell
        if not (0 <= r < self.height and 0 <= c < self.width):
            raise ValueError(f"cell {cell} outside the {self.height}x{self.width} grid")
        return r * self.width + c

    def cell_of(self, vertex: int) -> Cell:
        """Inverse of :meth:`cell_id`."""
        if not 0 <= vertex < self.width * self.height:
            raise ValueError(f"vertex {vertex} outside the grid id range")
        return divmod(vertex, self.width)

    def neighbours(self, cell: Cell) -> List[Cell]:
        """The 4-connected neighbours of a cell, in deterministic order."""
        r, c = cell
        out = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            nr, nc = r + dr, c + dc
            if 0 <= nr < self.height and 0 <= nc < self.width:
                out.append((nr, nc))
        return out

    # -- routing -------------------------------------------------------------------

    def route(self, origin: Cell, destination: Cell) -> Tuple[int, ...]:
        """Deterministic A* route between two cells, as vertex ids.

        Cached; the Manhattan heuristic over a uniform grid makes the search
        effectively a straight sweep, and the fixed neighbour order fixes the
        tie-breaking so shared trunk segments emerge between nearby pairs.
        """
        key = (origin, destination)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        path = self._astar(origin, destination)
        self._route_cache[key] = path
        return path

    def _astar(self, origin: Cell, destination: Cell) -> Tuple[int, ...]:
        def heuristic(cell: Cell) -> int:
            return abs(cell[0] - destination[0]) + abs(cell[1] - destination[1])

        open_heap: List[Tuple[int, int, Cell]] = [(heuristic(origin), 0, origin)]
        came_from: Dict[Cell, Optional[Cell]] = {origin: None}
        g_score: Dict[Cell, int] = {origin: 0}
        counter = 0
        while open_heap:
            _, _, current = heapq.heappop(open_heap)
            if current == destination:
                cells: List[Cell] = []
                walk: Optional[Cell] = current
                while walk is not None:
                    cells.append(walk)
                    walk = came_from[walk]
                cells.reverse()
                return tuple(self.cell_id(c) for c in cells)
            current_g = g_score[current]
            for nxt in self.neighbours(current):
                tentative = current_g + 1
                if tentative < g_score.get(nxt, 1 << 60):
                    g_score[nxt] = tentative
                    came_from[nxt] = current
                    counter += 1
                    heapq.heappush(open_heap, (tentative + heuristic(nxt), counter, nxt))
        raise RuntimeError("grid is connected; A* cannot fail")  # pragma: no cover

    def route_via(self, origin: Cell, waypoint: Cell, destination: Cell) -> Tuple[int, ...]:
        """A detour route through *waypoint* (duplicate joint cell removed).

        The result may revisit cells where the legs overlap — real recorded
        trips do too; the preprocessing pipeline's cycle cutting handles it.
        """
        first = self.route(origin, waypoint)
        second = self.route(waypoint, destination)
        return first + second[1:]

    # -- trip sampling ----------------------------------------------------------------

    def sample_trip(self, rng: random.Random, detour_probability: float = 0.15) -> Tuple[int, ...]:
        """Sample one trip between Zipf-popular hotspots.

        With *detour_probability*, the trip takes a detour through a random
        third hotspot (driver variation / passenger multi-stop).
        """
        n = len(self.hotspots)
        a = zipf_choice(rng, n, self.skew)
        b = zipf_choice(rng, n, self.skew)
        while b == a:
            b = zipf_choice(rng, n, self.skew)
        origin, destination = self.hotspots[a], self.hotspots[b]
        if rng.random() < detour_probability and n > 2:
            c = rng.randrange(n)
            if c not in (a, b):
                return self.route_via(origin, self.hotspots[c], destination)
        return self.route(origin, destination)

    def generate_trips(
        self, count: int, seed: int = 0, detour_probability: float = 0.15
    ) -> List[Tuple[int, ...]]:
        """Sample *count* trips deterministically for *seed*."""
        rng = random.Random(seed)
        return [self.sample_trip(rng, detour_probability) for _ in range(count)]
