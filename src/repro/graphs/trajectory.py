"""Noisy GPS trajectories and grid snapping (the Section VI-A *new id* step).

Raw taxi traces are sequences of ``(longitude, latitude)`` fixes.  The paper
cannot treat distinct coordinate pairs as vertices ("it is abnormal for taxi
drivers in the same city to never drive on the same road"), so it "increases
spatial granularity by dividing the space into grids ... and merges nodes in
the same grid into one".  This module provides both halves:

* :class:`TrajectoryRecorder` — turns a clean road route into a plausible
  raw GPS point stream: several fixes per cell (slow traffic → adjacent
  duplicates after snapping), jitter (off-route fixes), and occasional
  backtracking (loops).
* :func:`snap_to_grid` — quantizes coordinate streams to grid-cell ids.

The output deliberately violates simplicity so the preprocessing pipeline
(:mod:`repro.paths.preprocess`) has real work to do; the integration tests
assert the full raw-GPS → simple-paths → compression chain is lossless.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence, Tuple

from repro.graphs.road import RoadNetwork

Point = Tuple[float, float]


def snap_to_grid(
    points: Iterable[Point],
    cell_size: float,
    width: int,
) -> List[int]:
    """Quantize ``(x, y)`` fixes to dense grid-cell vertex ids.

    :param cell_size: edge length of a grid cell in coordinate units.
    :param width: number of cells per row (fixes the id layout
        ``id = row * width + col``).
    """
    if cell_size <= 0:
        raise ValueError("cell_size must be positive")
    ids: List[int] = []
    for x, y in points:
        col = max(0, min(width - 1, int(x / cell_size)))
        row = max(0, int(y / cell_size))
        ids.append(row * width + col)
    return ids


class TrajectoryRecorder:
    """Simulates a GPS recorder driving a route over a road network.

    :param network: the road grid the routes come from.
    :param fixes_per_cell: ``(min, max)`` GPS fixes emitted per visited cell.
    :param jitter: standard deviation of positional noise, in cell units.
    :param backtrack_probability: chance per cell of re-emitting the previous
        cell's position (creates loops for the cycle-cutting step).
    """

    def __init__(
        self,
        network: RoadNetwork,
        fixes_per_cell: Tuple[int, int] = (1, 3),
        jitter: float = 0.15,
        backtrack_probability: float = 0.02,
    ) -> None:
        lo, hi = fixes_per_cell
        if not 1 <= lo <= hi:
            raise ValueError("fixes_per_cell must be an increasing positive pair")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        if not 0 <= backtrack_probability <= 1:
            raise ValueError("backtrack_probability must be in [0, 1]")
        self.network = network
        self.fixes_per_cell = fixes_per_cell
        self.jitter = jitter
        self.backtrack_probability = backtrack_probability

    def record(self, route: Sequence[int], rng: random.Random) -> List[Point]:
        """Emit a raw GPS point stream for a route of cell-vertex ids.

        Points are in coordinate units where one cell is 1.0 wide; the cell
        centre of ``(row, col)`` is ``(col + 0.5, row + 0.5)``.
        """
        lo, hi = self.fixes_per_cell
        points: List[Point] = []
        previous_centre: Point = (0.0, 0.0)
        for index, vertex in enumerate(route):
            row, col = self.network.cell_of(vertex)
            centre = (col + 0.5, row + 0.5)
            fixes = rng.randint(lo, hi)
            for fix in range(fixes):
                points.append(
                    (
                        centre[0] + rng.gauss(0.0, self.jitter),
                        centre[1] + rng.gauss(0.0, self.jitter),
                    )
                )
                if (
                    index > 0
                    and fix == 0
                    and rng.random() < self.backtrack_probability
                ):
                    # A stray fix back where we just were, sandwiched between
                    # current-cell fixes: a genuine loop after snapping.
                    points.append(previous_centre)
            previous_centre = centre
        return points

    def record_dataset(
        self,
        trip_count: int,
        seed: int = 0,
        detour_probability: float = 0.15,
    ) -> List[List[int]]:
        """Record *trip_count* trips and snap them back to cell-id walks.

        The returned walks are *raw*: adjacent duplicates, loops and trivial
        fragments included.  Feed them to
        :func:`repro.paths.preprocess.preprocess_paths`.
        """
        rng = random.Random(seed)
        walks: List[List[int]] = []
        for _ in range(trip_count):
            route = self.network.sample_trip(rng, detour_probability)
            points = self.record(route, rng)
            walks.append(snap_to_grid(points, 1.0, self.network.width))
        return walks
