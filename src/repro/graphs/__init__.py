"""Graph substrates and path generators.

The paper's datasets are private (Alibaba Cloud IP hops) or gated (CRAWDAD
taxi traces); this subpackage builds synthetic substrates with the same
compression-relevant structure — bounded id universes, heavy-tailed route
popularity, long shared segments:

* :mod:`repro.graphs.topology` — a tiered cloud service topology and its
  transaction-path sampler (the Figure 1/2 scenario).
* :mod:`repro.graphs.road` — grid road networks with hotspot-to-hotspot
  A* routing (the taxi scenario).
* :mod:`repro.graphs.trajectory` — noisy GPS point streams over road routes
  plus grid snapping, feeding the Section VI-A preprocessing pipeline.
* :mod:`repro.graphs.walks` — generic random walks over adjacency maps, for
  custom and adversarial workloads.
"""

from repro.graphs.digraph import DiGraph
from repro.graphs.road import RoadNetwork
from repro.graphs.scalefree import navigation_sessions, preferential_attachment_graph
from repro.graphs.topology import CloudTopology
from repro.graphs.trajectory import TrajectoryRecorder, snap_to_grid
from repro.graphs.walks import random_simple_walks, zipf_choice

__all__ = [
    "DiGraph",
    "RoadNetwork",
    "navigation_sessions",
    "preferential_attachment_graph",
    "CloudTopology",
    "TrajectoryRecorder",
    "snap_to_grid",
    "random_simple_walks",
    "zipf_choice",
]
