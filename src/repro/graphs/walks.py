"""Generic walk generation utilities shared by the workload generators."""

from __future__ import annotations

import bisect
import random
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple


@lru_cache(maxsize=128)
def _zipf_cdf(count: int, exponent: float) -> Tuple[float, ...]:
    """Cumulative weights for ``P(i) ∝ (i+1)^-exponent`` over ``[0, count)``."""
    weights = [(i + 1) ** -exponent for i in range(count)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    cumulative[-1] = 1.0  # guard against float drift
    return tuple(cumulative)


def zipf_choice(rng: random.Random, count: int, exponent: float = 1.1) -> int:
    """Pick an index in ``[0, count)`` with Zipf popularity skew.

    Index 0 is the most popular.  Inverse-CDF sampling over cached harmonic
    weights; ``exponent`` controls the skew (≈ 1.0–1.3 matches the routing /
    route-popularity skew real systems show).
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if count == 1:
        return 0
    return bisect.bisect_left(_zipf_cdf(count, exponent), rng.random())


def random_simple_walks(
    adjacency: Dict[int, Sequence[int]],
    count: int,
    max_length: int,
    seed: int = 0,
) -> List[Tuple[int, ...]]:
    """Generate *count* simple walks over an adjacency map.

    Each walk starts at a uniformly random vertex and keeps stepping to an
    unvisited out-neighbour until none remains or *max_length* is reached.
    Useful for adversarial/unstructured workloads where no subpath should be
    systematically frequent.
    """
    if max_length < 1:
        raise ValueError("max_length must be >= 1")
    rng = random.Random(seed)
    vertices = sorted(adjacency)
    if not vertices:
        return []
    walks: List[Tuple[int, ...]] = []
    for _ in range(count):
        current = rng.choice(vertices)
        walk = [current]
        visited = {current}
        while len(walk) < max_length:
            options = [v for v in adjacency.get(current, ()) if v not in visited]
            if not options:
                break
            current = rng.choice(options)
            walk.append(current)
            visited.add(current)
        walks.append(tuple(walk))
    return walks
