"""Compression-aware vertex reordering: invertible orders fit on a corpus.

The WebGraph lineage (Boldi & Vigna; Apostolico & Drovandi; Log(Graph))
shows that id *ordering* alone buys compression: under variable-length
integer coding, ids below 128 cost one byte, below 16384 two, so the
hottest vertices should own the smallest ids, and vertices that co-occur
in the same paths should sit in adjacent id ranges so shared subpaths
become byte-adjacent.  This module is that pass for OFFS — a registry of
ordering strategies, each producing an invertible :class:`VertexOrder`
with a deterministic tie-break, fit on a :class:`~repro.core.FlatCorpus`
(or any path iterable) in one pass over the data:

* ``identity`` — keep ids as they are (:func:`fit_order` returns ``None``;
  nothing is persisted and readers skip the inversion entirely).
* ``frequency`` — hottest-first ids, the :class:`~repro.paths.remap.FrequencyRemapper`
  policy promoted into the registry (sort by ``(-count, vertex)``).
* ``bfs`` — Apostolico–Drovandi-style breadth-first numbering over the
  co-occurrence graph induced by the workload's paths (edges between
  consecutive path vertices); each BFS restarts at the most frequent
  unvisited vertex, neighbors visit hottest-first.
* ``locality`` — an LLP-like label-propagation ordering: vertices adopt
  the most common label among their co-occurrence neighbors for a few
  deterministic rounds, clusters are laid out hottest-cluster-first and
  hottest-vertex-first within each cluster.

Orders persist as the RPC2 order-table section (``docs/formats.md``) via
:meth:`VertexOrder.to_bytes` / :meth:`VertexOrder.from_bytes`, and the
stores apply them at the boundary: ingestion maps original → new ids,
every retrieval surface inverts, so callers always see original ids.
"""

from __future__ import annotations

from collections import Counter, defaultdict, deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import CorruptDataError, InvalidInputError
from repro.obs import catalog
from repro.obs.runtime import active_timer, get_active
from repro.paths.encoding import VarintEncoding

#: The closed set of strategy names, ``identity`` first (the default).
ORDER_STRATEGIES: Tuple[str, ...] = ("identity", "frequency", "bfs", "locality")

#: Label-propagation rounds for the ``locality`` strategy.  Four rounds is
#: the LLP-style sweet spot on path workloads: labels stabilize quickly on
#: the small-diameter co-occurrence graphs paths induce.
_LOCALITY_ROUNDS = 4

_VARINT = VarintEncoding()


def _varint(value: int) -> bytes:
    """One unsigned LEB128 varint."""
    if value < 0:
        raise InvalidInputError("varint encoding requires non-negative integers")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    """Decode one varint at *pos*; returns ``(value, next_pos)``."""
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CorruptDataError("truncated varint in order-table body")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise CorruptDataError("varint in order-table body exceeds 64 bits")


class VertexOrder:
    """A learned bijective vertex relabelling with a named strategy.

    :param strategy: the registry name that produced this order.
    :param backward: original ids in new-id order — ``backward[new] == old``.

    The forward map (original → new) is derived; both directions are O(1).
    Unknown vertices raise :class:`~repro.core.errors.InvalidInputError`
    on :meth:`apply_vertex` — an order only covers the corpus it was fit
    on, and silently passing ids through would corrupt the store.
    """

    __slots__ = ("strategy", "_forward", "_backward")

    def __init__(self, strategy: str, backward: Sequence[int]) -> None:
        if strategy not in ORDER_STRATEGIES:
            raise InvalidInputError(
                f"unknown order strategy {strategy!r}; "
                f"expected one of {ORDER_STRATEGIES}"
            )
        backward_list = list(backward)
        forward = {old: new for new, old in enumerate(backward_list)}
        if len(forward) != len(backward_list):
            raise InvalidInputError("order backward map repeats a vertex id")
        for old in backward_list:
            if old < 0:
                raise InvalidInputError("vertex ids must be non-negative")
        self.strategy = strategy
        self._forward = forward
        self._backward = backward_list

    # -- application -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._backward)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VertexOrder):
            return NotImplemented
        return self.strategy == other.strategy and self._backward == other._backward

    def __repr__(self) -> str:
        return f"VertexOrder(strategy={self.strategy!r}, vertices={len(self)})"

    def apply_vertex(self, vertex: int) -> int:
        """The new id of *vertex*."""
        try:
            return self._forward[vertex]
        except KeyError:
            raise InvalidInputError(
                f"vertex {vertex} is not covered by this {self.strategy!r} order"
            ) from None

    def invert_vertex(self, vertex: int) -> int:
        """The original id behind new id *vertex*."""
        if not 0 <= vertex < len(self._backward):
            raise InvalidInputError(
                f"new id {vertex} out of range for an order of {len(self)} vertices"
            )
        return self._backward[vertex]

    def apply_path(self, path: Sequence[int]) -> Tuple[int, ...]:
        """Relabel one path into new-id space."""
        forward = self._forward
        try:
            return tuple(forward[v] for v in path)
        except KeyError as exc:
            raise InvalidInputError(
                f"vertex {exc.args[0]} is not covered by this {self.strategy!r} order"
            ) from None

    def invert_path(self, path: Sequence[int]) -> Tuple[int, ...]:
        """Restore one relabelled path to original ids."""
        backward = self._backward
        try:
            return tuple(backward[v] for v in path)
        except IndexError:
            raise InvalidInputError(
                "path contains a new id outside this order"
            ) from None

    def transform_corpus(self, corpus):
        """A new :class:`~repro.core.FlatCorpus` with every vertex relabelled."""
        from array import array

        from repro.core.flatcorpus import FlatCorpus, as_flat_corpus

        flat = as_flat_corpus(corpus)
        forward = self._forward
        try:
            buffer = array("q", (forward[v] for v in flat.buffer))
        except KeyError as exc:
            raise InvalidInputError(
                f"vertex {exc.args[0]} is not covered by this {self.strategy!r} order"
            ) from None
        return FlatCorpus(buffer, flat.offsets, name=f"{flat.name}/{self.strategy}")

    # -- size accounting -----------------------------------------------------------

    def size_bytes(self, encoding=None) -> int:
        """Byte cost of persisting this order's backward map under *encoding*.

        Default is varint — the RPOT section's actual coding: a count
        marker plus one integer per vertex (the original id at each new
        id).  This is the cost :meth:`OFFSCodec.rule_size_bytes` adds so
        compression ratios charge for the mapping they depend on.
        """
        enc = encoding if encoding is not None else _VARINT
        total = enc.size_of_value(len(self._backward))
        for old in self._backward:
            total += enc.size_of_value(old)
        return total

    # -- persistence ---------------------------------------------------------------

    def as_table(self) -> List[Tuple[int, int]]:
        """``(old id, new id)`` pairs in new-id order (serializable)."""
        return [(old, new) for new, old in enumerate(self._backward)]

    @classmethod
    def from_table(
        cls, strategy: str, table: Iterable[Tuple[int, int]]
    ) -> "VertexOrder":
        """Rebuild from :meth:`as_table` output."""
        backward: Dict[int, int] = {new: old for old, new in table}
        if sorted(backward) != list(range(len(backward))):
            raise InvalidInputError("order table new ids must be dense 0..n-1")
        return cls(strategy, [backward[new] for new in range(len(backward))])

    def to_bytes(self) -> bytes:
        """The RPOT section *body*: strategy name + backward map, varints.

        Layout: ``varint(len(name))  name-utf8  varint(count)  count ×
        varint(original id)`` — original ids in new-id order.  The section
        framing (magic, length, CRC) lives in :mod:`repro.core.serialize`.
        """
        name = self.strategy.encode("utf-8")
        out = bytearray(_varint(len(name)))
        out += name
        out += _varint(len(self._backward))
        for old in self._backward:
            out += _varint(old)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "VertexOrder":
        """Decode a :meth:`to_bytes` body (raises ``CorruptDataError``)."""
        name_len, pos = _read_varint(data, 0)
        if pos + name_len > len(data):
            raise CorruptDataError("order-table strategy name overruns the body")
        try:
            strategy = data[pos : pos + name_len].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CorruptDataError(f"order-table strategy name is not UTF-8: {exc}")
        pos += name_len
        if strategy not in ORDER_STRATEGIES or strategy == "identity":
            raise CorruptDataError(
                f"order-table names unknown strategy {strategy!r}"
            )
        count, pos = _read_varint(data, pos)
        backward: List[int] = []
        for _ in range(count):
            old, pos = _read_varint(data, pos)
            backward.append(old)
        if pos != len(data):
            raise CorruptDataError(
                f"order-table body has {len(data) - pos} trailing byte(s)"
            )
        try:
            return cls(strategy, backward)
        except InvalidInputError as exc:
            raise CorruptDataError(f"order-table body invalid: {exc}") from None


# -- strategy fitting -----------------------------------------------------------


def _scan(paths: Iterable[Sequence[int]]):
    """One pass over *paths*: vertex frequencies + co-occurrence adjacency."""
    counts: Counter = Counter()
    adjacency: Dict[int, set] = defaultdict(set)
    for path in paths:
        counts.update(path)
        for a, b in zip(path, path[1:]):
            if a != b:
                adjacency[a].add(b)
                adjacency[b].add(a)
    return counts, adjacency


def _fit_frequency(counts: Counter, adjacency) -> List[int]:
    """Hottest-first; equal frequencies break on the smaller original id."""
    return [v for v, _ in sorted(counts.items(), key=lambda e: (-e[1], e[0]))]


def _fit_bfs(counts: Counter, adjacency) -> List[int]:
    """BFS over the co-occurrence graph, hottest seed and neighbors first."""
    backward: List[int] = []
    visited = set()
    hotness = lambda v: (-counts[v], v)  # noqa: E731 - tiny local key
    for seed in sorted(counts, key=hotness):
        if seed in visited:
            continue
        visited.add(seed)
        queue = deque((seed,))
        while queue:
            v = queue.popleft()
            backward.append(v)
            for u in sorted(adjacency.get(v, ()), key=hotness):
                if u not in visited:
                    visited.add(u)
                    queue.append(u)
    return backward


def _fit_locality(counts: Counter, adjacency) -> List[int]:
    """Label propagation: cluster co-occurring vertices, lay clusters out.

    Every vertex starts as its own label; for a bounded number of rounds
    each vertex (in ascending-id order — deterministic) adopts the most
    common label among its neighbors, ties to the smallest label.  Final
    clusters are ordered by total frequency (hottest cluster first, ties
    on the smallest member id) and hottest-first within a cluster.
    """
    labels = {v: v for v in counts}
    ordered_vertices = sorted(counts)
    for _ in range(_LOCALITY_ROUNDS):
        changed = False
        for v in ordered_vertices:
            neighbors = adjacency.get(v)
            if not neighbors:
                continue
            tally: Counter = Counter(labels[u] for u in neighbors)
            best = min(tally.items(), key=lambda e: (-e[1], e[0]))[0]
            if best != labels[v]:
                labels[v] = best
                changed = True
        if not changed:
            break
    clusters: Dict[int, List[int]] = defaultdict(list)
    for v in ordered_vertices:
        clusters[labels[v]].append(v)
    ranked = sorted(
        clusters.values(),
        key=lambda members: (-sum(counts[v] for v in members), min(members)),
    )
    backward: List[int] = []
    for members in ranked:
        backward.extend(sorted(members, key=lambda v: (-counts[v], v)))
    return backward


_FITTERS = {
    "frequency": _fit_frequency,
    "bfs": _fit_bfs,
    "locality": _fit_locality,
}


def fit_order(strategy: str, paths: Iterable[Sequence[int]]) -> Optional[VertexOrder]:
    """Fit *strategy* on *paths* (a corpus or any path iterable), one pass.

    Returns ``None`` for ``identity`` — the no-op order is never
    materialized, so every ``order is None`` check downstream stays the
    zero-cost fast path.  Publishes ``reorder.*`` observability when a
    scope is active: fit time, vertex count, order entropy, and the
    varint bytes the order saves across the corpus.
    """
    if strategy not in ORDER_STRATEGIES:
        raise InvalidInputError(
            f"unknown order strategy {strategy!r}; expected one of {ORDER_STRATEGIES}"
        )
    if strategy == "identity":
        return None
    with active_timer(catalog.REORDER_FIT_SECONDS):
        counts, adjacency = _scan(paths)
        order = VertexOrder(strategy, _FITTERS[strategy](counts, adjacency))
    obs = get_active()
    if obs is not None:
        obs.registry.set_gauge(catalog.REORDER_VERTICES, len(order))
        obs.registry.set_gauge(
            catalog.REORDER_ORDER_ENTROPY, order_entropy_bits(counts)
        )
        obs.registry.set_gauge(
            catalog.REORDER_VARINT_BYTES_SAVED, _bytes_saved(order, counts)
        )
    return order


def order_entropy_bits(counts) -> float:
    """Shannon entropy (bits) of the vertex-frequency distribution.

    Low entropy means a few vertices dominate — exactly when a
    hottest-first order pays off; high entropy (uniform traffic) predicts
    small reordering wins.  Accepts a ``Counter``/mapping of frequencies.
    """
    from math import log2

    total = sum(counts.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts.values():
        if count:
            p = count / total
            entropy -= p * log2(p)
    return entropy


def _bytes_saved(order: VertexOrder, counts) -> int:
    """Varint bytes saved across all occurrences, from a frequency map."""
    size = _VARINT.size_of_value
    saved = 0
    for old, count in counts.items():
        saved += count * (size(old) - size(order.apply_vertex(old)))
    return saved


def varint_bytes_saved(order: Optional[VertexOrder], paths) -> int:
    """Varint bytes *order* saves summed over every vertex occurrence.

    Positive means the reordered corpus codes smaller than the original
    under LEB128 — the headline number ``benchmarks/bench_reorder.py``
    reports.  ``None`` (identity) trivially saves nothing.
    """
    if order is None:
        return 0
    counts: Counter = Counter()
    for path in paths:
        counts.update(path)
    return _bytes_saved(order, counts)
