"""Persistence for path datasets.

Two formats are supported:

* **Text** — one path per line, space-separated vertex ids.  Human readable,
  diff-friendly; the format used by the example scripts.
* **Binary** — a compact length-prefixed varint stream with a small header,
  for round-tripping large datasets and for the on-disk side of the
  compressed store.

Both are exact: ``load(save(ds)) == ds``.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path as FsPath
from typing import List, Tuple, Union

from repro.paths.dataset import PathDataset
from repro.paths.encoding import VarintEncoding

_MAGIC = b"RPPD"  # RePro Path Dataset
_VERSION = 1
_VARINT = VarintEncoding()


def save_text(dataset: PathDataset, path: Union[str, FsPath]) -> None:
    """Write *dataset* as one space-separated path per line."""
    with open(path, "w", encoding="ascii") as fh:
        for p in dataset:
            fh.write(" ".join(str(v) for v in p))
            fh.write("\n")


def load_text(path: Union[str, FsPath], name: str = "dataset") -> PathDataset:
    """Read a dataset written by :func:`save_text`.

    Blank lines are skipped; malformed tokens raise :class:`ValueError` with
    the offending line number.
    """
    paths: List[Tuple[int, ...]] = []
    with open(path, "r", encoding="ascii") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                paths.append(tuple(int(tok) for tok in line.split()))
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: malformed path line: {line!r}") from exc
    return PathDataset(paths, name=name)


def dumps_binary(dataset: PathDataset) -> bytes:
    """Serialize *dataset* to a compact binary blob.

    Layout: magic, version byte, path count (u32), then for each path a
    varint length followed by varint vertex ids.
    """
    buf = io.BytesIO()
    buf.write(_MAGIC)
    buf.write(struct.pack("<BI", _VERSION, len(dataset)))
    for p in dataset:
        buf.write(_VARINT.encode([len(p)]))
        buf.write(_VARINT.encode(p))
    return buf.getvalue()


def loads_binary(data: bytes, name: str = "dataset") -> PathDataset:
    """Restore a dataset from :func:`dumps_binary` output."""
    if data[:4] != _MAGIC:
        raise ValueError("not a repro path-dataset blob (bad magic)")
    version, count = struct.unpack_from("<BI", data, 4)
    if version != _VERSION:
        raise ValueError(f"unsupported path-dataset version {version}")
    values = _VARINT.decode(data[9:])
    paths: List[Tuple[int, ...]] = []
    pos = 0
    for _ in range(count):
        if pos >= len(values):
            raise ValueError("truncated path-dataset blob")
        length = values[pos]
        pos += 1
        if pos + length > len(values):
            raise ValueError("truncated path inside dataset blob")
        paths.append(tuple(values[pos : pos + length]))
        pos += length
    if pos != len(values):
        raise ValueError("trailing garbage after last path")
    return PathDataset(paths, name=name)


def save_binary(dataset: PathDataset, path: Union[str, FsPath]) -> None:
    """Write the binary form of *dataset* to *path*."""
    with open(path, "wb") as fh:
        fh.write(dumps_binary(dataset))


def load_binary(path: Union[str, FsPath], name: str = "dataset") -> PathDataset:
    """Read a dataset written by :func:`save_binary`."""
    with open(path, "rb") as fh:
        return loads_binary(fh.read(), name=name)
