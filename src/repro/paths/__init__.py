"""Path model, datasets, preprocessing, encoding and I/O.

This subpackage provides the substrate on which every compressor in the
repository operates:

* :mod:`repro.paths.path` — the path abstraction (a sequence of vertex ids)
  and validity helpers matching the paper's definitions (Section II-A).
* :mod:`repro.paths.dataset` — an in-memory collection of paths with the
  statistics reported in Table III of the paper.
* :mod:`repro.paths.preprocess` — the preprocessing pipeline of Section VI-A
  (id remapping, noise removal, cycle cutting, pruning, grouping).
* :mod:`repro.paths.encoding` — integer stream encodings (fixed width and
  varint) used for byte-accurate size accounting.
* :mod:`repro.paths.reorder` — compression-aware vertex reordering:
  invertible :class:`~repro.paths.reorder.VertexOrder` mappings fit by the
  ``identity`` / ``frequency`` / ``bfs`` / ``locality`` strategies.
* :mod:`repro.paths.io` — simple text/binary persistence for path sets.
"""

from repro.paths.path import (
    Path,
    is_simple,
    is_valid_path,
    subpath,
    subpaths_of_length,
    common_prefix_length,
)
from repro.paths.dataset import PathDataset, DatasetStats
from repro.paths.preprocess import (
    PreprocessReport,
    assign_new_ids,
    cut_cycles,
    drop_adjacent_duplicates,
    group_by_terminals,
    preprocess_paths,
    prune_trivial,
)
from repro.paths.encoding import (
    FixedWidthEncoding,
    VarintEncoding,
    decode_stream,
    encode_stream,
)
from repro.paths.remap import FrequencyRemapper
from repro.paths.reorder import (
    ORDER_STRATEGIES,
    VertexOrder,
    fit_order,
    order_entropy_bits,
    varint_bytes_saved,
)
from repro.paths.lightweight import (
    LIGHTWEIGHT_CODECS,
    DeltaCoding,
    FrameOfReference,
    NullSuppression,
    RunLengthEncoding,
    lightweight_sizes,
)

__all__ = [
    "Path",
    "is_simple",
    "is_valid_path",
    "subpath",
    "subpaths_of_length",
    "common_prefix_length",
    "PathDataset",
    "DatasetStats",
    "PreprocessReport",
    "assign_new_ids",
    "cut_cycles",
    "drop_adjacent_duplicates",
    "group_by_terminals",
    "preprocess_paths",
    "prune_trivial",
    "FixedWidthEncoding",
    "VarintEncoding",
    "encode_stream",
    "decode_stream",
    "LIGHTWEIGHT_CODECS",
    "DeltaCoding",
    "FrameOfReference",
    "NullSuppression",
    "RunLengthEncoding",
    "lightweight_sizes",
    "FrequencyRemapper",
    "ORDER_STRATEGIES",
    "VertexOrder",
    "fit_order",
    "order_entropy_bits",
    "varint_bytes_saved",
]
