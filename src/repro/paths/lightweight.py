"""The five lightweight compression families of the paper's survey (§II-B).

The paper positions OFFS inside the lightweight-compression landscape of
Damme et al.'s EDBT'17 survey: frame-of-reference (FOR), delta coding
(DELTA), dictionary compression (DICT), run-length encoding (RLE) and null
suppression (NS).  OFFS is the DICT representative; this module implements
the other four over integer sequences, both

* as honest codecs (exact byte streams, lossless round-trip), and
* as comparison baselines — ``benchmarks/bench_lightweight_survey.py``
  shows why none of them exploits the *cross-path* subpath redundancy that
  dictionary compression captures (vertex ids along a path are neither
  clustered (FOR), smooth (DELTA) nor repetitive (RLE)).

All codecs share one shape: ``encode(values) -> bytes`` and
``decode(blob) -> List[int]``, with null suppression (LEB128 varints, the
NS family's byte-aligned member) as the backing byte layer.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.paths.encoding import VarintEncoding

_VARINT = VarintEncoding()


def _zigzag(value: int) -> int:
    """Map a signed integer to unsigned (0,-1,1,-2 → 0,1,2,3)."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    """Inverse of :func:`_zigzag`."""
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


class NullSuppression:
    """NS: drop leading zero bytes — here byte-aligned LEB128 varints.

    The physical-level family; the other codecs layer on top of it.
    """

    name = "NS"

    def encode(self, values: Sequence[int]) -> bytes:
        return _VARINT.encode([len(values)]) + _VARINT.encode(values)

    def decode(self, blob: bytes) -> List[int]:
        decoded = _VARINT.decode(blob)
        if not decoded:
            raise ValueError("empty NS stream")
        count, values = decoded[0], decoded[1:]
        if len(values) != count:
            raise ValueError(f"NS stream claims {count} values, has {len(values)}")
        return values


class FrameOfReference:
    """FOR: store each value as an offset from the block minimum.

    ``[header: count, reference] [offsets...]`` — wins when values cluster
    in a narrow band (e.g. column stores with sorted runs).
    """

    name = "FOR"

    def encode(self, values: Sequence[int]) -> bytes:
        if not values:
            return _VARINT.encode([0])
        reference = min(values)
        out = bytearray(_VARINT.encode([len(values), reference]))
        out += _VARINT.encode([v - reference for v in values])
        return bytes(out)

    def decode(self, blob: bytes) -> List[int]:
        decoded = _VARINT.decode(blob)
        if not decoded:
            raise ValueError("empty FOR stream")
        count = decoded[0]
        if count == 0:
            return []
        if len(decoded) != count + 2:
            raise ValueError("FOR stream length mismatch")
        reference = decoded[1]
        return [reference + v for v in decoded[2:]]


class DeltaCoding:
    """DELTA: store each value as the (zig-zagged) difference from its
    predecessor — wins on smooth/sorted sequences."""

    name = "DELTA"

    def encode(self, values: Sequence[int]) -> bytes:
        out = bytearray(_VARINT.encode([len(values)]))
        previous = 0
        deltas = []
        for v in values:
            deltas.append(_zigzag(v - previous))
            previous = v
        out += _VARINT.encode(deltas)
        return bytes(out)

    def decode(self, blob: bytes) -> List[int]:
        decoded = _VARINT.decode(blob)
        if not decoded:
            raise ValueError("empty DELTA stream")
        count, deltas = decoded[0], decoded[1:]
        if len(deltas) != count:
            raise ValueError("DELTA stream length mismatch")
        values: List[int] = []
        current = 0
        for d in deltas:
            current += _unzigzag(d)
            if current < 0:
                raise ValueError("DELTA stream decodes to a negative id")
            values.append(current)
        return values


class RunLengthEncoding:
    """RLE: encode runs as (value, length) pairs — wins on long constant
    runs, which simple paths by definition never contain."""

    name = "RLE"

    def encode(self, values: Sequence[int]) -> bytes:
        pairs: List[int] = []
        index = 0
        n = len(values)
        while index < n:
            value = values[index]
            run = 1
            while index + run < n and values[index + run] == value:
                run += 1
            pairs.extend((value, run))
            index += run
        return _VARINT.encode([len(pairs) // 2]) + _VARINT.encode(pairs)

    def decode(self, blob: bytes) -> List[int]:
        decoded = _VARINT.decode(blob)
        if not decoded:
            raise ValueError("empty RLE stream")
        count, pairs = decoded[0], decoded[1:]
        if len(pairs) != 2 * count:
            raise ValueError("RLE stream length mismatch")
        values: List[int] = []
        for i in range(0, len(pairs), 2):
            value, run = pairs[i], pairs[i + 1]
            if run < 1:
                raise ValueError("RLE run of non-positive length")
            values.extend([value] * run)
        return values


#: The four non-DICT lightweight families, in the survey's order.
LIGHTWEIGHT_CODECS = (
    FrameOfReference(),
    DeltaCoding(),
    RunLengthEncoding(),
    NullSuppression(),
)


def lightweight_sizes(values: Sequence[int]) -> dict:
    """Encoded byte size of *values* under each lightweight family.

    Used by the survey benchmark; raw 32-bit size is included for scale.
    """
    sizes = {codec.name: len(codec.encode(values)) for codec in LIGHTWEIGHT_CODECS}
    sizes["raw32"] = 4 * len(values)
    return sizes
