"""In-memory path datasets and their statistics.

A :class:`PathDataset` is the unit every compressor consumes: an ordered
collection of simple paths over a shared vertex-id universe.  Its
:class:`DatasetStats` mirror the columns of Table III in the paper
(path number, node number, id number, maximum length, average length).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class DatasetStats:
    """The Table III statistics of a path dataset.

    * ``path_number`` — number of paths.
    * ``node_number`` — total vertices summed over all paths (with
      multiplicity), the paper's ``|P|`` in node units.
    * ``id_number`` — number of distinct vertex ids.
    * ``max_length`` / ``avg_length`` — path length extremes.
    """

    name: str
    path_number: int
    node_number: int
    id_number: int
    max_length: int
    avg_length: float

    def as_row(self) -> Tuple[str, int, int, int, int, float]:
        """Return the stats as a Table III row tuple."""
        return (
            self.name,
            self.path_number,
            self.node_number,
            self.id_number,
            self.max_length,
            round(self.avg_length, 2),
        )


class PathDataset:
    """An ordered, indexable collection of integer paths.

    Paths are stored as tuples of vertex ids.  The class is deliberately
    lean — compressors iterate it, benchmarks sample it, preprocessors build
    it — and it validates nothing beyond integer-ness at construction so that
    the preprocessing pipeline (which *repairs* invalid inputs) can use it for
    raw data too.

    :param paths: iterable of vertex-id sequences.
    :param name: label used in stats and benchmark reports.
    """

    def __init__(self, paths: Iterable[Sequence[int]], name: str = "dataset") -> None:
        self.name = name
        self._paths: List[Tuple[int, ...]] = [tuple(p) for p in paths]

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._paths)

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        return iter(self._paths)

    def __getitem__(self, index: int) -> Tuple[int, ...]:
        return self._paths[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathDataset):
            return NotImplemented
        return self._paths == other._paths

    def __repr__(self) -> str:
        return f"PathDataset(name={self.name!r}, paths={len(self._paths)})"

    # -- derived data --------------------------------------------------------

    @property
    def paths(self) -> List[Tuple[int, ...]]:
        """The underlying list of path tuples (do not mutate)."""
        return self._paths

    def node_count(self) -> int:
        """Total number of vertices across all paths (with multiplicity)."""
        return sum(len(p) for p in self._paths)

    def vertex_ids(self) -> set:
        """The set of distinct vertex ids appearing in the dataset."""
        ids: set = set()
        for p in self._paths:
            ids.update(p)
        return ids

    def max_vertex_id(self) -> int:
        """Largest vertex id present; ``-1`` for an empty dataset."""
        best = -1
        for p in self._paths:
            if p:
                m = max(p)
                if m > best:
                    best = m
        return best

    def stats(self) -> DatasetStats:
        """Compute the Table III statistics for this dataset."""
        n_paths = len(self._paths)
        n_nodes = self.node_count()
        lengths = [len(p) for p in self._paths]
        return DatasetStats(
            name=self.name,
            path_number=n_paths,
            node_number=n_nodes,
            id_number=len(self.vertex_ids()),
            max_length=max(lengths) if lengths else 0,
            avg_length=(n_nodes / n_paths) if n_paths else 0.0,
        )

    def to_flat(self):
        """This dataset interned as a :class:`~repro.core.flatcorpus.FlatCorpus`.

        The flat form is what the batch kernels and the parallel fan-out
        consume; see :mod:`repro.core.flatcorpus`.
        """
        from repro.core.flatcorpus import FlatCorpus

        return FlatCorpus.from_paths(self._paths, name=self.name)

    # -- sampling ------------------------------------------------------------

    def sample_every(self, stride: int) -> "PathDataset":
        """Return every ``stride``-th path (the paper's ``1 in every s``)."""
        if stride < 1:
            raise ValueError("stride must be >= 1")
        return PathDataset(self._paths[::stride], name=f"{self.name}/every{stride}")

    def sample_fraction(self, fraction: float, seed: int = 0) -> "PathDataset":
        """Return a uniform random sample of roughly ``fraction`` of paths.

        Used by the Fig. 6c scalability experiment (tables built from 20%
        to 100% of arriving paths).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if fraction == 1.0:
            return self
        rng = random.Random(seed)
        count = max(1, round(fraction * len(self._paths)))
        picked = rng.sample(range(len(self._paths)), count)
        picked.sort()
        return PathDataset(
            (self._paths[i] for i in picked),
            name=f"{self.name}/{fraction:.0%}",
        )

    def head(self, count: int) -> "PathDataset":
        """Return the first *count* paths."""
        return PathDataset(self._paths[:count], name=f"{self.name}/head{count}")

    # -- construction helpers -------------------------------------------------

    @classmethod
    def concat(cls, datasets: Sequence["PathDataset"], name: Optional[str] = None) -> "PathDataset":
        """Concatenate several datasets into one."""
        merged: List[Tuple[int, ...]] = []
        for ds in datasets:
            merged.extend(ds.paths)
        return cls(merged, name=name or "+".join(ds.name for ds in datasets))
