"""The preprocessing pipeline of Section VI-A.

Raw recorded walks (IP hop logs, grid-snapped trajectories) are rarely simple
paths.  The paper prepares them in four steps, all implemented here:

1. **New id** (:func:`assign_new_ids`) — map arbitrary hashable labels
   (IP strings, grid cells) to dense integer ids starting at zero.
2. **Noise** (:func:`drop_adjacent_duplicates`) — collapse runs of adjacent
   duplicate vertices, keeping the first occurrence.
3. **Cycle** (:func:`cut_cycles`) — when a vertex recurs, cut *before* the
   first recurring node, producing shorter cycle-free pieces.
4. **Prune** (:func:`prune_trivial`) — discard paths with at most 2 vertices.

:func:`preprocess_paths` chains 2→3→4 (id assignment is separate since inputs
may already be integers) and reports what was changed.  The guarantee, tested
property-based, is that every output path is simple and has length ≥ 3.

**Group set** (:func:`group_by_terminals`) organizes paths into sets by their
terminal vertices, the grouping rule the paper gives as its example.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.paths.dataset import PathDataset

MIN_USEFUL_LENGTH = 3  # the paper discards "paths of size no more than 2"


def assign_new_ids(
    raw_paths: Iterable[Sequence[Hashable]],
) -> Tuple[List[List[int]], Dict[Hashable, int]]:
    """Map arbitrary vertex labels to dense integer ids.

    Returns the relabelled paths and the ``label -> id`` mapping.  Ids are
    assigned in first-seen order, so the mapping is deterministic for a given
    input order.
    """
    mapping: Dict[Hashable, int] = {}
    result: List[List[int]] = []
    for path in raw_paths:
        relabelled = []
        for label in path:
            if label not in mapping:
                mapping[label] = len(mapping)
            relabelled.append(mapping[label])
        result.append(relabelled)
    return result, mapping


def drop_adjacent_duplicates(path: Sequence[int]) -> List[int]:
    """Collapse runs of adjacent duplicates, keeping the first of each run.

    This is the paper's *noise* repair: GPS jitter and repeated log entries
    record the same vertex several times in a row.
    """
    out: List[int] = []
    for v in path:
        if not out or out[-1] != v:
            out.append(v)
    return out


def cut_cycles(path: Sequence[int]) -> List[List[int]]:
    """Split a walk into simple pieces by cutting before recurring vertices.

    Following the paper: "we solve the loop issue by cutting before the first
    recurring node and generating two shorter paths".  Applied repeatedly, a
    walk with several loops yields several simple pieces.  Each returned piece
    is guaranteed simple.

    >>> cut_cycles([1, 2, 3, 2, 4])
    [[1, 2, 3], [2, 4]]
    """
    pieces: List[List[int]] = []
    current: List[int] = []
    seen: set = set()
    for v in path:
        if v in seen:
            # Cut before the first recurring node: the recurring vertex
            # starts a fresh piece.
            pieces.append(current)
            current = [v]
            seen = {v}
        else:
            current.append(v)
            seen.add(v)
    if current:
        pieces.append(current)
    return pieces


def prune_trivial(paths: Iterable[Sequence[int]], min_length: int = MIN_USEFUL_LENGTH) -> List[List[int]]:
    """Drop paths shorter than *min_length* vertices (default 3)."""
    return [list(p) for p in paths if len(p) >= min_length]


@dataclass
class PreprocessReport:
    """What :func:`preprocess_paths` did to the raw input."""

    input_paths: int = 0
    output_paths: int = 0
    duplicate_vertices_removed: int = 0
    cycles_cut: int = 0
    trivial_paths_dropped: int = 0
    notes: List[str] = field(default_factory=list)
    #: ``label -> id`` mapping when id assignment ran (``assign_ids=True``),
    #: letting callers translate query vertices or invert results back to
    #: the raw labels.  ``None`` when the input was already integer ids.
    id_mapping: Optional[Dict[Hashable, int]] = None

    def original_label(self, vertex: int) -> Hashable:
        """The raw label behind dense id *vertex* (inverse of the mapping).

        Raises :class:`KeyError` when no mapping was recorded or the id is
        unknown.
        """
        if self.id_mapping is None:
            raise KeyError("no id mapping was recorded (assign_ids=False)")
        for label, assigned in self.id_mapping.items():
            if assigned == vertex:
                return label
        raise KeyError(vertex)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.input_paths} raw -> {self.output_paths} simple paths "
            f"({self.duplicate_vertices_removed} noise vertices removed, "
            f"{self.cycles_cut} cycle cuts, "
            f"{self.trivial_paths_dropped} trivial paths dropped)"
        )


def preprocess_paths(
    raw_paths: Iterable[Sequence[Hashable]],
    name: str = "dataset",
    min_length: int = MIN_USEFUL_LENGTH,
    assign_ids: bool = False,
) -> Tuple[PathDataset, PreprocessReport]:
    """Run the full Section VI-A repair pipeline on recorded walks.

    Chains noise removal, cycle cutting and trivial-path pruning; returns a
    :class:`~repro.paths.dataset.PathDataset` of guaranteed-simple paths plus
    a :class:`PreprocessReport` describing the repairs.

    With ``assign_ids=True`` the *new id* step (:func:`assign_new_ids`) runs
    first, accepting arbitrary hashable labels; the resulting ``label -> id``
    mapping is threaded out on :attr:`PreprocessReport.id_mapping` so callers
    can translate queries and invert results.  Without it the input must
    already be integer ids and ``id_mapping`` stays ``None``.
    """
    report = PreprocessReport()
    if assign_ids:
        relabelled, mapping = assign_new_ids(raw_paths)
        raw_paths = relabelled
        report.id_mapping = mapping
    cleaned: List[List[int]] = []
    for raw in raw_paths:
        report.input_paths += 1
        deduped = drop_adjacent_duplicates(raw)
        report.duplicate_vertices_removed += len(raw) - len(deduped)
        pieces = cut_cycles(deduped)
        report.cycles_cut += len(pieces) - 1
        for piece in pieces:
            if len(piece) >= min_length:
                cleaned.append(piece)
            else:
                report.trivial_paths_dropped += 1
    report.output_paths = len(cleaned)
    return PathDataset(cleaned, name=name), report


def group_by_terminals(dataset: PathDataset) -> Dict[Tuple[int, int], PathDataset]:
    """Group paths into sets keyed by ``(source, destination)``.

    This is the paper's *group set* step ("we classify them according to
    their starting and ending vertices").  Empty paths are skipped.
    """
    groups: Dict[Tuple[int, int], List[Tuple[int, ...]]] = defaultdict(list)
    for path in dataset:
        if path:
            groups[(path[0], path[-1])].append(path)
    return {
        key: PathDataset(paths, name=f"{dataset.name}/{key[0]}->{key[1]}")
        for key, paths in groups.items()
    }


def group_by_passing_vertex(dataset: PathDataset, vertices: Iterable[int]) -> Dict[int, PathDataset]:
    """Group paths by membership of *vertices of interest*.

    A path appears in the group of every interesting vertex it passes
    through; paths touching none are omitted.  The paper mentions this as the
    alternative grouping rule ("passing vertices of interest").
    """
    interesting = set(vertices)
    groups: Dict[int, List[Tuple[int, ...]]] = defaultdict(list)
    for path in dataset:
        for v in path:
            if v in interesting:
                groups[v].append(path)
    return {
        v: PathDataset(paths, name=f"{dataset.name}/via{v}") for v, paths in groups.items()
    }
