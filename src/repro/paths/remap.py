"""Frequency-ordered vertex id remapping.

The §VI-A "new id" step assigns dense ids in first-seen order.  For storage
that is leaving bytes on the table: under variable-length integer coding,
ids below 128 cost one byte, below 16384 two — so the *hottest* vertices
should own the smallest ids.  :class:`FrequencyRemapper` learns that
ordering from data, rewrites paths, and inverts losslessly.

The effect compounds with OFFS: literals in compressed streams are
exactly the cold vertices, but table subpaths and the hot early supernode
ids dominate the byte budget, and the archive's varint form shrinks
measurably (ablation A5 quantifies it).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.paths.dataset import PathDataset


class FrequencyRemapper:
    """A learned bijective vertex relabelling, hottest-first.

    Usage::

        remapper = FrequencyRemapper.fit(dataset)
        remapped = remapper.transform(dataset)   # compress this
        original = remapper.invert_path(remapper.apply_path(path))
    """

    def __init__(self, mapping: Dict[int, int]) -> None:
        values = sorted(mapping.values())
        if values != list(range(len(values))):
            raise ValueError("remapping must be a bijection onto 0..n-1")
        self._forward = dict(mapping)
        self._backward = {new: old for old, new in mapping.items()}

    # -- construction -----------------------------------------------------------

    @classmethod
    def fit(cls, dataset: Iterable[Sequence[int]]) -> "FrequencyRemapper":
        """Learn the hottest-first relabelling from *dataset*.

        Ties break on the original id, so fitting is deterministic.
        """
        counts: Counter = Counter()
        for path in dataset:
            counts.update(path)
        ordered = sorted(counts.items(), key=lambda e: (-e[1], e[0]))
        return cls({old: new for new, (old, _) in enumerate(ordered)})

    # -- application -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._forward)

    def apply_vertex(self, vertex: int) -> int:
        """The new id of *vertex* (KeyError for unknown vertices)."""
        return self._forward[vertex]

    def invert_vertex(self, vertex: int) -> int:
        """The original id behind a remapped *vertex*."""
        return self._backward[vertex]

    def apply_path(self, path: Sequence[int]) -> Tuple[int, ...]:
        """Relabel one path."""
        forward = self._forward
        return tuple(forward[v] for v in path)

    def invert_path(self, path: Sequence[int]) -> Tuple[int, ...]:
        """Restore one relabelled path."""
        backward = self._backward
        return tuple(backward[v] for v in path)

    def transform(self, dataset: PathDataset) -> PathDataset:
        """Relabel a whole dataset (name gains a ``/remapped`` suffix)."""
        return PathDataset(
            (self.apply_path(p) for p in dataset),
            name=f"{dataset.name}/remapped",
        )

    def restore(self, dataset: PathDataset) -> PathDataset:
        """Invert :meth:`transform`."""
        return PathDataset(
            (self.invert_path(p) for p in dataset),
            name=dataset.name.removesuffix("/remapped"),
        )

    # -- persistence --------------------------------------------------------------

    def as_table(self) -> List[Tuple[int, int]]:
        """``(old id, new id)`` pairs, new-id order (serializable)."""
        return [(self._backward[new], new) for new in range(len(self._backward))]

    @classmethod
    def from_table(cls, table: Iterable[Tuple[int, int]]) -> "FrequencyRemapper":
        """Rebuild from :meth:`as_table` output."""
        return cls({old: new for old, new in table})
