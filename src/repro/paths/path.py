"""The path abstraction.

A *path* in this library is a sequence of non-negative integer vertex ids,
``{v_1, ..., v_l}``, following Section II-A of the paper.  A path is *simple*
when all of its vertices are distinct.  Internally every algorithm operates on
plain tuples of ints — tuples hash fast, compare fast and slice fast, which is
exactly what dictionary compression needs.  The :class:`Path` class is a thin,
immutable convenience wrapper for user-facing code; it behaves like a tuple
and adds the paper's slicing vocabulary (``P[x:y]`` is the subpath from the
``x``-th vertex up to, excluding, the ``y``-th vertex).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

Vertex = int
PathLike = Sequence[int]


def is_valid_path(vertices: Sequence[int]) -> bool:
    """Return ``True`` when *vertices* is a well-formed path.

    Well-formed means: every element is a non-negative integer.  (Edge
    membership in an underlying graph is intentionally not checked — the
    compressor consumes recorded paths, it does not own the graph.)
    """
    return all(isinstance(v, int) and not isinstance(v, bool) and v >= 0 for v in vertices)


def is_simple(vertices: Sequence[int]) -> bool:
    """Return ``True`` when no vertex repeats in *vertices*."""
    return len(set(vertices)) == len(vertices)


def subpath(vertices: Sequence[int], start: int, stop: int) -> Tuple[int, ...]:
    """Return ``P[start:stop]`` as a tuple, per the paper's notation.

    ``start`` is 0-based and ``stop`` is exclusive, exactly like Python
    slicing; the function exists to make call sites read like the pseudocode.
    """
    if start < 0 or stop > len(vertices) or start > stop:
        raise IndexError(f"subpath bounds [{start}:{stop}] out of range for length {len(vertices)}")
    return tuple(vertices[start:stop])


def subpaths_of_length(vertices: Sequence[int], length: int) -> Iterator[Tuple[int, ...]]:
    """Yield every contiguous subpath of exactly *length* vertices."""
    if length < 1:
        raise ValueError("length must be >= 1")
    for start in range(len(vertices) - length + 1):
        yield tuple(vertices[start : start + length])


def common_prefix_length(a: Sequence[int], b: Sequence[int]) -> int:
    """Return the number of leading vertices *a* and *b* share."""
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n


class Path(tuple):
    """An immutable path of vertex ids.

    ``Path`` subclasses :class:`tuple`, so it is hashable, comparable and
    sliceable.  Slicing returns a plain tuple (matching the paper's
    ``P[x:y]`` subpath semantics); use :meth:`Path.of` to re-wrap.

    >>> p = Path.of([1, 2, 3, 5, 8, 13])
    >>> p[1:4]
    (2, 3, 5)
    >>> p[4]
    8
    >>> p.is_simple
    True
    """

    __slots__ = ()

    @classmethod
    def of(cls, vertices: Iterable[int]) -> "Path":
        """Build a :class:`Path` from any iterable of vertex ids."""
        path = super().__new__(cls, tuple(vertices))
        if not is_valid_path(path):
            raise ValueError("paths must contain non-negative integer vertex ids")
        return path

    def __new__(cls, vertices: Iterable[int] = ()):  # noqa: D102 - tuple protocol
        return cls.of(vertices)

    @property
    def is_simple(self) -> bool:
        """``True`` when all vertices in the path are distinct."""
        return is_simple(self)

    @property
    def edges(self) -> List[Tuple[int, int]]:
        """The list of directed edges the path traverses."""
        return [(self[i], self[i + 1]) for i in range(len(self) - 1)]

    def terminals(self) -> Tuple[int, int]:
        """Return ``(source, destination)`` of the path.

        Raises :class:`ValueError` for empty paths.
        """
        if not self:
            raise ValueError("empty path has no terminals")
        return self[0], self[-1]

    def contains_vertex(self, vertex: int) -> bool:
        """``True`` when *vertex* occurs anywhere in the path."""
        return vertex in self

    def __repr__(self) -> str:
        return f"Path({list(self)!r})"
