"""Integer stream encodings for byte-accurate size accounting.

The paper measures compression ratio in bytes, treating each vertex id as a
32-bit integer ("a sequence of eight vertices is stored as 256 consecutive
bits", Section II-C).  Two encodings are provided:

* :class:`FixedWidthEncoding` — every id costs a fixed number of bytes
  (default 4).  This is the paper's size model and the default everywhere.
* :class:`VarintEncoding` — LEB128-style variable-length encoding, the common
  practical choice; it rewards small ids, which matters once supernode ids
  are allocated above the vertex-id range.

Both encodings are exact codecs: :func:`encode_stream` produces bytes that
:func:`decode_stream` restores losslessly, so "size in bytes" is always the
length of a real byte string, never an estimate.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Sequence, Union


class FixedWidthEncoding:
    """Fixed-width little-endian unsigned integer encoding.

    :param width: bytes per integer (1, 2, 4 or 8).
    """

    _FORMATS = {1: "<B", 2: "<H", 4: "<I", 8: "<Q"}

    def __init__(self, width: int = 4) -> None:
        if width not in self._FORMATS:
            raise ValueError(f"width must be one of {sorted(self._FORMATS)}, got {width}")
        self.width = width
        self._fmt = self._FORMATS[width]
        self._max = (1 << (8 * width)) - 1

    def size_of(self, values: Sequence[int]) -> int:
        """Byte size of *values* under this encoding, without materializing."""
        return self.width * len(values)

    def size_of_value(self, value: int) -> int:
        """Byte size of a single value (constant for fixed width)."""
        return self.width

    def encode(self, values: Iterable[int]) -> bytes:
        out = bytearray()
        pack = struct.pack
        fmt = self._fmt
        for v in values:
            if v < 0 or v > self._max:
                raise ValueError(f"value {v} out of range for {self.width}-byte encoding")
            out += pack(fmt, v)
        return bytes(out)

    def decode(self, data: bytes) -> List[int]:
        if len(data) % self.width:
            raise ValueError("byte length is not a multiple of the encoding width")
        unpack = struct.unpack_from
        fmt = self._fmt
        return [unpack(fmt, data, off)[0] for off in range(0, len(data), self.width)]

    def __repr__(self) -> str:
        return f"FixedWidthEncoding(width={self.width})"


class VarintEncoding:
    """Unsigned LEB128 variable-length encoding (7 payload bits per byte)."""

    def size_of_value(self, value: int) -> int:
        """Byte size of one value: 1 byte per started 7-bit group."""
        if value < 0:
            raise ValueError("varint encoding requires non-negative integers")
        size = 1
        value >>= 7
        while value:
            size += 1
            value >>= 7
        return size

    def size_of(self, values: Sequence[int]) -> int:
        return sum(self.size_of_value(v) for v in values)

    def encode(self, values: Iterable[int]) -> bytes:
        out = bytearray()
        for v in values:
            if v < 0:
                raise ValueError("varint encoding requires non-negative integers")
            while True:
                byte = v & 0x7F
                v >>= 7
                if v:
                    out.append(byte | 0x80)
                else:
                    out.append(byte)
                    break
        return bytes(out)

    def decode(self, data: bytes) -> List[int]:
        values: List[int] = []
        value = 0
        shift = 0
        for byte in data:
            value |= (byte & 0x7F) << shift
            if byte & 0x80:
                shift += 7
                if shift > 63:
                    raise ValueError("varint too long (corrupt stream)")
            else:
                values.append(value)
                value = 0
                shift = 0
        if shift:
            raise ValueError("truncated varint at end of stream")
        return values

    def __repr__(self) -> str:
        return "VarintEncoding()"


Encoding = Union[FixedWidthEncoding, VarintEncoding]

#: The paper's size model: one 32-bit integer per vertex id.
DEFAULT_ENCODING = FixedWidthEncoding(4)


def encode_stream(values: Sequence[int], encoding: Encoding = DEFAULT_ENCODING) -> bytes:
    """Encode an integer sequence to bytes with *encoding*."""
    return encoding.encode(values)


def decode_stream(data: bytes, encoding: Encoding = DEFAULT_ENCODING) -> List[int]:
    """Decode bytes produced by :func:`encode_stream` back to integers."""
    return encoding.decode(data)
