"""Subpath search over compressed archives.

Beyond the paper's vertex-level queries (Cases 1 and 2), operators ask
*pattern* questions: "which transactions traversed firewall F then web
server W then app server A, in that order, consecutively?"  That is a
subpath-containment query, and the OFFS representation helps answer it
without bulk decompression:

1. **candidate pruning** — a path can only contain the query subpath if it
   contains *every query vertex*; the supernode-aware
   :class:`~repro.queries.index.VertexIndex` intersects postings without
   decompressing anything.
2. **compressed-form matching** — the query is matched against each
   candidate's *token* by expanding symbols lazily left-to-right with
   early exit, so a mismatch usually costs a handful of comparisons
   instead of a full decompression.

The result is exact; the test suite checks it against a brute-force scan.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import InvalidInputError
from repro.core.store import CompressedPathStore
from repro.queries.index import VertexIndex

Subpath = Tuple[int, ...]


def _iter_expanded(token: Sequence[int], table) -> Iterator[int]:
    """Lazily yield the decompressed vertices of a token.

    Expansions come from the table's memoized
    :class:`~repro.core.expansion.ExpansionCache`, so repeated scans over
    the same archive (the candidate loop below) never re-derive a subpath.
    """
    base = table.base_id
    expand = table.expansions().expand
    for symbol in token:
        if symbol >= base:
            yield from expand(symbol)
        else:
            yield symbol


def token_contains_subpath(token: Sequence[int], table, query: Sequence[int]) -> bool:
    """``True`` when the token's decompressed form contains *query*
    contiguously.

    Streams the expansion with a rolling window of ``len(query)`` vertices;
    never materializes the full path.
    """
    q = tuple(query)
    if not q:
        return True
    window: List[int] = []
    first = q[0]
    for vertex in _iter_expanded(token, table):
        window.append(vertex)
        if len(window) > len(q):
            window.pop(0)
        if len(window) == len(q) and window[0] == first and tuple(window) == q:
            return True
    return False


class SubpathSearcher:
    """Exact subpath-containment search over a compressed store.

    :param store: the archive to search.
    :param index: an existing vertex index (built on demand when omitted).
    """

    def __init__(
        self,
        store: CompressedPathStore,
        index: Optional[VertexIndex] = None,
    ) -> None:
        self.store = store
        self.index = index or VertexIndex(store)

    def candidate_ids(self, query: Sequence[int]) -> List[int]:
        """Path ids containing every vertex of *query* (superset of hits)."""
        if not query:
            return list(range(len(self.store)))
        return self.index.paths_containing_all(tuple(query))

    def search_ids(self, query: Sequence[int]) -> List[int]:
        """Path ids whose decompressed form contains *query* contiguously.

        *query* is in original vertex ids.  Over a reordered store the
        tokens (and their expansions) live in new-id space, so the query
        is translated once here before compressed-form matching; the
        vertex index translates its own lookups.  A query vertex outside
        the order cannot appear in any stored path — no matches.
        """
        q = tuple(query)
        if len(q) == 1:
            return self.index.paths_containing(q[0])
        order = getattr(self.store, "order", None)
        matched = q
        if order is not None:
            try:
                matched = order.apply_path(q)
            except InvalidInputError:
                return []
        table = self.store.table
        return [
            pid
            for pid in self.candidate_ids(q)
            if token_contains_subpath(self.store.token(pid), table, matched)
        ]

    def search(self, query: Sequence[int]) -> List[Tuple[int, ...]]:
        """The matching paths, decompressed (only the hits pay)."""
        return self.store.retrieve_many(self.search_ids(query))

    def count(self, query: Sequence[int]) -> int:
        """Number of paths containing *query* (nothing decompressed)."""
        return len(self.search_ids(query))

    def __repr__(self) -> str:
        return f"SubpathSearcher(store={self.store!r})"
