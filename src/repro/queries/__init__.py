"""Retrieval queries over compressed path stores (the paper's Cases 1 & 2).

* :mod:`repro.queries.index` — a supernode-aware inverted index from vertex
  ids to the compressed paths containing them, built *without* decompressing
  anything.
* :mod:`repro.queries.retrieval` — the two operational queries from the
  introduction: affected-node discovery around an anomalous server (Case 1)
  and terminal-pair troubleshooting (Case 2).
* :mod:`repro.queries.analytics` — statistics computed directly on the
  compressed form (histograms, lengths, table usage), the minability that
  byte-level generic compression loses.
"""

from repro.queries.analytics import (
    compression_summary,
    hot_subpaths,
    path_lengths,
    supernode_usage,
    vertex_histogram,
)
from repro.queries.index import VertexIndex
from repro.queries.pattern import ANY, GAP, PathPattern, PatternSearcher
from repro.queries.retrieval import PathQueryEngine
from repro.queries.subpath_search import SubpathSearcher

__all__ = [
    "VertexIndex",
    "PathQueryEngine",
    "SubpathSearcher",
    "ANY",
    "GAP",
    "PathPattern",
    "PatternSearcher",
    "compression_summary",
    "hot_subpaths",
    "path_lengths",
    "supernode_usage",
    "vertex_histogram",
]
