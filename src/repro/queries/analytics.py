"""Analytics directly on compressed data — the minability OFFS preserves.

The paper's drawback (2) of Dlz4: "interpreting paths as byte arrays ...
loses necessary information from raw data.  It becomes a hurdle for future
data mining, if we cannot tell whether an encoded buffer is a simple path."
An OFFS stream, by contrast, is still an integer sequence over an extended
vertex alphabet, so per-archive statistics fall out of the *compressed*
form without decompressing anything:

* :func:`vertex_histogram` — exact vertex occurrence counts: literals count
  directly, each supernode contributes its expansion's multiset (derived
  once from the table) times its occurrence count.
* :func:`path_lengths` — exact decompressed lengths, again from token
  symbols plus table entry lengths.
* :func:`supernode_usage` — which table entries earn their keep; feeds
  table-maintenance decisions (e.g. retiring dead entries at refit time).
* :func:`hot_subpaths` — the most-used table entries with their coverage:
  a free frequent-subpath mining result as a by-product of compression.

Everything here runs in ``O(compressed symbols + table)``.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple

from repro.core.store import CompressedPathStore

Subpath = Tuple[int, ...]


def supernode_usage(store: CompressedPathStore) -> Dict[int, int]:
    """Occurrence count of every supernode id across the archive's tokens."""
    counts: Counter = Counter()
    base = store.table.base_id
    for token in store.tokens():
        for symbol in token:
            if symbol >= base:
                counts[symbol] += 1
    # Dead entries matter too: report them at zero.
    for sid, _ in store.table:
        counts.setdefault(sid, 0)
    return dict(counts)


def vertex_histogram(store: CompressedPathStore) -> Dict[int, int]:
    """Exact per-vertex occurrence counts, computed on compressed tokens.

    Matches what a scan of the decompressed archive would produce; the test
    suite checks that equivalence brute-force.
    """
    base = store.table.base_id
    member_counts: Dict[int, Counter] = {
        sid: Counter(subpath) for sid, subpath in store.table
    }
    histogram: Counter = Counter()
    for token in store.tokens():
        for symbol in token:
            if symbol >= base:
                histogram.update(member_counts[symbol])
            else:
                histogram[symbol] += 1
    return dict(histogram)


def path_lengths(store: CompressedPathStore) -> List[int]:
    """Decompressed length of every path, without decompressing any."""
    base = store.table.base_id
    entry_lengths = {sid: len(subpath) for sid, subpath in store.table}
    lengths: List[int] = []
    for token in store.tokens():
        total = 0
        for symbol in token:
            total += entry_lengths[symbol] if symbol >= base else 1
        lengths.append(total)
    return lengths


def hot_subpaths(store: CompressedPathStore, top: int = 10) -> List[Tuple[Subpath, int, int]]:
    """The most-used table entries: ``(subpath, occurrences, vertices saved)``.

    "Vertices saved" is ``occurrences × (len - 1)`` — each match replaced
    ``len`` symbols by one.  This is the practical-frequency ranking the
    table was built on, observed on the final archive.
    """
    if top < 1:
        raise ValueError("top must be >= 1")
    usage = supernode_usage(store)
    rows = [
        (store.table.expand(sid), count, count * (len(store.table.expand(sid)) - 1))
        for sid, count in usage.items()
    ]
    rows.sort(key=lambda r: (-r[2], -r[1], r[0]))
    return rows[:top]


def compression_summary(store: CompressedPathStore) -> Dict[str, float]:
    """One-call archive health report (all computed on compressed data)."""
    lengths = path_lengths(store)
    symbols = store.compressed_symbol_count()
    nodes = sum(lengths)
    usage = supernode_usage(store)
    dead = sum(1 for count in usage.values() if count == 0)
    return {
        "paths": float(len(store)),
        "nodes": float(nodes),
        "compressed_symbols": float(symbols),
        "symbol_ratio": (nodes / symbols) if symbols else 0.0,
        "table_entries": float(len(store.table)),
        "dead_table_entries": float(dead),
        "byte_ratio": store.compression_ratio(),
    }
