"""Waypoint and wildcard path patterns over compressed archives.

Case 2 generalized: operators rarely know the full route, they know
*landmarks* — "client C reached database D **via** firewall F", "anything
that went straight from the gateway to an app server, skipping the web
tier".  :class:`PathPattern` expresses that as a sequence of elements:

* a vertex id — matches exactly that vertex;
* :data:`ANY` — matches exactly one arbitrary vertex;
* :data:`GAP` — matches any number (including zero) of arbitrary vertices.

Patterns are anchored at both ends; wrap with :data:`GAP` for "contains"
semantics (:meth:`PathPattern.containing` does it for you).  Matching is
the classic glob algorithm — linear two-pointer with backtracking over the
last :data:`GAP` — so checking a candidate costs ``O(|P| · gaps)`` worst
case and ``O(|P|)`` typically.

:class:`PatternSearcher` runs a pattern over a
:class:`~repro.core.store.CompressedPathStore`: the vertex index prunes to
paths containing *all* concrete vertices, then candidates are checked
decompressed (only candidates pay).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.core.store import CompressedPathStore
from repro.queries.index import VertexIndex


class _Any:
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ANY"


class _Gap:
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "GAP"


#: Matches exactly one arbitrary vertex.
ANY = _Any()
#: Matches any number (including zero) of arbitrary vertices.
GAP = _Gap()

Element = Union[int, _Any, _Gap]


def match_pattern(path: Sequence[int], pattern: Sequence[Element]) -> bool:
    """``True`` when *path* matches *pattern* (anchored both ends).

    Glob matching with backtracking to the most recent :data:`GAP`;
    consecutive gaps collapse.
    """
    p = 0  # position in path
    q = 0  # position in pattern
    star_q: Optional[int] = None  # pattern index just past the last GAP
    star_p = 0  # path position the last GAP is currently consuming up to
    n, m = len(path), len(pattern)
    while p < n:
        if q < m and isinstance(pattern[q], _Gap):
            star_q = q + 1
            star_p = p
            q += 1
        elif q < m and (isinstance(pattern[q], _Any) or pattern[q] == path[p]):
            p += 1
            q += 1
        elif star_q is not None:
            # Let the last GAP swallow one more vertex and retry.
            star_p += 1
            p = star_p
            q = star_q
        else:
            return False
    while q < m and isinstance(pattern[q], _Gap):
        q += 1
    return q == m


class PathPattern:
    """A compiled path pattern.

    :param elements: vertices, :data:`ANY` and :data:`GAP` markers.

    >>> PathPattern([1, GAP, 5]).matches((1, 2, 3, 5))
    True
    >>> PathPattern([1, ANY, 5]).matches((1, 2, 3, 5))
    False
    """

    def __init__(self, elements: Sequence[Element]) -> None:
        compiled: List[Element] = []
        for element in elements:
            if isinstance(element, (_Any, _Gap)):
                # Collapse consecutive gaps; GAP+ANY order is normalized to
                # ANY-first so the gap stays maximal-right.
                if isinstance(element, _Gap) and compiled and isinstance(compiled[-1], _Gap):
                    continue
                compiled.append(element)
            elif isinstance(element, int) and not isinstance(element, bool) and element >= 0:
                compiled.append(element)
            else:
                raise ValueError(f"pattern elements are vertex ids, ANY or GAP; got {element!r}")
        if not compiled:
            raise ValueError("empty pattern")
        self.elements: Tuple[Element, ...] = tuple(compiled)

    @classmethod
    def containing(cls, subsequence: Sequence[Element]) -> "PathPattern":
        """Unanchored form: ``GAP + subsequence + GAP``."""
        return cls([GAP, *subsequence, GAP])

    @classmethod
    def via(cls, source: int, waypoints: Sequence[int], destination: int) -> "PathPattern":
        """Case 2 with landmarks: source, then each waypoint in order (any
        distance apart), then destination."""
        elements: List[Element] = [source]
        for waypoint in waypoints:
            elements.extend((GAP, waypoint))
        elements.extend((GAP, destination))
        return cls(elements)

    @property
    def concrete_vertices(self) -> Tuple[int, ...]:
        """The literal vertex ids in the pattern (for index pruning)."""
        return tuple(e for e in self.elements if isinstance(e, int))

    def matches(self, path: Sequence[int]) -> bool:
        """``True`` when *path* matches this (anchored) pattern."""
        return match_pattern(path, self.elements)

    def __repr__(self) -> str:
        return f"PathPattern({list(self.elements)!r})"


class PatternSearcher:
    """Pattern search over a compressed store.

    :param store: the archive.
    :param index: an existing vertex index (built on demand when omitted).
    """

    def __init__(
        self,
        store: CompressedPathStore,
        index: Optional[VertexIndex] = None,
    ) -> None:
        self.store = store
        self.index = index or VertexIndex(store)

    def search_ids(self, pattern: PathPattern) -> List[int]:
        """Path ids matching *pattern*."""
        concrete = pattern.concrete_vertices
        if concrete:
            candidates = self.index.paths_containing_all(concrete)
        else:
            candidates = range(len(self.store))
        return [
            pid for pid in candidates if pattern.matches(self.store.retrieve(pid))
        ]

    def search(self, pattern: PathPattern) -> List[Tuple[int, ...]]:
        """The matching paths, decompressed."""
        return self.store.retrieve_many(self.search_ids(pattern))

    def paths_via(
        self, source: int, waypoints: Sequence[int], destination: int
    ) -> List[Tuple[int, ...]]:
        """All paths from *source* to *destination* through *waypoints* in
        order — the landmark variant of Case 2."""
        return self.search(PathPattern.via(source, waypoints, destination))
