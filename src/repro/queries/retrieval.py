"""The two operational queries from the paper's introduction.

**Case 1 — identifying affected nodes.**  "Once there is an anomaly in a host
server ... by retrieving all indexed IP paths containing the issue node, we
can fetch all affected IP nodes accurately."

**Case 2 — locating anomalies.**  "Given a user client IP and a terminal
IP ... we need to investigate all intermediate IP nodes of network
transactions ... by collecting all IP paths with given terminals."

:class:`PathQueryEngine` answers both over a :class:`CompressedPathStore`,
decompressing *only* the matching paths (the partial-decompression property
the whole design exists to preserve).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.core.store import CompressedPathStore
from repro.queries.index import VertexIndex


class PathQueryEngine:
    """Case 1 / Case 2 query service over a compressed store.

    :param store: the compressed archive.
    :param index: an existing :class:`VertexIndex`; built on demand when
        omitted.
    """

    def __init__(
        self,
        store: CompressedPathStore,
        index: Optional[VertexIndex] = None,
    ) -> None:
        self.store = store
        self.index = index or VertexIndex(store)

    # -- Case 1 -------------------------------------------------------------------

    def affected_paths(self, issue_vertex: int) -> List[Tuple[int, ...]]:
        """All paths passing through *issue_vertex*, decompressed.

        Only the matching paths are decompressed; everything else stays
        compressed in the store.
        """
        ids = self.index.paths_containing(issue_vertex)
        return self.store.retrieve_many(ids)

    def affected_vertices(self, issue_vertex: int) -> Set[int]:
        """Case 1's answer: every vertex sharing a path with *issue_vertex*.

        The accurate alternative to the exponential neighbourhood search the
        paper warns against.
        """
        affected: Set[int] = set()
        for path in self.affected_paths(issue_vertex):
            affected.update(path)
        affected.discard(issue_vertex)
        return affected

    # -- Case 2 -------------------------------------------------------------------

    def paths_between(self, source: int, destination: int) -> List[Tuple[int, ...]]:
        """All paths starting at *source* and ending at *destination*.

        The index narrows candidates to paths containing both vertices;
        terminal positions are then checked through one-vertex
        ``retrieve_slice`` probes (arithmetic over the expansion cache —
        terminal positions are not indexed), so only the actual matches
        pay for a full decompression.
        """
        candidate_ids = self.index.paths_containing_all((source, destination))
        store = self.store
        matches = []
        for path_id in candidate_ids:
            head = store.retrieve_slice(path_id, 0, 1)
            if not head or head[0] != source:
                continue
            if store.retrieve_slice(path_id, -1, None) != (destination,):
                continue
            matches.append(store.retrieve(path_id))
        return matches

    def intermediate_vertices(self, source: int, destination: int) -> Set[int]:
        """Case 2's answer: all intermediate hops between two terminals."""
        intermediates: Set[int] = set()
        for path in self.paths_between(source, destination):
            intermediates.update(path[1:-1])
        return intermediates

    def __repr__(self) -> str:
        return f"PathQueryEngine(store={self.store!r})"
