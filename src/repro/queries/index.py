"""A supernode-aware inverted index over a compressed store.

Case 1 of the paper ("retrieving all indexed IP paths containing the issue
node") needs vertex → paths lookup.  Decompressing everything to build it
would defeat the archive, so the index exploits the table structure instead:

* each supernode's member set is derived once from the table;
* each compressed token is scanned once — a vertex symbol indexes directly,
  a supernode symbol indexes every vertex it expands to.

The result is exact (no false positives/negatives) and construction touches
only compressed data, ``O(symbols + table)``.

Over a *reordered* store (one carrying a
:class:`~repro.paths.reorder.VertexOrder`) postings are naturally keyed by
new ids — tokens are stored in new-id space — so every lookup translates
its argument through the store's order first.  Callers therefore always
query in original ids, the same contract the store's retrieval surface
keeps; a vertex the order does not cover simply has no postings.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, List, Set

from repro.core.errors import InvalidInputError
from repro.core.store import CompressedPathStore


class VertexIndex:
    """Inverted index: vertex id → sorted list of path ids containing it.

    :param store: the compressed store to index.  The index reflects the
        store at construction time; call :meth:`refresh` after appends.
    """

    def __init__(self, store: CompressedPathStore) -> None:
        self.store = store
        self._postings: Dict[int, List[int]] = {}
        self._indexed_paths = 0
        self.refresh()

    def refresh(self) -> None:
        """(Re)build postings for any paths appended since the last build."""
        table = self.store.table
        base = table.base_id
        members: Dict[int, FrozenSet[int]] = {
            sid: frozenset(subpath) for sid, subpath in table
        }
        postings: Dict[int, Set[int]] = defaultdict(set)
        # Keep existing postings; only new path ids need scanning.
        for vertex, ids in self._postings.items():
            postings[vertex].update(ids)
        tokens = self.store.tokens()
        for path_id in range(self._indexed_paths, len(tokens)):
            for symbol in tokens[path_id]:
                if symbol >= base:
                    for vertex in members[symbol]:
                        postings[vertex].add(path_id)
                else:
                    postings[symbol].add(path_id)
        self._postings = {v: sorted(ids) for v, ids in postings.items()}
        self._indexed_paths = len(tokens)

    # -- lookups -----------------------------------------------------------------
    #
    # Lookup arguments are ORIGINAL vertex ids; _key translates them into
    # the posting key space (new ids when the store carries an order).  A
    # sentinel that can never be a posting key stands in for "the order
    # does not cover this vertex" so the membership checks below stay
    # uniform.

    _MISSING = -1

    def _key(self, vertex: int) -> int:
        """The posting key for an original-id *vertex* (_MISSING if unmapped)."""
        order = getattr(self.store, "order", None)
        if order is None:
            return vertex
        try:
            return order.apply_vertex(vertex)
        except InvalidInputError:
            return self._MISSING

    def paths_containing(self, vertex: int) -> List[int]:
        """Sorted path ids whose decompressed form contains *vertex*."""
        return list(self._postings.get(self._key(vertex), ()))

    def paths_containing_all(self, vertices) -> List[int]:
        """Path ids containing **every** vertex in *vertices* (intersection)."""
        result: Set[int] = set()
        first = True
        for vertex in vertices:
            postings = set(self._postings.get(self._key(vertex), ()))
            result = postings if first else result & postings
            first = False
            if not result and not first:
                break
        return sorted(result)

    def paths_containing_any(self, vertices) -> List[int]:
        """Path ids containing **at least one** vertex in *vertices* (union)."""
        result: Set[int] = set()
        for vertex in vertices:
            result.update(self._postings.get(self._key(vertex), ()))
        return sorted(result)

    def vertex_count(self) -> int:
        """Number of distinct vertices with at least one posting."""
        return len(self._postings)

    def __contains__(self, vertex: int) -> bool:
        return self._key(vertex) in self._postings

    def __repr__(self) -> str:
        return (
            f"VertexIndex(vertices={len(self._postings)}, "
            f"paths={self._indexed_paths})"
        )
