"""Hybrid top-down refinement — the §IV-D "possible optimization" (1).

The bottom-up framework has a failure mode the paper hints at when it
proposes "a hybrid framework combining top-down with bottom-up ... the
top-down framework cuts the least important nodes to generate shorter
subpaths": merge/expansion growth can overshoot.  A candidate that grew to
include a rare affix (typically a near-unique path prefix or suffix) matches
almost nothing, yet while it exists it shadows the frequent core it
contains.  Bottom-up alone can then finalize a near-empty table on data
whose paths rarely repeat *exactly* but share long interiors.

:class:`TopDownRefiner` runs after the bottom-up iterations:

1. find candidates whose practical weight is below the finalization bar;
2. *cut* their least-important end vertices — the end whose adjacent edge is
   globally rarer — producing shorter trial candidates (weight 0);
3. drop the over-grown originals and re-count practical weights with a full
   non-generating pass;
4. repeat for a bounded number of rounds, pruning to λ each time.

Enabled by ``OFFSConfig(topdown_rounds=N)``; the A4 ablation benchmark
shows it rescuing the unique-paths workload where pure bottom-up degrades.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.core.errors import InvalidInputError
from repro.core.matcher import CandidateSet
from repro.obs import catalog
from repro.obs.runtime import active_span, get_active

Subpath = Tuple[int, ...]


class TopDownRefiner:
    """Cuts over-grown low-weight candidates back to their frequent cores.

    :param min_weight: the finalization bar; candidates below it are
        trimming targets (matches ``OFFSConfig.min_final_weight``).
    :param min_length: never trim candidates below this length.
    """

    def __init__(self, min_weight: int = 2, min_length: int = 2) -> None:
        if min_length < 2:
            raise InvalidInputError(
                "min_length must be >= 2 (candidates are edges at least)"
            )
        self.min_weight = min_weight
        self.min_length = min_length

    # -- edge statistics -----------------------------------------------------------

    @staticmethod
    def edge_frequencies(paths: Sequence[Sequence[int]]) -> Dict[Tuple[int, int], int]:
        """Occurrence counts of every directed edge in *paths*."""
        counts: Counter = Counter()
        for path in paths:
            for i in range(len(path) - 1):
                counts[(path[i], path[i + 1])] += 1
        return counts

    def cut_once(
        self,
        seq: Subpath,
        edge_counts: Dict[Tuple[int, int], int],
    ) -> Subpath:
        """Drop the end vertex attached by the globally rarer edge.

        "Cuts the least important nodes": the first vertex is held on by the
        leading edge, the last by the trailing edge; whichever edge is rarer
        is the least defensible attachment.
        """
        head_edge = (seq[0], seq[1])
        tail_edge = (seq[-2], seq[-1])
        if edge_counts.get(head_edge, 0) <= edge_counts.get(tail_edge, 0):
            return seq[1:]
        return seq[:-1]

    # -- the refinement loop ----------------------------------------------------------

    def refine(
        self,
        cands: CandidateSet,
        paths: Sequence[Sequence[int]],
        builder,
        lam: int,
        rounds: int = 2,
    ) -> List[int]:
        """Run up to *rounds* cut-and-recount passes over *cands*.

        :param builder: the owning :class:`~repro.core.builder.TableBuilder`
            (re-used for its non-generating counting pass).
        :param lam: the λ capacity applied after each recount.
        :returns: the number of candidates trimmed per round (for reports).
        """
        edge_counts = self.edge_frequencies(paths)
        # A counting pass needs the full-δ cap; any iteration index with
        # 2**it >= delta works.
        counting_iteration = max(1, builder.config.delta.bit_length())
        trimmed_per_round: List[int] = []

        with active_span(catalog.SPAN_BUILD_TOPDOWN, rounds=rounds) as span:
            for round_index in range(rounds):
                weak = [
                    seq
                    for seq, weight in cands.items()
                    if weight < self.min_weight and len(seq) > self.min_length
                ]
                if not weak:
                    break
                with active_span(
                    catalog.SPAN_BUILD_TOPDOWN_ROUND, round=round_index + 1
                ) as round_span:
                    for seq in weak:
                        cands.discard(seq)
                        shorter = self.cut_once(seq, edge_counts)
                        if shorter not in cands:
                            cands.add(shorter, 0)
                    trimmed_per_round.append(len(weak))
                    builder.run_iteration(
                        cands, paths, counting_iteration, lam, generate=False
                    )
                    if round_span is not None:
                        round_span.add("trimmed", len(weak))
            if span is not None:
                span.add("trimmed", sum(trimmed_per_round))

        obs = get_active()
        if obs is not None:
            obs.registry.counter(catalog.BUILD_TOPDOWN_ROUNDS).inc(
                len(trimmed_per_round)
            )
            obs.registry.counter(catalog.BUILD_TOPDOWN_TRIMMED).inc(
                sum(trimmed_per_round)
            )
        return trimmed_per_round
