"""Rolling-hash longest-match backend — O(1) per probed length.

Every other backend pays per *vertex* to probe a candidate length: the flat
hash (Algorithm 6) and the two-level hash (Algorithm 7) build and hash a
fresh tuple per probe, the §IV-D trie dereferences one child pointer per
vertex.  A polynomial rolling hash removes the per-vertex factor entirely:
with prefix hashes ``P[i]`` of the query path precomputed once,

    hash(path[pos:pos+L]) = P[pos+L] - P[pos] * B**L      (mod 2**64)

is three integer operations regardless of ``L``.  A probe at ``(pos, cap)``
therefore tests each candidate length in O(1), and a full probe costs
O(#distinct candidate lengths) instead of O(δ²).

Correctness is never entrusted to the hash: every hash hit is verified
against the exact candidate before a match is reported, so results are
bit-identical to the hash/multilevel/trie backends even under adversarial
collisions (the ``hash_bits`` knob exists precisely to let tests force
collisions and exercise the verify step).

Two consumers:

* :class:`RollingHashCandidates` — the dynamic :class:`CandidateSet` backend
  (``make_candidate_set("rolling")``), usable during table *construction*;
  it caches the prefix hashes of the most recent query path by identity, so
  the builder's sequential scans amortize preparation to O(1) per vertex.
* :class:`FlatBatchKernel` — the static batch kernel over a
  :class:`~repro.core.flatcorpus.FlatCorpus`: one vectorized pass (numpy)
  computes window hashes for *every* position and candidate length and
  collapses them into a per-position best-candidate-length array, leaving
  compression proper a thin greedy verify loop.  Falls back to the dynamic
  backend when numpy is unavailable.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import InvalidInputError
from repro.core.flatcorpus import FlatCorpus
from repro.core.matcher import CandidateSet, Subpath

try:  # soft dependency — pure-Python fallbacks exist throughout
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

#: Polynomial base: an odd 64-bit constant (odd ⇒ invertible mod 2**64,
#: which the vectorized kernel's cumulative-sum formulation needs).
HASH_BASE = 0x9E3779B97F4A7C15

_MASK64 = (1 << 64) - 1


def _hash_sequence(seq: Sequence[int], mask: int) -> int:
    """The rolling hash of a whole sequence (candidate registration side)."""
    h = 0
    for v in seq:
        h = (h * HASH_BASE + v + 1) & _MASK64
    return h & mask


class RollingHashCandidates(CandidateSet):
    """Candidate set probed through per-length rolling-hash tables.

    :param hash_bits: width of the stored hash (default 64).  Smaller widths
        force collisions; results stay identical because every hit is
        verified — only probe cost degrades.  Tests use this adversarially.

    Probe-cost accounting (``self.stats``): one probe and one hashed vertex
    per O(1) length test — the unit of work here is a constant-time hash
    lookup, mirroring how the trie counts child dereferences — plus the
    verified candidate's length on each hash hit (the explicit
    collision-verify step re-reads the window).
    """

    def __init__(self, hash_bits: int = 64) -> None:
        super().__init__()
        if not 1 <= hash_bits <= 64:
            raise InvalidInputError("hash_bits must be in [1, 64]")
        self.hash_bits = hash_bits
        self._hash_mask = (1 << hash_bits) - 1
        self._weights: Dict[Subpath, int] = {}
        #: length -> {window hash -> number of candidates with that hash}.
        self._buckets: Dict[int, Dict[int, int]] = {}
        #: (length, bucket) pairs, longest first; rebuilt when the set of
        #: lengths changes (adds/discards of an existing length mutate the
        #: bucket dict in place, which the cached list sees).
        self._tables_desc: List[Tuple[int, Dict[int, int]]] = []
        self._max_len = 0
        # Identity-cached preparation of the current query path.
        self._prepared_path: Optional[Sequence[int]] = None
        self._prefix: List[int] = []
        self._pows: List[int] = [1]
        # Identity-cached batch kernel (see :meth:`flat_kernel`).
        self._kernel: Optional["FlatBatchKernel"] = None

    # -- CandidateSet interface ---------------------------------------------------

    def add(self, seq: Sequence[int], weight: int = 1) -> None:
        sp = tuple(seq)
        if len(sp) < 2:
            raise InvalidInputError(f"candidates need >= 2 vertices, got {sp!r}")
        if sp in self._weights:
            self._weights[sp] += weight
            return
        self._weights[sp] = weight
        h = _hash_sequence(sp, self._hash_mask)
        bucket = self._buckets.get(len(sp))
        if bucket is None:
            self._buckets[len(sp)] = {h: 1}
            self._tables_desc = sorted(self._buckets.items(), reverse=True)
        else:
            bucket[h] = bucket.get(h, 0) + 1
        if len(sp) > self._max_len:
            self._max_len = len(sp)

    def weight(self, seq: Sequence[int]) -> Optional[int]:
        return self._weights.get(tuple(seq))

    def discard(self, seq: Sequence[int]) -> None:
        sp = tuple(seq)
        if self._weights.pop(sp, None) is None:
            return
        bucket = self._buckets[len(sp)]
        h = _hash_sequence(sp, self._hash_mask)
        remaining = bucket[h] - 1
        if remaining:
            bucket[h] = remaining
        else:
            del bucket[h]
            if not bucket:
                del self._buckets[len(sp)]
                self._tables_desc = sorted(self._buckets.items(), reverse=True)
                self._max_len = max(self._buckets, default=0)

    def longest_match(self, path: Sequence[int], pos: int, cap: int) -> int:
        limit = min(cap, self._max_len, len(path) - pos)
        if limit < 2:
            return 1
        if path is not self._prepared_path:
            self._prepare(path)
        pre = self._prefix
        pows = self._pows
        mask = self._hash_mask
        weights = self._weights
        stats = self.stats
        hp = pre[pos]
        for length, bucket in self._tables_desc:
            if length > limit:
                continue
            stats.probes += 1
            stats.hashed_vertices += 1
            window = (pre[pos + length] - hp * pows[length]) & _MASK64 & mask
            if window in bucket:
                # Explicit collision-verify: the hash only nominates.
                stats.hashed_vertices += length
                if tuple(path[pos : pos + length]) in weights:
                    return length
        return 1

    def items(self) -> Iterator[Tuple[Subpath, int]]:
        return iter(list(self._weights.items()))

    def __len__(self) -> int:
        return len(self._weights)

    def __repr__(self) -> str:
        return (
            f"RollingHashCandidates(entries={len(self._weights)}, "
            f"lengths={sorted(self._buckets)}, hash_bits={self.hash_bits})"
        )

    def flat_kernel(self, table) -> "FlatBatchKernel":
        """The batch kernel for *table*, cached by table identity.

        Batch consumers (:func:`repro.core.compressor.compress_paths_flat`)
        call per chunk; caching amortizes the kernel's table hashing and
        membership bitmaps across chunks.  The cache assumes *table* is
        frozen once compression starts — true for every
        :class:`~repro.core.supernode_table.SupernodeTable` handed to the
        compressor (tables never mutate after finalization).
        """
        kernel = self._kernel
        if kernel is None or kernel.table is not table:
            kernel = FlatBatchKernel(table, hash_bits=self.hash_bits)
            self._kernel = kernel
        return kernel

    # -- preparation ----------------------------------------------------------------

    def _prepare(self, path: Sequence[int]) -> None:
        """Compute prefix hashes of *path* once; cached by object identity.

        The cache holds a strong reference to *path*, so its ``id`` cannot be
        recycled while cached.  Callers must not mutate a path between
        probes (tuples and memoryviews over a corpus are safe; the builder
        and the compressor only ever probe immutable paths).
        """
        n = len(path)
        pows = self._pows
        while len(pows) <= n:
            pows.append((pows[-1] * HASH_BASE) & _MASK64)
        prefix = [0] * (n + 1)
        h = 0
        i = 1
        for v in path:
            h = (h * HASH_BASE + v + 1) & _MASK64
            prefix[i] = h
            i += 1
        self._prefix = prefix
        self._prepared_path = path


class FlatBatchKernel:
    """Corpus-level rolling-hash matcher over a *static* supernode table.

    Built once per batch from a :class:`~repro.core.supernode_table.
    SupernodeTable`; :meth:`best_lengths` computes, for every symbol position
    of a :class:`FlatCorpus`, the longest candidate length whose window hash
    matches there (1 where none does).  The greedy compressor then walks
    that array and verifies each nominated match against the table — the
    only per-position Python work left.

    :param table: the supernode table to match against.
    :param hash_bits: see :class:`RollingHashCandidates`.
    """

    def __init__(self, table, hash_bits: int = 64) -> None:
        self.table = table
        self.hash_bits = hash_bits
        self._hash_mask = (1 << hash_bits) - 1
        self._by_length: Dict[int, set] = {}
        for _, subpath in table:
            self._by_length.setdefault(len(subpath), set()).add(
                _hash_sequence(subpath, self._hash_mask)
            )
        self.lengths = sorted(self._by_length)
        #: Work counters for the batch pass (probes = window tests issued,
        #: hashed_vertices = O(1) window tests; verify costs are accounted
        #: by the greedy loop in :func:`repro.core.compressor.compress_paths_flat`).
        self.batch_probes = 0

    @property
    def available(self) -> bool:
        """Whether the vectorized pass can run (numpy present)."""
        return _np is not None

    def best_lengths(self, corpus: FlatCorpus) -> Optional[List[int]]:
        """Per-symbol best hash-nominated candidate length, or ``None``.

        ``None`` means numpy is unavailable; the caller must fall back to a
        per-path matcher.  The returned list has one entry per symbol of
        ``corpus.buffer``; entry values are 1 (no candidate nominated) or a
        candidate length L ≥ 2 with ``hash(window) ∈ table hashes``.
        Nominations are upper bounds: the greedy loop must verify (and on a
        rare collision, descend to shorter lengths).
        """
        if _np is None:
            return None
        arrays = corpus.as_numpy()
        if arrays is None:  # pragma: no cover - as_numpy is None iff _np is
            return None
        buf_i64, offs = arrays
        n_symbols = len(buf_i64)
        if n_symbols == 0 or not self.lengths:
            self.batch_probes = 0
            return [1] * n_symbols

        np = _np
        buf = buf_i64.view(np.uint64)
        path_lengths = np.diff(offs)
        max_path_len = int(path_lengths.max()) if len(path_lengths) else 0
        max_pow = max(max_path_len, self.lengths[-1]) + 1

        # Powers of the base and its modular inverse, mod 2**64 (uint64
        # multiplication wraps, which *is* the modulus).
        base = np.uint64(HASH_BASE)
        base_inv = np.uint64(pow(HASH_BASE, -1, 1 << 64))
        pows = np.empty(max_pow + 1, dtype=np.uint64)
        pows[0] = 1
        np.multiply.accumulate(np.full(max_pow, base, dtype=np.uint64), out=pows[1:])
        inv_pows = np.empty(max_path_len + 1, dtype=np.uint64)
        inv_pows[0] = 1
        if max_path_len:
            np.multiply.accumulate(
                np.full(max_path_len, base_inv, dtype=np.uint64), out=inv_pows[1:]
            )

        # Segmented prefix hashes over the flat buffer:
        #   P[i] = hash of the path prefix ending at absolute position i
        # via Q[i] = Σ (v_j + 1)·B^(-rel_j)  and  P[i] = Q_segment[i]·B^rel_i,
        # which turns the per-path recurrence into one cumulative sum.
        starts = np.repeat(offs[:-1], path_lengths)
        rel = np.arange(n_symbols, dtype=np.int64) - starts
        term = (buf + np.uint64(1)) * inv_pows[rel]
        csum = np.cumsum(term, dtype=np.uint64)
        seg_base = np.zeros(n_symbols, dtype=np.uint64)
        interior = starts > 0
        seg_base[interior] = csum[starts[interior] - 1]
        prefix = (csum - seg_base) * pows[rel]
        prefix_prev = np.empty(n_symbols, dtype=np.uint64)
        prefix_prev[0] = 0
        prefix_prev[1:] = prefix[:-1]
        prefix_prev[rel == 0] = 0

        ends = np.repeat(offs[1:], path_lengths)
        idx = np.arange(n_symbols, dtype=np.int64)
        best = np.ones(n_symbols, dtype=np.int64)
        hash_mask = np.uint64(self._hash_mask)
        probes = 0
        # Ascending lengths so the longest nomination wins the final write.
        for length in self.lengths:
            span = n_symbols - length + 1
            if span <= 0:
                continue
            windows = (prefix[length - 1 :] - prefix_prev[:span] * pows[length]) & hash_mask
            in_path = idx[:span] + length <= ends[:span]
            probes += int(in_path.sum())
            hit = self._membership(length, windows)
            hit &= in_path
            best[:span][hit] = length
        self.batch_probes = probes
        return best.tolist()

    def _membership(self, length: int, windows):
        """Vectorized ``windows ∈ table-hashes-of-length`` (may over-report).

        Uses a direct-addressed bitmap filter over the low hash bits; false
        positives are fine (the greedy loop verifies every nomination), so
        the filter width only trades memory for verify frequency.
        """
        np = _np
        hashes = self._by_length[length]
        filter_bits = min(20, self.hash_bits)
        fmask = np.uint64((1 << filter_bits) - 1)
        key = f"_filter_{length}_{filter_bits}"
        bitmap = getattr(self, key, None)
        if bitmap is None:
            bitmap = np.zeros(1 << filter_bits, dtype=bool)
            idx = np.fromiter(hashes, dtype=np.uint64, count=len(hashes))
            bitmap[(idx & fmask).astype(np.int64)] = True
            setattr(self, key, bitmap)
        return bitmap[(windows & fmask).astype(np.int64)]
