"""Flat-corpus representation: one buffer, one offsets index, zero tuple churn.

Every batch operation in this repository — table construction, greedy
compression, parallel fan-out — ultimately walks a *dataset of paths*.  The
natural Python representation (a list of int tuples) pays for that
convenience twice: once in memory (object headers, per-tuple allocation) and
once in motion (pickling a list of tuples ships every element as an object).
A :class:`FlatCorpus` interns the same data as two ``array('q')`` buffers:

* ``buffer`` — every vertex of every path, concatenated;
* ``offsets`` — ``n + 1`` monotone positions; path *i* occupies
  ``buffer[offsets[i]:offsets[i+1]]``.

This is the layout the batch kernels of :mod:`repro.core.rollhash` consume
directly (prefix hashes are computed over ``buffer`` in one vectorized pass
when numpy is available), and the layout :mod:`repro.core.parallel` ships to
worker processes: a chunk is a buffer *slice* plus rebased offsets, picked up
as machine bytes rather than a forest of tuples.

numpy is optional everywhere: :meth:`as_numpy` returns ``None`` when it is
unavailable and every consumer falls back to the pure-Python path.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import BoundsError, InvalidInputError

Subpath = Tuple[int, ...]

#: What :meth:`FlatCorpus.to_shipping` produces: raw buffer bytes and raw
#: offsets bytes.  Deliberately plain (two ``bytes`` objects) so pickling a
#: chunk costs two memcpy-speed blobs.
ShippedCorpus = Tuple[bytes, bytes]

try:  # soft dependency — the container itself never requires numpy
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None


class FlatCorpus:
    """An immutable path dataset interned into one flat int64 buffer.

    :param buffer: the concatenated vertices — an ``array('q')`` or a
        (zero-copy) ``memoryview`` of one.
    :param offsets: ``n + 1`` monotone ints starting at 0 and ending at
        ``len(buffer)``.
    :param name: label carried into stats and benchmark reports.

    Iterating yields each path as a fresh tuple; prefer :meth:`view` /
    :meth:`as_numpy` in hot code that can work on the raw buffer.
    """

    __slots__ = ("buffer", "offsets", "name")

    def __init__(self, buffer, offsets, name: str = "corpus") -> None:
        if len(offsets) == 0 or offsets[0] != 0:
            raise InvalidInputError("offsets must start at 0")
        if offsets[-1] != len(buffer):
            raise InvalidInputError(
                f"offsets end ({offsets[-1]}) must equal buffer length ({len(buffer)})"
            )
        self.buffer = buffer
        self.offsets = offsets
        self.name = name

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_paths(cls, paths: Iterable[Sequence[int]], name: str = "corpus") -> "FlatCorpus":
        """Intern *paths* (any iterable of int sequences) into a corpus."""
        buffer = array("q")
        offsets = array("q", [0])
        extend = buffer.extend
        append = offsets.append
        for p in paths:
            extend(p)
            append(len(buffer))
        return cls(buffer, offsets, name=name)

    @classmethod
    def from_shipping(cls, payload: ShippedCorpus, name: str = "corpus") -> "FlatCorpus":
        """Rebuild a corpus from :meth:`to_shipping` output."""
        buffer_bytes, offsets_bytes = payload
        buffer = array("q")
        buffer.frombytes(buffer_bytes)
        offsets = array("q")
        offsets.frombytes(offsets_bytes)
        return cls(buffer, offsets, name=name)

    def to_shipping(self) -> ShippedCorpus:
        """The corpus as two machine-byte blobs (cheap to pickle)."""
        return bytes(self.buffer), bytes(self.offsets)

    # -- container protocol ------------------------------------------------------

    def __len__(self) -> int:
        """Number of paths."""
        return len(self.offsets) - 1

    def __getitem__(self, index: int) -> Subpath:
        return self.path(index)

    def __iter__(self) -> Iterator[Subpath]:
        buffer = self.buffer
        offsets = self.offsets
        start = offsets[0]
        for i in range(1, len(offsets)):
            end = offsets[i]
            yield tuple(buffer[start:end])
            start = end

    def __repr__(self) -> str:
        return (
            f"FlatCorpus(name={self.name!r}, paths={len(self)}, "
            f"symbols={self.total_symbols})"
        )

    # -- accessors ----------------------------------------------------------------

    @property
    def total_symbols(self) -> int:
        """Total vertices across all paths (the paper's ``|P|`` in nodes)."""
        return len(self.buffer)

    def path(self, index: int) -> Subpath:
        """Path *index* materialized as a tuple."""
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise BoundsError(f"path index {index} out of range")
        return tuple(self.buffer[self.offsets[index] : self.offsets[index + 1]])

    def view(self, index: int) -> memoryview:
        """Path *index* as a zero-copy memoryview into the buffer."""
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise BoundsError(f"path index {index} out of range")
        return memoryview(self.buffer)[self.offsets[index] : self.offsets[index + 1]]

    def lengths(self) -> List[int]:
        """Per-path lengths, in order."""
        offsets = self.offsets
        return [offsets[i + 1] - offsets[i] for i in range(len(self))]

    def max_vertex(self) -> int:
        """Largest vertex id in the corpus; ``-1`` when empty."""
        if len(self.buffer) == 0:
            return -1
        arrays = self.as_numpy()
        if arrays is not None:
            return int(arrays[0].max())
        return max(self.buffer)

    def to_paths(self) -> List[Subpath]:
        """Materialize every path as a tuple (the legacy representation)."""
        return list(self)

    def to_dataset(self):
        """The corpus as a :class:`~repro.paths.dataset.PathDataset`."""
        from repro.paths.dataset import PathDataset

        return PathDataset(self, name=self.name)

    def as_numpy(self):
        """Zero-copy numpy views ``(buffer, offsets)`` as int64, or ``None``.

        ``None`` means numpy is unavailable; callers must take their
        pure-Python fallback.
        """
        if _np is None:
            return None
        buf = _np.frombuffer(self.buffer, dtype=_np.int64)
        offs = _np.frombuffer(self.offsets, dtype=_np.int64)
        return buf, offs

    # -- chunking (parallel fan-out) ----------------------------------------------

    def chunk(self, start: int, stop: int) -> "FlatCorpus":
        """Paths ``start:stop`` as a corpus sharing this buffer (zero-copy).

        The returned corpus's ``buffer`` is a memoryview slice; its offsets
        are rebased to start at 0.
        """
        n = len(self)
        start = max(0, min(start, n))
        stop = max(start, min(stop, n))
        lo = self.offsets[start]
        hi = self.offsets[stop]
        buffer = memoryview(self.buffer)[lo:hi]
        offsets = array("q", (self.offsets[i] - lo for i in range(start, stop + 1)))
        return FlatCorpus(buffer, offsets, name=f"{self.name}[{start}:{stop}]")

    def chunks(self, chunk_size: int) -> Iterator["FlatCorpus"]:
        """Contiguous zero-copy chunks of at most *chunk_size* paths."""
        if chunk_size < 1:
            raise InvalidInputError("chunk_size must be >= 1")
        for start in range(0, len(self), chunk_size):
            yield self.chunk(start, start + chunk_size)

    def every(self, stride: int) -> "FlatCorpus":
        """Every *stride*-th path as a new corpus (the paper's sampling)."""
        if stride < 1:
            raise InvalidInputError("stride must be >= 1")
        if stride == 1:
            return self
        buffer = array("q")
        offsets = array("q", [0])
        for i in range(0, len(self), stride):
            buffer.extend(self.buffer[self.offsets[i] : self.offsets[i + 1]])
            offsets.append(len(buffer))
        return FlatCorpus(buffer, offsets, name=f"{self.name}/every{stride}")


def as_flat_corpus(paths, name: str = "corpus") -> FlatCorpus:
    """Coerce *paths* (a :class:`FlatCorpus` or any path iterable) to a corpus."""
    if isinstance(paths, FlatCorpus):
        return paths
    dataset_name = getattr(paths, "name", None)
    return FlatCorpus.from_paths(paths, name=dataset_name or name)
