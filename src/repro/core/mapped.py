"""Zero-copy, mmap-backed random access over the v2 store file format.

``loads_store`` materializes an entire archive — every token parsed, every
tuple allocated — before the first path can be served.  For the serving
workloads the paper motivates (retrieve a handful of paths out of millions)
that load cost dwarfs the query cost.  :class:`MappedPathStore` is the
retrieval-oriented counterpart, in the spirit of CiNCT's query-first data
structures and Log(Graph)'s offset-indexed mmap layouts:

* **open = header only.**  Opening validates 64 bytes; cost is independent
  of path count.  The table and the offset index stay as raw mapped bytes
  until first touched (table decode also verifies the metadata CRC).
* **O(1) seek.**  Path *i*'s tokens live at ``index[i]:index[i+1]`` in the
  payload; retrieval reads exactly those bytes through the mapping —
  the OS pages in only what queries touch.
* **Same answers.**  ``retrieve`` / ``retrieve_slice`` / ``retrieve_many``
  are result-identical to :class:`~repro.core.store.CompressedPathStore`
  over the same archive (the round-trip property tests hold them to it),
  and the reader duck-types the store's query surface, so
  :class:`~repro.queries.index.VertexIndex`, the query engines and the CLI
  work unchanged on top of either.

Write files with :func:`repro.core.serialize.dump_store_file`; open them
with :func:`~repro.core.serialize.load_store_file`, :meth:`MappedPathStore.open`,
or construct directly over any bytes-like buffer (the in-memory route used
by :func:`~repro.core.serialize.loads_store_v2` and the fuzz tests).
"""

from __future__ import annotations

import mmap
import os
import zlib
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.core.errors import (
    CorruptDataError,
    PathIdError,
    StateError,
    TruncatedDataError,
)
from repro.core.serialize import (
    StoreV2Header,
    _read_varint,
    loads_table,
    parse_order_section,
    parse_store_v2_header,
)
from repro.obs import catalog
from repro.obs.runtime import get_active


class MappedPathStore:
    """Read-only compressed path store over a v2 buffer or mapped file.

    :param buffer: the complete v2 blob — ``bytes``, ``mmap.mmap`` or any
        buffer supporting slicing; validated up to the header immediately.
    :param name: label for ``repr`` and diagnostics (the file path when
        opened via :meth:`open`).
    """

    def __init__(self, buffer, name: str = "<buffer>") -> None:
        self.name = name
        self._buf = buffer
        self._mmap: Optional[mmap.mmap] = buffer if isinstance(buffer, mmap.mmap) else None
        self._file = None
        self._owner_pid = os.getpid()
        self._header: StoreV2Header = parse_store_v2_header(buffer)
        self._table = None
        self._index = None
        self._order = None
        self._order_loaded = not self._header.has_order
        obs = get_active()
        if obs is not None:
            obs.registry.set_gauge(catalog.STORE_MAPPED_BYTES, len(buffer))

    @classmethod
    def open(cls, path: str) -> "MappedPathStore":
        """Memory-map the v2 file at *path*.

        Only the header is read eagerly; with :mod:`repro.obs` active the
        call is timed as ``store.open.seconds`` under a ``store.open``
        span, and the mapping size lands on ``store.mapped_bytes``.
        """
        obs = get_active()
        if obs is None:
            return cls._open(path)
        with obs.tracer.span(catalog.SPAN_STORE_OPEN) as span, obs.registry.timeit(
            catalog.STORE_OPEN_SECONDS
        ):
            store = cls._open(path)
            if span is not None:
                span.add("paths", len(store))
                span.add("bytes", len(store._buf))
        return store

    @classmethod
    def _open(cls, path: str) -> "MappedPathStore":
        fh = open(path, "rb")
        try:
            mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as exc:  # zero-byte file cannot be mapped
            fh.close()
            raise TruncatedDataError(
                f"v2 store file {path!r} is empty (truncated at byte offset 0)"
            ) from exc
        except OSError:
            fh.close()
            raise
        try:
            store = cls(mapped, name=path)
        except CorruptDataError:
            mapped.close()
            fh.close()
            raise
        store._file = fh
        return store

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Release the mapping (no-op for plain byte buffers)."""
        if self._index is not None:
            # The index memoryview exports a pointer into the mapping;
            # mmap.close() refuses while any such export is alive.
            self._index.release()
            self._index = None
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "MappedPathStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- process boundaries --------------------------------------------------------
    #
    # A mapping is an address-space resource: a forked worker inherits the
    # parent's mmap and file descriptor (reads keep working, but the two
    # processes now share OS state with no independent lifecycle), and a
    # spawned worker cannot receive one at all — ``mmap.mmap`` does not
    # pickle.  Long-lived servers (repro.serve) fan out over N workers, so
    # the store knows which process opened it and can re-establish itself
    # on the other side of any process boundary.

    @property
    def owner_pid(self) -> int:
        """The pid of the process that opened (or unpickled) this store."""
        return self._owner_pid

    def reopen(self) -> "MappedPathStore":
        """A fresh store over the same source — new fd, new mapping.

        File-backed stores re-open (and re-validate) the file at
        :attr:`name`; plain byte buffers are immutable and simply shared
        with the new instance.

        :raises StateError: for a store constructed over a raw ``mmap``
            object with no backing path to re-open.
        """
        if self._file is not None:
            return type(self).open(self.name)
        if self._mmap is not None:
            raise StateError(
                f"cannot reopen {self!r}: it wraps a caller-owned mmap with "
                "no backing file path; use MappedPathStore.open(path)"
            )
        return type(self)(self._buf, name=self.name)

    def process_local(self) -> "MappedPathStore":
        """This store if owned by the current process, else :meth:`reopen`.

        The post-fork idiom for worker processes::

            store = store.process_local()   # safe on either side of fork

        A fork-inherited mapping still answers reads, but re-opening gives
        the worker its own descriptor and mapping (independent close, and
        the header/CRC validation re-runs against the file as it exists
        now).  Owned stores are returned unchanged, so the call is free in
        the common case.
        """
        if os.getpid() == self._owner_pid:
            return self
        return self.reopen()

    def __getstate__(self):
        # mmap objects cannot cross process boundaries; pickle the source
        # instead.  This is what lets repro.serve (and any multiprocessing
        # start method, including spawn) ship a store to worker processes.
        if self._file is not None:
            return {"path": self.name}
        if self._mmap is not None:
            raise StateError(
                f"cannot pickle {self!r}: it wraps a caller-owned mmap with "
                "no backing file path; use MappedPathStore.open(path)"
            )
        return {"buffer": bytes(self._buf), "name": self.name}

    def __setstate__(self, state) -> None:
        if "path" in state:
            fresh = type(self)._open(state["path"])
            self.__dict__.update(fresh.__dict__)
        else:
            self.__init__(state["buffer"], name=state["name"])

    # -- lazy sections ------------------------------------------------------------

    @property
    def table(self):
        """The supernode table, decoded (and CRC-checked) on first access."""
        if self._table is None:
            header = self._header
            meta = bytes(
                self._buf[header.table_offset : header.payload_offset]
            )
            if zlib.crc32(meta) != header.meta_crc:
                raise CorruptDataError(
                    "v2 table/index checksum mismatch (file is corrupt)"
                )
            table_blob = meta[: header.table_size]
            table, consumed = loads_table(table_blob)
            if consumed != header.table_size:
                raise CorruptDataError(
                    "v2 table section size disagrees with its contents"
                )
            self._table = table
        return self._table

    @property
    def order(self):
        """The persisted :class:`~repro.paths.reorder.VertexOrder`, or ``None``.

        Decoded (and CRC-checked) on first access — opening an ordered
        file still costs only the 64-byte header.  ``None`` means the
        payload is in original ids and retrieval skips inversion.
        """
        if not self._order_loaded:
            self._order = parse_order_section(self._buf, self._header)
            self._order_loaded = True
        return self._order

    def _restore(self, path: Tuple[int, ...]) -> Tuple[int, ...]:
        """Invert the vertex order on an outgoing path (no-op when unordered)."""
        order = self.order
        if order is None:
            return path
        return order.invert_path(path)

    def _offsets(self):
        """The raw u64 offset index as a zero-copy memoryview cast."""
        if self._index is None:
            header = self._header
            self._index = memoryview(self._buf)[
                header.index_offset : header.payload_offset
            ].cast("Q")
        return self._index

    # -- retrieval ----------------------------------------------------------------

    def __len__(self) -> int:
        return self._header.path_count

    def token(self, path_id: int) -> Tuple[int, ...]:
        """The raw compressed token for *path_id*, parsed from the mapping."""
        self._check_id(path_id)
        index = self._offsets()
        header = self._header
        begin = header.payload_offset + index[path_id]
        end = header.payload_offset + index[path_id + 1]
        if begin > end or end > header.total_size:
            raise CorruptDataError(
                f"v2 offset index is not monotone at path {path_id}"
            )
        limit = self.table.base_id + len(self.table)
        buf = self._buf
        token: List[int] = []
        push = token.append
        pos = begin
        while pos < end:
            value, pos = _read_varint(buf, pos)
            if value >= limit:
                raise CorruptDataError(
                    f"token references supernode {value} beyond table "
                    f"(limit {limit}) at byte offset {pos}"
                )
            push(value)
        return tuple(token)

    def tokens(self) -> List[Tuple[int, ...]]:
        """All compressed tokens in path-id order (parses the full payload)."""
        return [self.token(pid) for pid in range(len(self))]

    def retrieve(self, path_id: int) -> Tuple[int, ...]:
        """Decompress and return the single path *path_id*."""
        from repro.core.compressor import decompress_path

        self._check_id(path_id)
        obs = get_active()
        if obs is None:
            return self._restore(decompress_path(self.token(path_id), self.table))
        with obs.registry.timeit(catalog.STORE_RETRIEVE_SECONDS):
            path = self._restore(decompress_path(self.token(path_id), self.table))
        obs.registry.counter(catalog.STORE_RETRIEVED_PATHS).inc()
        return path

    def retrieve_slice(
        self, path_id: int, start: Optional[int] = None, stop: Optional[int] = None
    ) -> Tuple[int, ...]:
        """``retrieve(path_id)[start:stop]`` without full materialization.

        Identical semantics to
        :meth:`CompressedPathStore.retrieve_slice
        <repro.core.store.CompressedPathStore.retrieve_slice>`.
        """
        from repro.core.expansion import slice_token

        self._check_id(path_id)
        obs = get_active()
        if obs is None:
            return self._restore(slice_token(
                self.token(path_id), self.table.expansions(), start, stop
            ))
        with obs.registry.timeit(catalog.STORE_RETRIEVE_SLICE_SECONDS):
            out = self._restore(slice_token(
                self.token(path_id), self.table.expansions(), start, stop
            ))
        obs.registry.counter(catalog.STORE_RETRIEVED_SLICES).inc()
        return out

    def expanded_length(self, path_id: int) -> int:
        """Decompressed length of *path_id* without expanding anything."""
        self._check_id(path_id)
        return self.table.expansions().token_length(self.token(path_id))

    def retrieve_many(self, path_ids: Iterable[int]) -> List[Tuple[int, ...]]:
        """Decompress exactly the given paths; ids validated up front."""
        ids = list(path_ids)
        for pid in ids:
            self._check_id(pid)
        return [self.retrieve(pid) for pid in ids]

    def retrieve_batch(self, path_ids: Iterable[int]) -> List[Tuple[int, ...]]:
        """Decompress the given paths through the flat batch kernel.

        Result-identical to :meth:`retrieve_many` (ids validated up front,
        output order follows input order) but funnels all tokens through one
        :func:`~repro.core.compressor.decompress_paths_flat` call instead of
        a per-path loop — the route multi-id requests take in
        :mod:`repro.serve`.
        """
        from repro.core.compressor import decompress_paths_flat

        ids = list(path_ids)
        for pid in ids:
            self._check_id(pid)
        if not ids:
            return []
        tokens = [self.token(pid) for pid in ids]
        obs = get_active()
        if obs is None:
            return self._restore_all(decompress_paths_flat(tokens, self.table))
        with obs.registry.timeit(catalog.STORE_RETRIEVE_SECONDS):
            out = self._restore_all(decompress_paths_flat(tokens, self.table))
        obs.registry.counter(catalog.STORE_RETRIEVED_PATHS).inc(len(ids))
        return out

    def retrieve_all(self) -> List[Tuple[int, ...]]:
        """Decompress the full archive through the flat batch kernel."""
        from repro.core.compressor import decompress_paths_flat

        return self._restore_all(decompress_paths_flat(self.tokens(), self.table))

    def _restore_all(self, paths: List[Tuple[int, ...]]) -> List[Tuple[int, ...]]:
        """Invert the vertex order over a batch (no-op when unordered)."""
        order = self.order
        if order is None:
            return paths
        invert = order.invert_path
        return [invert(p) for p in paths]

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        from repro.core.compressor import decompress_path

        table = self.table
        restore = self._restore
        return (
            restore(decompress_path(self.token(pid), table))
            for pid in range(len(self))
        )

    def to_store(self, matcher_backend: str = "hash"):
        """Materialize a fully in-memory :class:`CompressedPathStore` copy."""
        from repro.core.store import CompressedPathStore

        store = CompressedPathStore(
            self.table, matcher_backend=matcher_backend, order=self.order
        )
        store._tokens.extend(self.tokens())
        return store

    # -- size accounting (same contracts as CompressedPathStore) -------------------

    def compressed_symbol_count(self) -> int:
        """Total integer symbols across all stored tokens."""
        return sum(len(t) for t in self.tokens())

    def compressed_size_bytes(self, encoding=None) -> int:
        """``|P'| + |R|`` in bytes under *encoding* (default: the paper's)."""
        from repro.paths.encoding import DEFAULT_ENCODING

        encoding = encoding or DEFAULT_ENCODING
        table = self.table
        total = encoding.size_of_value(table.base_id)
        for _, subpath in table:
            total += encoding.size_of_value(len(subpath)) + encoding.size_of(subpath)
        order = self.order
        if order is not None:
            total += order.size_bytes(encoding)
        for token in self.tokens():
            total += encoding.size_of_value(len(token)) + encoding.size_of(token)
        return total

    def raw_size_bytes(self, encoding=None) -> int:
        """``|P|`` in bytes: what the uncompressed paths would cost."""
        from repro.paths.encoding import DEFAULT_ENCODING

        encoding = encoding or DEFAULT_ENCODING
        total = 0
        for path in self:
            total += encoding.size_of_value(len(path)) + encoding.size_of(path)
        return total

    def compression_ratio(self, encoding=None) -> float:
        """``CR = |P| / (|P'| + |R|)`` for the archive's contents."""
        compressed = self.compressed_size_bytes(encoding)
        return self.raw_size_bytes(encoding) / compressed if compressed else 0.0

    # -- internals ----------------------------------------------------------------

    def _check_id(self, path_id: int) -> None:
        if not 0 <= path_id < self._header.path_count:
            raise PathIdError(
                f"path id {path_id} not in store of {self._header.path_count} paths"
            )

    def __repr__(self) -> str:
        return (
            f"MappedPathStore(name={self.name!r}, paths={len(self)}, "
            f"bytes={len(self._buf)})"
        )
