"""Exception hierarchy for the repro library.

All library-specific failures derive from :class:`ReproError`, so callers can
catch one base class.  Errors are raised eagerly — a compressor that silently
produces a wrong stream is worse than one that refuses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError, ValueError):
    """An :class:`~repro.core.config.OFFSConfig` parameter is invalid."""


class TableError(ReproError, ValueError):
    """A supernode table is malformed or used inconsistently."""


class NotFittedError(ReproError, RuntimeError):
    """A codec was asked to (de)compress before a table was built."""


class CorruptDataError(ReproError, ValueError):
    """A serialized blob failed validation during decoding."""


class PathIdError(ReproError, KeyError):
    """A path id is unknown to the compressed store."""


class InvalidInputError(ReproError, ValueError):
    """A caller-supplied argument is out of range or malformed.

    Deliberately also a :class:`ValueError` so call sites written against
    the stdlib convention keep working.
    """


class StateError(ReproError, RuntimeError):
    """An object was used outside its legal lifecycle (also RuntimeError)."""


class BoundsError(ReproError, IndexError):
    """A positional index is out of range (also IndexError)."""


class TruncatedDataError(CorruptDataError, BoundsError):
    """A decoder ran off the end of (or before the start of) a byte buffer.

    Inherits both :class:`CorruptDataError` (truncation *is* corruption —
    archive loaders keep their single ``except CorruptDataError`` contract)
    and :class:`BoundsError` (the proximate failure is an out-of-range byte
    offset, so callers written against IndexError semantics also work).
    Messages always carry the offending byte offset.
    """
