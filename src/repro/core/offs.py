"""The OFFS codec — the paper's contribution, behind one friendly class.

:class:`OFFSCodec` ties the pieces together: ``TConstruct*`` table
construction (:mod:`repro.core.builder`), greedy compression and one-pass
decompression (:mod:`repro.core.compressor`), with the paper's deployed
defaults (δ = 8, α = 5, i = 4, k = 7).

>>> from repro import OFFSCodec, PathDataset
>>> ds = PathDataset([[1, 2, 3, 4], [0, 1, 2, 3, 4], [1, 2, 3, 9]])
>>> codec = OFFSCodec.fast().fit(ds)
>>> token = codec.compress_path((1, 2, 3, 4))
>>> codec.decompress_path(token)
(1, 2, 3, 4)
"""

from __future__ import annotations

from typing import Optional

from repro.core.builder import BuildReport, TableBuilder
from repro.core.codec import TableCodec
from repro.core.config import OFFSConfig
from repro.core.supernode_table import SupernodeTable


class OFFSCodec(TableCodec):
    """Overlap-Free Frequent Subpath compressor.

    :param config: an :class:`~repro.core.config.OFFSConfig`; defaults to the
        paper's default mode ``(i, k) = (4, 7)``.

    After :meth:`fit`, :attr:`build_report` records how construction went
    (sampled paths, per-iteration candidate counts, timings).
    """

    name = "OFFS"

    def __init__(self, config: Optional[OFFSConfig] = None, base_id: Optional[int] = None) -> None:
        config = config or OFFSConfig.default_mode()
        super().__init__(matcher_backend=config.matcher, base_id=base_id)
        self.config = config
        self.build_report: Optional[BuildReport] = None

    def build_table(self, dataset) -> SupernodeTable:
        table, report = TableBuilder(self.config).build(dataset, base_id=self.base_id)
        self.build_report = report
        return table

    # -- named modes -----------------------------------------------------------

    @classmethod
    def default(cls, **overrides) -> "OFFSCodec":
        """The paper's OFFS default mode: ``(i, k) = (4, 7)``."""
        return cls(OFFSConfig.default_mode(**overrides))

    @classmethod
    def fast(cls, **overrides) -> "OFFSCodec":
        """The paper's OFFS* fast mode: ``(i, k) = (2, 7)``.

        Stops refining once candidates have just reached full length;
        Fig. 5 shows it trades ≈ 0.33 CR for ≈ 1.5× construction speed.
        """
        codec = cls(OFFSConfig.fast_mode(**overrides))
        codec.name = "OFFS*"
        return codec
