"""The OFFS codec — the paper's contribution, behind one friendly class.

:class:`OFFSCodec` ties the pieces together: ``TConstruct*`` table
construction (:mod:`repro.core.builder`), greedy compression and one-pass
decompression (:mod:`repro.core.compressor`), with the paper's deployed
defaults (δ = 8, α = 5, i = 4, k = 7).

>>> from repro import OFFSCodec, PathDataset
>>> ds = PathDataset([[1, 2, 3, 4], [0, 1, 2, 3, 4], [1, 2, 3, 9]])
>>> codec = OFFSCodec.fast().fit(ds)
>>> token = codec.compress_path((1, 2, 3, 4))
>>> codec.decompress_path(token)
(1, 2, 3, 4)
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.builder import BuildReport, TableBuilder
from repro.core.codec import TableCodec
from repro.core.config import OFFSConfig
from repro.core.supernode_table import SupernodeTable
from repro.paths.encoding import DEFAULT_ENCODING, Encoding


class OFFSCodec(TableCodec):
    """Overlap-Free Frequent Subpath compressor.

    :param config: an :class:`~repro.core.config.OFFSConfig`; defaults to the
        paper's default mode ``(i, k) = (4, 7)``.

    After :meth:`fit`, :attr:`build_report` records how construction went
    (sampled paths, per-iteration candidate counts, timings), and
    :attr:`order` holds the fitted :class:`~repro.paths.reorder.VertexOrder`
    when ``config.reorder`` names a non-identity strategy (``None``
    otherwise).  With an order active, :meth:`fit` trains the table on the
    *reordered* corpus, :meth:`compress_path` relabels inputs before
    matching and :meth:`decompress_path` restores original ids — the
    reordering is invisible at the codec surface.
    """

    name = "OFFS"

    def __init__(self, config: Optional[OFFSConfig] = None, base_id: Optional[int] = None) -> None:
        config = config or OFFSConfig.default_mode()
        super().__init__(matcher_backend=config.matcher, base_id=base_id)
        self.config = config
        self.build_report: Optional[BuildReport] = None
        self.order = None

    def fit(self, dataset) -> "OFFSCodec":
        if self.config.reorder != "identity":
            from repro.paths.reorder import fit_order

            self.order = fit_order(self.config.reorder, dataset)
            if self.order is not None:
                dataset = self.order.transform_corpus(dataset)
        else:
            self.order = None
        super().fit(dataset)
        return self

    def build_table(self, dataset) -> SupernodeTable:
        table, report = TableBuilder(self.config).build(dataset, base_id=self.base_id)
        self.build_report = report
        return table

    def compress_path(self, path: Sequence[int]) -> Tuple[int, ...]:
        if self.order is not None:
            path = self.order.apply_path(path)
        return super().compress_path(path)

    def decompress_path(self, token: Sequence[int]) -> Tuple[int, ...]:
        path = super().decompress_path(token)
        if self.order is not None:
            path = self.order.invert_path(path)
        return path

    def rule_size_bytes(self, encoding: Encoding = DEFAULT_ENCODING) -> int:
        """Table cost plus, when reordering, the persisted order table.

        The order's backward map is part of the rule ``R`` — without it a
        reader cannot restore original ids — so compression ratios charge
        for it the same way they charge for the supernode table.
        """
        total = super().rule_size_bytes(encoding)
        if self.order is not None:
            total += self.order.size_bytes(encoding)
        return total

    # -- named modes -----------------------------------------------------------

    @classmethod
    def default(cls, **overrides) -> "OFFSCodec":
        """The paper's OFFS default mode: ``(i, k) = (4, 7)``."""
        return cls(OFFSConfig.default_mode(**overrides))

    @classmethod
    def fast(cls, **overrides) -> "OFFSCodec":
        """The paper's OFFS* fast mode: ``(i, k) = (2, 7)``.

        Stops refining once candidates have just reached full length;
        Fig. 5 shows it trades ≈ 0.33 CR for ≈ 1.5× construction speed.
        """
        codec = cls(OFFSConfig.fast_mode(**overrides))
        codec.name = "OFFS*"
        return codec
