"""Supernode-table construction — ``TConstruct*`` (Algorithm 5).

This is the heart of OFFS.  The builder selects supernodes by *practical
weighted frequency*: a candidate's weight counts only the matches the greedy
compression scheme would actually make, so overlapped candidates that lose
every match race (the *match collision issue* of Section IV-A) score zero and
fall out of the table.

The bottom-up loop, following the paper:

1. **Initialization** — every edge of the sampled paths enters the candidate
   set with weight 1 ("the weight suggests existence", Example 2).
2. **Iterations** ``it = 1 .. τ`` — weights reset, then each sampled path is
   scanned with :meth:`~repro.core.matcher.CandidateSet.longest_match` under
   the per-iteration cap ``min(2**it, δ)``; every match of length > 1 earns
   its candidate one weight unit.  New candidates are generated from each
   adjacent pair of matches by

   * **merge** — the concatenation ``pre ⊕ match``, truncated to δ, and
   * **expansion** — ``pre ⊕ first-vertex-of-match`` when the match is longer
     than one vertex and ``pre`` still has room;

   the candidate set is live, so sequences created early in an iteration can
   be matched later in the same iteration.  After each iteration at most λ
   candidates survive (ranked by weight × length).
3. **Finalization** — candidates matched fewer than ``min_final_weight``
   times in the last iteration are dropped and the survivors become the
   :class:`~repro.core.supernode_table.SupernodeTable`, most valuable first
   (so frequent subpaths get the smallest supernode ids — free varint wins).

On the iteration cap: the pseudocode writes ``2^(i+1)`` with an unstated id
base; the worked Example 2 (length-2 matches in iteration one) and Exp-1
(candidates reach δ at iteration three, with δ = 8) pin it to ``2**it`` for
1-indexed ``it``, which is what we use.  See DESIGN.md §3.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.config import OFFSConfig
from repro.core.flatcorpus import as_flat_corpus
from repro.core.matcher import CandidateSet, make_candidate_set
from repro.core.supernode_table import SupernodeTable
from repro.obs import catalog
from repro.obs.runtime import active_span, get_active

Subpath = Tuple[int, ...]


@dataclass
class IterationStats:
    """Bookkeeping for one construction iteration."""

    iteration: int
    cap: int
    candidates_before: int
    candidates_after: int
    pruned: int
    matches_counted: int
    elapsed_seconds: float


@dataclass
class BuildReport:
    """What happened during table construction (for benches and debugging)."""

    sampled_paths: int = 0
    sampled_nodes: int = 0
    lambda_capacity: int = 0
    iterations: List[IterationStats] = field(default_factory=list)
    topdown_trims: List[int] = field(default_factory=list)
    finalized_entries: int = 0
    dropped_at_finalization: int = 0
    elapsed_seconds: float = 0.0

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"built {self.finalized_entries}-entry table from "
            f"{self.sampled_paths} sampled paths in "
            f"{len(self.iterations)} iterations "
            f"({self.elapsed_seconds:.3f}s, λ={self.lambda_capacity}, "
            f"{self.dropped_at_finalization} dropped at finalization)"
        )


class TableBuilder:
    """Runs ``TConstruct*`` over a path dataset.

    :param config: the OFFS parameter set.

    Use :meth:`build` for the one-shot path; the intermediate methods
    (:meth:`initialize`, :meth:`run_iteration`, :meth:`finalize`) are public
    so tests and the worked-example reproduction can inspect candidate state
    between stages, mirroring Table II of the paper.
    """

    def __init__(self, config: Optional[OFFSConfig] = None) -> None:
        self.config = config or OFFSConfig()

    # -- stages ------------------------------------------------------------------

    def initialize(self, paths: Sequence[Sequence[int]]) -> CandidateSet:
        """Stage 1: seed the candidate set with every distinct edge, weight 1."""
        with active_span(catalog.SPAN_BUILD_INITIALIZE) as span:
            cands = make_candidate_set(
                self.config.matcher,
                alpha=self.config.alpha,
                hash_bits=self.config.hash_bits,
            )
            for path in paths:
                for i in range(len(path) - 1):
                    edge = (path[i], path[i + 1])
                    if edge not in cands:
                        cands.add(edge, 1)
            if span is not None:
                span.annotate(seed_candidates=len(cands))
        return cands

    def run_iteration(
        self,
        cands: CandidateSet,
        paths: Sequence[Sequence[int]],
        iteration: int,
        lam: int,
        generate: bool = True,
    ) -> IterationStats:
        """Stage 2: one merge/expansion pass (lines 4–17 of Algorithm 5).

        With ``generate=False`` the pass only counts practical matches of the
        existing candidates without creating merge/expansion sequences; the
        degenerate ``iterations=0`` mode uses this to turn existence weights
        into real frequencies.
        """
        started = time.perf_counter()
        delta = self.config.delta
        cap = min(1 << iteration, delta)
        before = len(cands)
        matches_counted = 0

        obs = get_active()
        probes_before = cands.stats.snapshot() if obs is not None else None

        with active_span(
            catalog.SPAN_BUILD_ITERATION, iteration=iteration, cap=cap
        ) as span:
            cands.reset_weights()
            for path in paths:
                n = len(path)
                if n < 2:
                    continue
                # First match of the path (line 5).
                length = cands.longest_match(path, 0, cap)
                match: Subpath = tuple(path[0:length])
                if length > 1:
                    cands.increment(match)
                    matches_counted += 1
                pos = length
                while pos < n:
                    pre = match
                    length = cands.longest_match(path, pos, cap)
                    match = tuple(path[pos : pos + length])
                    if length > 1:
                        cands.increment(match)
                        matches_counted += 1
                    if generate:
                        # Merge (lines 10-13): concatenate, truncated to delta.
                        # When pre already fills delta the truncation would
                        # reproduce pre itself, which must not earn it a second
                        # count.
                        room = delta - len(pre)
                        if room > 0:
                            merged = pre + match[: min(len(match), room)]
                            cands.add(merged)
                        # Expansion (lines 14-15): pre plus the next vertex.
                        # Skipped when the match is a single vertex because the
                        # merge above already produced exactly that sequence.
                        if length > 1 and len(pre) < delta:
                            cands.add(pre + (path[pos],))
                    pos += length
            pruned = cands.prune_to_top(lam)
            if span is not None:
                span.annotate(candidates_before=before, candidates_after=len(cands))
                span.add("matches", matches_counted)
                span.add("pruned", pruned)
        if obs is not None:
            registry = obs.registry
            registry.counter(catalog.BUILD_ITERATIONS).inc()
            registry.counter(catalog.BUILD_MATCHES).inc(matches_counted)
            registry.counter(catalog.BUILD_CANDIDATES_PRUNED).inc(pruned)
            cands.stats.delta_since(probes_before).publish(
                registry, catalog.PROBE_PREFIX_BUILD_MATCHER
            )

        return IterationStats(
            iteration=iteration,
            cap=cap,
            candidates_before=before,
            candidates_after=len(cands),
            pruned=pruned,
            matches_counted=matches_counted,
            elapsed_seconds=time.perf_counter() - started,
        )

    def finalize(self, cands: CandidateSet, base_id: int) -> Tuple[SupernodeTable, int]:
        """Stage 3: drop one-off candidates, build the id-assigned table.

        Returns the table and the number of candidates dropped.
        """
        with active_span(catalog.SPAN_BUILD_FINALIZE):
            return self._finalize(cands, base_id)

    def _finalize(self, cands: CandidateSet, base_id: int) -> Tuple[SupernodeTable, int]:
        survivors = [
            (seq, w)
            for seq, w in cands.items()
            if w >= self.config.min_final_weight and len(seq) >= 2
        ]
        # Most valuable first: frequent long subpaths get the smallest ids.
        survivors.sort(key=lambda e: (-e[1] * len(e[0]), -len(e[0]), e[0]))
        table = SupernodeTable(base_id, (seq for seq, _ in survivors))
        return table, len(cands) - len(survivors)

    # -- one-shot ------------------------------------------------------------------

    def build(
        self,
        dataset,
        base_id: Optional[int] = None,
    ) -> Tuple[SupernodeTable, BuildReport]:
        """Construct a supernode table for *dataset*.

        :param dataset: a :class:`~repro.paths.dataset.PathDataset` (or any
            sequence of int sequences with ``max_vertex_id``-style content).
        :param base_id: first supernode id; defaults to one past the largest
            vertex id in *dataset* (not just the sample — compression must be
            able to emit ids for unsampled paths too).
        """
        started = time.perf_counter()
        report = BuildReport()

        with active_span(catalog.SPAN_BUILD, matcher=self.config.matcher) as span:
            # Intern the dataset once: base_id becomes a single (vectorized
            # where numpy exists) max over the flat buffer, and sampling
            # materializes only the sampled paths as tuples — the full
            # dataset never becomes a list of tuples here.
            corpus = as_flat_corpus(dataset)
            if base_id is None:
                max_id = corpus.max_vertex()
                base_id = max_id + 1 if max_id >= 0 else 1

            stride = self.config.sample_stride
            sampled = (corpus.every(stride) if stride > 1 else corpus).to_paths()
            report.sampled_paths = len(sampled)
            report.sampled_nodes = sum(len(p) for p in sampled)
            total_nodes = corpus.total_symbols
            lam = self.config.lambda_for(total_nodes)
            report.lambda_capacity = lam

            cands = self.initialize(sampled)
            for it in range(1, self.config.iterations + 1):
                report.iterations.append(self.run_iteration(cands, sampled, it, lam))

            if self.config.topdown_rounds > 0:
                from repro.core.topdown import TopDownRefiner

                refiner = TopDownRefiner(min_weight=self.config.min_final_weight)
                report.topdown_trims = refiner.refine(
                    cands, sampled, self, lam, rounds=self.config.topdown_rounds
                )

            if self.config.iterations == 0:
                # Degenerate i=0 mode (the leftmost points of Fig. 4a-d): no
                # refinement pass runs, so the table is just frequent edges.
                # Count one non-generating pass to turn the existence weights
                # into real frequencies for finalization to rank by.
                report.iterations.append(
                    self.run_iteration(cands, sampled, 1, lam, generate=False)
                )

            table, dropped = self.finalize(cands, base_id)
            report.finalized_entries = len(table)
            report.dropped_at_finalization = dropped
            report.elapsed_seconds = time.perf_counter() - started
            if span is not None:
                span.annotate(
                    sampled_paths=report.sampled_paths,
                    lambda_capacity=lam,
                    table_entries=len(table),
                )

        obs = get_active()
        if obs is not None:
            registry = obs.registry
            registry.counter(catalog.BUILD_SAMPLED_PATHS).inc(report.sampled_paths)
            registry.counter(catalog.BUILD_SAMPLED_NODES).inc(report.sampled_nodes)
            registry.counter(catalog.BUILD_DROPPED_AT_FINALIZATION).inc(dropped)
            registry.set_gauge(catalog.BUILD_TABLE_ENTRIES, len(table))
            registry.set_gauge(catalog.BUILD_LAMBDA_CAPACITY, lam)
            registry.observe(catalog.BUILD_SECONDS, report.elapsed_seconds)
        return table, report


def build_supernode_table(
    dataset,
    config: Optional[OFFSConfig] = None,
    base_id: Optional[int] = None,
) -> SupernodeTable:
    """Convenience wrapper: build and return just the table."""
    table, _ = TableBuilder(config).build(dataset, base_id=base_id)
    return table
