"""Binary serialization for supernode tables and compressed stores.

Persisting compressed archives is where the compression ratio becomes real
bytes on disk.  The formats here are deliberately simple, versioned and fully
validated on load (:class:`~repro.core.errors.CorruptDataError` on any
inconsistency):

* **Table blob** — magic ``RPST``, version, base id, entry count, then per
  entry a varint length and varint vertex ids.  Entry order encodes the id
  assignment, so no ids are written.
* **Store blob** — magic ``RPCS``, version, a CRC32 of everything that
  follows, the table blob, token count, then per token a varint length and
  varint symbols.  The checksum makes *any* single-bit corruption of an
  archive detectable (the fuzz tests flip every byte and expect
  :class:`CorruptDataError`).

Varints are used on disk regardless of the in-memory size model; frequent
supernodes get small ids by construction, so the on-disk form is usually
smaller than the 4-bytes-per-symbol accounting the paper uses.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Tuple

from repro.core.errors import CorruptDataError, TableError
from repro.core.store import CompressedPathStore
from repro.core.supernode_table import SupernodeTable
from repro.paths.encoding import VarintEncoding

_TABLE_MAGIC = b"RPST"
_STORE_MAGIC = b"RPCS"
_VERSION = 1
_VARINT = VarintEncoding()


def dumps_table(table: SupernodeTable) -> bytes:
    """Serialize a supernode table to bytes."""
    out = bytearray()
    out += _TABLE_MAGIC
    out += struct.pack("<BII", _VERSION, table.base_id, len(table))
    for sid in range(table.base_id, table.base_id + len(table)):
        subpath = table.expand(sid)
        out += _VARINT.encode([len(subpath)])
        out += _VARINT.encode(subpath)
    return bytes(out)


def loads_table(data: bytes) -> Tuple[SupernodeTable, int]:
    """Restore a table from bytes; returns ``(table, bytes_consumed)``."""
    if data[:4] != _TABLE_MAGIC:
        raise CorruptDataError("not a supernode-table blob (bad magic)")
    try:
        version, base_id, count = struct.unpack_from("<BII", data, 4)
    except struct.error as exc:
        raise CorruptDataError("truncated supernode-table header") from exc
    if version != _VERSION:
        raise CorruptDataError(f"unsupported supernode-table version {version}")
    pos = 4 + struct.calcsize("<BII")
    subpaths: List[Tuple[int, ...]] = []
    for _ in range(count):
        length, pos = _read_varint(data, pos)
        if length < 2:
            raise CorruptDataError(f"table entry of invalid length {length}")
        entry = []
        for _ in range(length):
            value, pos = _read_varint(data, pos)
            entry.append(value)
        subpaths.append(tuple(entry))
    try:
        table = SupernodeTable(base_id, subpaths)
    except TableError as exc:
        raise CorruptDataError(f"invalid table contents: {exc}") from exc
    return table, pos


def dumps_store(store: CompressedPathStore) -> bytes:
    """Serialize a compressed store (table + all tokens) to bytes."""
    payload = bytearray()
    payload += dumps_table(store.table)
    payload += struct.pack("<I", len(store))
    for token in store.tokens():
        payload += _VARINT.encode([len(token)])
        payload += _VARINT.encode(token)
    out = bytearray()
    out += _STORE_MAGIC
    out += struct.pack("<BI", _VERSION, zlib.crc32(bytes(payload)))
    out += payload
    return bytes(out)


def loads_store(data: bytes) -> CompressedPathStore:
    """Restore a compressed store from :func:`dumps_store` output.

    Validates the payload CRC32 before parsing anything, so corruption is
    reported as :class:`CorruptDataError` rather than surfacing as a wrong
    path later.
    """
    if data[:4] != _STORE_MAGIC:
        raise CorruptDataError("not a compressed-store blob (bad magic)")
    header_size = 4 + struct.calcsize("<BI")
    if len(data) < header_size:
        raise CorruptDataError("truncated compressed-store header")
    version, checksum = struct.unpack_from("<BI", data, 4)
    if version != _VERSION:
        raise CorruptDataError(f"unsupported compressed-store version {version}")
    if zlib.crc32(data[header_size:]) != checksum:
        raise CorruptDataError("checksum mismatch (archive is corrupt)")
    table, consumed = loads_table(data[header_size:])
    pos = header_size + consumed
    try:
        (count,) = struct.unpack_from("<I", data, pos)
    except struct.error as exc:
        raise CorruptDataError("truncated token count") from exc
    pos += 4
    store = CompressedPathStore(table)
    base = table.base_id
    limit = base + len(table)
    for _ in range(count):
        length, pos = _read_varint(data, pos)
        token = []
        for _ in range(length):
            value, pos = _read_varint(data, pos)
            if value >= limit:
                raise CorruptDataError(
                    f"token references supernode {value} beyond table (limit {limit})"
                )
            token.append(value)
        store._tokens.append(tuple(token))
    if pos != len(data):
        raise CorruptDataError("trailing garbage after last token")
    return store


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    """Decode one varint at *pos*; returns ``(value, new_pos)``."""
    value = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CorruptDataError("truncated varint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise CorruptDataError("varint too long (corrupt stream)")
