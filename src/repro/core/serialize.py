"""Binary serialization for supernode tables and compressed stores.

Persisting compressed archives is where the compression ratio becomes real
bytes on disk.  The formats here are deliberately simple, versioned and fully
validated on load (:class:`~repro.core.errors.CorruptDataError` on any
inconsistency):

* **Table blob** — magic ``RPST``, version, base id, entry count, then per
  entry a varint length and varint vertex ids.  Entry order encodes the id
  assignment, so no ids are written.
* **Store blob** — magic ``RPCS``, version, a CRC32 of everything that
  follows, the table blob, token count, then per token a varint length and
  varint symbols.  The checksum makes *any* single-bit corruption of an
  archive detectable (the fuzz tests flip every byte and expect
  :class:`CorruptDataError`).
* **Store file v2** — magic ``RPC2``: a fixed 64-byte header, the table
  blob, a fixed-width per-path offset index, then the varint token
  payload.  Designed for :class:`~repro.core.mapped.MappedPathStore`:
  open cost is the header alone (milliseconds on multi-GB archives), any
  path's tokens are an O(1) seek, and the table decodes lazily.  A header
  flag bit marks an optional trailing **order-table section** (magic
  ``RPOT``, own length + CRC32) persisting the
  :class:`~repro.paths.reorder.VertexOrder` the payload was written
  under; files without the flag are byte-identical to pre-flag files, so
  old readers of unordered stores are unaffected.  See
  ``docs/formats.md`` for the byte-level diagram.

Varints are used on disk regardless of the in-memory size model; frequent
supernodes get small ids by construction, so the on-disk form is usually
smaller than the 4-bytes-per-symbol accounting the paper uses.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Tuple

from repro.core.errors import (
    CorruptDataError,
    InvalidInputError,
    TableError,
    TruncatedDataError,
)
from repro.core.store import CompressedPathStore
from repro.core.supernode_table import SupernodeTable
from repro.paths.encoding import VarintEncoding

_TABLE_MAGIC = b"RPST"
_STORE_MAGIC = b"RPCS"
_VERSION = 1
_VARINT = VarintEncoding()

#: v2 single-file layout (see docs/formats.md): fixed header, table blob,
#: u64 offset index, varint token payload.
STORE_V2_MAGIC = b"RPC2"
STORE_V2_VERSION = 2
#: ``<`` magic(4) version(B) flags(B) pad(2x) path_count(Q) table_off(Q)
#: table_size(Q) index_off(Q) payload_off(Q) payload_size(Q) meta_crc(I)
#: header_crc(I).  The flags byte occupies what used to be the first pad
#: byte — pre-flag writers always emitted 0 there, so every unordered file
#: parses identically under both readings.
STORE_V2_HEADER = struct.Struct("<4sBB2xQQQQQQII")
STORE_V2_HEADER_SIZE = STORE_V2_HEADER.size  # 64 bytes

#: Header flag: an order-table section (``RPOT``) follows the payload.
STORE_V2_FLAG_ORDER = 0x01
_STORE_V2_KNOWN_FLAGS = STORE_V2_FLAG_ORDER

#: Order-table section framing: magic(4) body_len(I) body_crc(I) body.
ORDER_SECTION_MAGIC = b"RPOT"
_ORDER_SECTION_PREFIX = struct.Struct("<4sII")


def dumps_table(table: SupernodeTable) -> bytes:
    """Serialize a supernode table to bytes."""
    out = bytearray()
    out += _TABLE_MAGIC
    out += struct.pack("<BII", _VERSION, table.base_id, len(table))
    for sid in range(table.base_id, table.base_id + len(table)):
        subpath = table.expand(sid)
        out += _VARINT.encode([len(subpath)])
        out += _VARINT.encode(subpath)
    return bytes(out)


def loads_table(data: bytes) -> Tuple[SupernodeTable, int]:
    """Restore a table from bytes; returns ``(table, bytes_consumed)``."""
    if data[:4] != _TABLE_MAGIC:
        raise CorruptDataError("not a supernode-table blob (bad magic)")
    try:
        version, base_id, count = struct.unpack_from("<BII", data, 4)
    except struct.error as exc:
        raise CorruptDataError("truncated supernode-table header") from exc
    if version != _VERSION:
        raise CorruptDataError(f"unsupported supernode-table version {version}")
    pos = 4 + struct.calcsize("<BII")
    subpaths: List[Tuple[int, ...]] = []
    for _ in range(count):
        length, pos = _read_varint(data, pos)
        if length < 2:
            raise CorruptDataError(f"table entry of invalid length {length}")
        entry = []
        for _ in range(length):
            value, pos = _read_varint(data, pos)
            entry.append(value)
        subpaths.append(tuple(entry))
    try:
        table = SupernodeTable(base_id, subpaths)
    except TableError as exc:
        raise CorruptDataError(f"invalid table contents: {exc}") from exc
    return table, pos


def dumps_store(store: CompressedPathStore) -> bytes:
    """Serialize a compressed store (table + all tokens) to bytes.

    The v1 blob has no order-table section, so a store holding a vertex
    reordering cannot round-trip through it — the reordered payload would
    silently decode to wrong ids.  Such stores must use the v2 layout
    (:func:`dumps_store_v2`); asking for v1 raises eagerly.
    """
    if getattr(store, "order", None) is not None:
        raise InvalidInputError(
            "v1 store blobs cannot persist a vertex order; "
            "write reordered stores with dumps_store_v2"
        )
    payload = bytearray()
    payload += dumps_table(store.table)
    payload += struct.pack("<I", len(store))
    for token in store.tokens():
        payload += _VARINT.encode([len(token)])
        payload += _VARINT.encode(token)
    out = bytearray()
    out += _STORE_MAGIC
    out += struct.pack("<BI", _VERSION, zlib.crc32(bytes(payload)))
    out += payload
    return bytes(out)


def loads_store(data: bytes) -> CompressedPathStore:
    """Restore a compressed store from :func:`dumps_store` output.

    Validates the payload CRC32 before parsing anything, so corruption is
    reported as :class:`CorruptDataError` rather than surfacing as a wrong
    path later.
    """
    if data[:4] != _STORE_MAGIC:
        raise CorruptDataError("not a compressed-store blob (bad magic)")
    header_size = 4 + struct.calcsize("<BI")
    if len(data) < header_size:
        raise CorruptDataError("truncated compressed-store header")
    version, checksum = struct.unpack_from("<BI", data, 4)
    if version != _VERSION:
        raise CorruptDataError(f"unsupported compressed-store version {version}")
    if zlib.crc32(data[header_size:]) != checksum:
        raise CorruptDataError("checksum mismatch (archive is corrupt)")
    table, consumed = loads_table(data[header_size:])
    pos = header_size + consumed
    try:
        (count,) = struct.unpack_from("<I", data, pos)
    except struct.error as exc:
        raise CorruptDataError("truncated token count") from exc
    pos += 4
    store = CompressedPathStore(table)
    base = table.base_id
    limit = base + len(table)
    for _ in range(count):
        length, pos = _read_varint(data, pos)
        token = []
        for _ in range(length):
            value, pos = _read_varint(data, pos)
            if value >= limit:
                raise CorruptDataError(
                    f"token references supernode {value} beyond table (limit {limit})"
                )
            token.append(value)
        store._tokens.append(tuple(token))
    if pos != len(data):
        raise CorruptDataError("trailing garbage after last token")
    return store


# -- store format v2 (mmap-friendly single file) ---------------------------------


class StoreV2Header:
    """Decoded v2 header fields (section fenceposts into the file)."""

    __slots__ = (
        "path_count", "table_offset", "table_size",
        "index_offset", "payload_offset", "payload_size", "meta_crc",
        "flags", "order_body_size", "order_body_crc",
    )

    def __init__(self, path_count, table_offset, table_size,
                 index_offset, payload_offset, payload_size, meta_crc,
                 flags=0, order_body_size=0, order_body_crc=0):
        self.path_count = path_count
        self.table_offset = table_offset
        self.table_size = table_size
        self.index_offset = index_offset
        self.payload_offset = payload_offset
        self.payload_size = payload_size
        self.meta_crc = meta_crc
        self.flags = flags
        self.order_body_size = order_body_size
        self.order_body_crc = order_body_crc

    @property
    def index_size(self) -> int:
        return 8 * (self.path_count + 1)

    @property
    def total_size(self) -> int:
        """End of the payload — also where the order section starts, if any."""
        return self.payload_offset + self.payload_size

    @property
    def has_order(self) -> bool:
        """Whether an order-table section follows the payload."""
        return bool(self.flags & STORE_V2_FLAG_ORDER)

    @property
    def order_body_offset(self) -> int:
        """Byte offset of the order-table *body* (past the section prefix)."""
        return self.total_size + _ORDER_SECTION_PREFIX.size

    @property
    def file_size(self) -> int:
        """Total file size including any order-table section."""
        if not self.has_order:
            return self.total_size
        return self.order_body_offset + self.order_body_size


def dumps_store_v2(store: CompressedPathStore) -> bytes:
    """Serialize *store* to the v2 single-file layout (see docs/formats.md).

    Sections: 64-byte header, RPST table blob, ``paths + 1`` little-endian
    u64 payload offsets (relative to the payload section), then each
    path's symbols as bare varints (the offset index delimits paths, so no
    per-token length prefix is written).  The header CRC covers the header;
    ``meta_crc`` covers table + index, so all *structural* metadata is
    checksummed without forcing a full-payload read at open time.  A store
    carrying a vertex order additionally gets the flagged ``RPOT``
    trailing section so readers can invert ids on retrieval.
    """
    return dumps_store_v2_tokens(
        store.table, store.tokens(), order=getattr(store, "order", None)
    )


def dumps_store_v2_tokens(table: SupernodeTable, tokens, order=None) -> bytes:
    """The v2 blob for a bare ``(table, tokens)`` pair.

    Byte-identical to :func:`dumps_store_v2` over a store holding the same
    table and tokens.  This is the writer the sharded build path uses: a
    shard's tokens come back from a worker process as plain tuples and
    wrapping them in a throwaway :class:`CompressedPathStore` would rebuild
    the matcher (hash table over every table entry) once per shard for no
    reason.

    *order*, when given, is the :class:`~repro.paths.reorder.VertexOrder`
    the tokens were compressed under (tokens are already in new-id space);
    it is persisted as the trailing order-table section and the header
    flag is set.  ``None`` produces a byte-identical blob to the pre-flag
    format.
    """
    table_blob = dumps_table(table)
    payload = bytearray()
    index = bytearray(struct.pack("<Q", 0))
    count = 0
    for token in tokens:
        payload += _VARINT.encode(token)
        index += struct.pack("<Q", len(payload))
        count += 1
    flags = STORE_V2_FLAG_ORDER if order is not None else 0
    table_offset = STORE_V2_HEADER_SIZE
    index_offset = table_offset + len(table_blob)
    payload_offset = index_offset + len(index)
    meta_crc = zlib.crc32(bytes(table_blob + bytes(index)))
    header = STORE_V2_HEADER.pack(
        STORE_V2_MAGIC, STORE_V2_VERSION, flags, count, table_offset,
        len(table_blob), index_offset, payload_offset, len(payload),
        meta_crc, 0,
    )
    header_crc = zlib.crc32(header[:-4])
    header = header[:-4] + struct.pack("<I", header_crc)
    blob = header + table_blob + bytes(index) + bytes(payload)
    if order is not None:
        blob += dumps_order_section(order)
    return blob


def dumps_order_section(order) -> bytes:
    """Frame a :class:`~repro.paths.reorder.VertexOrder` as an RPOT section.

    Layout: magic ``RPOT``, u32 body length, u32 CRC32 of the body, then
    the body (:meth:`VertexOrder.to_bytes`).  The section is self-delimited
    so the header only needs one flag bit to announce it.
    """
    body = order.to_bytes()
    return _ORDER_SECTION_PREFIX.pack(
        ORDER_SECTION_MAGIC, len(body), zlib.crc32(body)
    ) + body


def loads_order_section(data: bytes):
    """Decode a standalone RPOT section back into its ``VertexOrder``.

    The exact inverse of :func:`dumps_order_section`: validates the magic,
    the declared body length and the body CRC32, then decodes the body.
    Raises :class:`CorruptDataError` / :class:`TruncatedDataError` on a
    damaged frame.  Readers of whole v2 files use
    :func:`parse_order_section` instead, which locates the section via the
    header; this function round-trips the framed bytes on their own.
    """
    if len(data) < _ORDER_SECTION_PREFIX.size:
        raise TruncatedDataError(
            f"order-table section needs at least {_ORDER_SECTION_PREFIX.size}"
            f" bytes, got {len(data)}"
        )
    magic, body_size, body_crc = _ORDER_SECTION_PREFIX.unpack_from(data, 0)
    if magic != ORDER_SECTION_MAGIC:
        raise CorruptDataError(
            f"bad order-table magic {magic!r} (expected {ORDER_SECTION_MAGIC!r})"
        )
    body = bytes(data[_ORDER_SECTION_PREFIX.size:_ORDER_SECTION_PREFIX.size
                      + body_size])
    if len(body) != body_size:
        raise TruncatedDataError(
            f"order-table body declares {body_size} bytes but only"
            f" {len(body)} are present"
        )
    if len(data) != _ORDER_SECTION_PREFIX.size + body_size:
        raise CorruptDataError(
            f"{len(data) - _ORDER_SECTION_PREFIX.size - body_size}"
            " trailing bytes after the order-table body"
        )
    if zlib.crc32(body) != body_crc:
        raise CorruptDataError("order-table checksum mismatch")
    from repro.paths.reorder import VertexOrder

    return VertexOrder.from_bytes(body)


def append_order_section(blob: bytes, order) -> bytes:
    """Stamp a finished (unordered) v2 *blob* with *order*'s section.

    Sets the header flag, recomputes the header CRC, and appends the
    framed section — the sharded build path uses this so worker processes
    can keep producing plain blobs while the coordinator applies the
    store-wide order once per shard.  ``order=None`` returns *blob*
    unchanged.
    """
    if order is None:
        return blob
    header = parse_store_v2_header(blob)
    if header.has_order:
        raise InvalidInputError("v2 blob already carries an order-table section")
    flagged = bytearray(blob[:STORE_V2_HEADER_SIZE])
    flagged[5] |= STORE_V2_FLAG_ORDER
    header_crc = zlib.crc32(bytes(flagged[:-4]))
    flagged[-4:] = struct.pack("<I", header_crc)
    return bytes(flagged) + blob[STORE_V2_HEADER_SIZE:] + dumps_order_section(order)


def parse_order_section(data, header: StoreV2Header):
    """Decode the order-table section *header* declares inside *data*.

    Returns the :class:`~repro.paths.reorder.VertexOrder`, or ``None``
    when the header carries no order flag.  The body CRC is verified here
    — readers call this lazily on first inversion, keeping open cost at
    the 64-byte header even for ordered files.
    """
    if not header.has_order:
        return None
    from repro.paths.reorder import VertexOrder

    body = bytes(data[header.order_body_offset:header.order_body_offset
                      + header.order_body_size])
    if len(body) != header.order_body_size:
        raise TruncatedDataError(
            f"order-table body truncated at byte offset {header.order_body_offset}"
        )
    if zlib.crc32(body) != header.order_body_crc:
        raise CorruptDataError("order-table checksum mismatch (file is corrupt)")
    return VertexOrder.from_bytes(body)


def loads_store_v2(data: bytes):
    """Open a v2 blob for random access (lazy table, zero-copy tokens).

    Returns a :class:`~repro.core.mapped.MappedPathStore` over *data*; use
    :func:`load_store_file` to map a file from disk instead of holding the
    bytes in memory.  Unlike :func:`loads_store` nothing beyond the header
    is parsed here — the table and tokens decode on first access.
    """
    from repro.core.mapped import MappedPathStore

    return MappedPathStore(data)


def loads_store_v2_tokens(data: bytes) -> Tuple[SupernodeTable, List[Tuple[int, ...]]]:
    """Parse a v2 blob back into the bare ``(table, tokens)`` pair.

    The eager inverse of :func:`dumps_store_v2_tokens` — round-trips every
    blob that function produces.  Prefer :func:`loads_store_v2` when random
    access (not the full token list) is the goal.
    """
    store = loads_store_v2(data)
    return store.table, store.tokens()


def parse_store_v2_header(data) -> StoreV2Header:
    """Validate and decode a v2 header from the first 64 bytes of *data*.

    Checks: magic, version, header CRC, section ordering, and that the
    declared sections exactly tile the buffer — so *any* truncation is
    caught here, before a single token is touched.
    """
    size = len(data)
    if size < STORE_V2_HEADER_SIZE:
        raise TruncatedDataError(
            f"v2 store header needs {STORE_V2_HEADER_SIZE} bytes, "
            f"buffer has {size}"
        )
    header = bytes(data[:STORE_V2_HEADER_SIZE])
    (magic, version, flags, path_count, table_offset, table_size, index_offset,
     payload_offset, payload_size, meta_crc, header_crc) = STORE_V2_HEADER.unpack(header)
    if magic != STORE_V2_MAGIC:
        raise CorruptDataError("not a v2 store file (bad magic)")
    if version != STORE_V2_VERSION:
        raise CorruptDataError(f"unsupported v2 store version {version}")
    if zlib.crc32(header[:-4]) != header_crc:
        raise CorruptDataError("v2 header checksum mismatch (file is corrupt)")
    if flags & ~_STORE_V2_KNOWN_FLAGS:
        raise CorruptDataError(
            f"v2 store sets unknown flag bits 0x{flags & ~_STORE_V2_KNOWN_FLAGS:02x}"
        )
    parsed = StoreV2Header(
        path_count, table_offset, table_size, index_offset,
        payload_offset, payload_size, meta_crc, flags=flags,
    )
    if table_offset != STORE_V2_HEADER_SIZE:
        raise CorruptDataError(f"v2 table section at unexpected offset {table_offset}")
    if index_offset != table_offset + table_size:
        raise CorruptDataError("v2 index section does not follow the table")
    if payload_offset != index_offset + parsed.index_size:
        raise CorruptDataError("v2 payload section does not follow the index")
    if not parsed.has_order:
        if parsed.total_size != size:
            raise TruncatedDataError(
                f"v2 store declares {parsed.total_size} bytes but buffer has "
                f"{size} (truncated or padded at byte offset {min(parsed.total_size, size)})"
            )
        return parsed
    # Order flag set: the RPOT section must exactly tile the remainder.
    # Its magic and declared length are validated eagerly here (cheap —
    # 12 bytes); the body CRC is deferred to parse_order_section so open
    # cost stays at the header even for ordered files.
    prefix_end = parsed.total_size + _ORDER_SECTION_PREFIX.size
    if size < prefix_end:
        raise TruncatedDataError(
            f"v2 store declares an order-table section at byte offset "
            f"{parsed.total_size} but the buffer ends at {size}"
        )
    order_magic, body_size, body_crc = _ORDER_SECTION_PREFIX.unpack_from(
        bytes(data[parsed.total_size:prefix_end])
    )
    if order_magic != ORDER_SECTION_MAGIC:
        raise CorruptDataError("order-table section has a bad magic")
    parsed.order_body_size = body_size
    parsed.order_body_crc = body_crc
    if parsed.file_size != size:
        raise TruncatedDataError(
            f"v2 store declares {parsed.file_size} bytes (payload + order "
            f"table) but buffer has {size}"
        )
    return parsed


def dump_store_file(store: CompressedPathStore, path: str) -> int:
    """Write *store* to *path* in the v2 layout; returns bytes written.

    The file is the native format of
    :class:`~repro.core.mapped.MappedPathStore`: reopen it with
    :func:`load_store_file` for O(1)-seek retrievals without a full parse.
    """
    blob = dumps_store_v2(store)
    with open(path, "wb") as fh:
        fh.write(blob)
    return len(blob)


def load_store_file(path: str):
    """Memory-map a v2 store file written by :func:`dump_store_file`.

    Returns a :class:`~repro.core.mapped.MappedPathStore`; opening costs
    only the 64-byte header validation regardless of archive size.
    """
    from repro.core.mapped import MappedPathStore

    return MappedPathStore.open(path)


def _read_varint(data, pos: int) -> Tuple[int, int]:
    """Decode one varint at *pos*; returns ``(value, new_pos)``.

    Bounds are validated on every byte: a read past the end *or before the
    start* of the buffer raises :class:`TruncatedDataError` carrying the
    byte offset (a negative *pos* must never silently wrap to the buffer's
    tail the way raw ``data[pos]`` indexing would).
    """
    size = len(data)
    if pos < 0 or pos > size:
        raise TruncatedDataError(
            f"varint read at byte offset {pos} outside buffer of {size} bytes"
        )
    value = 0
    shift = 0
    start = pos
    while True:
        if pos >= size:
            raise TruncatedDataError(
                f"truncated varint at byte offset {start} "
                f"(buffer ends at {size})"
            )
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise CorruptDataError(
                f"varint too long at byte offset {start} (corrupt stream)"
            )
