"""The supernode (lookup) table ``ST`` and its inverse ``ST^-1``.

The compression rule ``R`` of the paper is a table mapping *supernode ids* to
the frequent subpaths they stand for.  Compression replaces subpaths by
supernode ids (Algorithm 2); decompression expands ids back (Algorithm 1).

Design decisions:

* **Id space.**  Supernode ids are allocated contiguously starting at
  ``base_id``, which must be strictly greater than every vertex id the table
  will ever meet.  A compressed path is then an ordinary integer sequence in
  which any value ``>= base_id`` is a supernode — no escape markers needed,
  and the stream stays "a path over an extended vertex set", preserving the
  minability the paper wants (Section II-C, drawback (2) of Dlz4).
* **Bidirectional maps.**  ``ST`` (id → subpath) and ``ST^-1`` (subpath → id)
  are kept in lock-step; the class enforces the bijection.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.core.errors import TableError

Subpath = Tuple[int, ...]


class SupernodeTable:
    """A bijective map between supernode ids and frequent subpaths.

    :param base_id: first supernode id; every vertex id in every subpath must
        be smaller than this.
    :param subpaths: the subpaths to register, assigned ids ``base_id``,
        ``base_id + 1``, ... in iteration order.
    """

    def __init__(self, base_id: int, subpaths: Iterable[Sequence[int]] = ()) -> None:
        if base_id < 1:
            raise TableError("base_id must be >= 1")
        self.base_id = base_id
        self._by_id: Dict[int, Subpath] = {}
        self._by_subpath: Dict[Subpath, int] = {}
        self._max_subpath_len = 0
        self._expansion_cache = None
        for sp in subpaths:
            self.add(sp)

    # -- mutation -------------------------------------------------------------

    def add(self, subpath: Sequence[int]) -> int:
        """Register *subpath* and return its supernode id.

        Re-adding an existing subpath returns its existing id.  Subpaths must
        have at least two vertices (a single vertex gains nothing) and all
        vertex ids must lie below ``base_id``.
        """
        sp = tuple(subpath)
        if len(sp) < 2:
            raise TableError(f"supernode subpaths need >= 2 vertices, got {sp!r}")
        existing = self._by_subpath.get(sp)
        if existing is not None:
            return existing
        for v in sp:
            if v < 0:
                raise TableError(f"negative vertex id {v} in subpath {sp!r}")
            if v >= self.base_id:
                raise TableError(
                    f"vertex id {v} in subpath {sp!r} collides with the supernode "
                    f"id space (base_id={self.base_id})"
                )
        sid = self.base_id + len(self._by_id)
        self._by_id[sid] = sp
        self._by_subpath[sp] = sid
        if len(sp) > self._max_subpath_len:
            self._max_subpath_len = len(sp)
        self._expansion_cache = None  # expansions memoized per table state
        return sid

    # -- lookups ---------------------------------------------------------------

    def is_supernode(self, symbol: int) -> bool:
        """``True`` when *symbol* denotes a supernode rather than a vertex."""
        return symbol >= self.base_id

    def expand(self, supernode_id: int) -> Subpath:
        """``ST[id]``: the subpath a supernode stands for."""
        try:
            return self._by_id[supernode_id]
        except KeyError:
            raise TableError(f"unknown supernode id {supernode_id}") from None

    def id_of(self, subpath: Sequence[int]) -> int:
        """``ST^-1[subpath]``: the supernode id for *subpath* (KeyError-free).

        Raises :class:`TableError` when absent; use :meth:`get_id` to probe.
        """
        sid = self._by_subpath.get(tuple(subpath))
        if sid is None:
            raise TableError(f"subpath {tuple(subpath)!r} is not in the table")
        return sid

    def get_id(self, subpath: Sequence[int]) -> int | None:
        """Like :meth:`id_of` but returns ``None`` when absent."""
        return self._by_subpath.get(tuple(subpath))

    def __contains__(self, subpath: Sequence[int]) -> bool:
        return tuple(subpath) in self._by_subpath

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Tuple[int, Subpath]]:
        return iter(self._by_id.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SupernodeTable):
            return NotImplemented
        return self.base_id == other.base_id and self._by_id == other._by_id

    def __repr__(self) -> str:
        return (
            f"SupernodeTable(base_id={self.base_id}, entries={len(self)}, "
            f"max_len={self._max_subpath_len})"
        )

    # -- derived data ------------------------------------------------------------

    def expansions(self):
        """The memoized :class:`~repro.core.expansion.ExpansionCache`.

        Built on first use (every supernode flattened to its full vertex
        tuple, iteratively) and reused until the table is mutated; the
        decode paths — :func:`~repro.core.compressor.decompress_path`, the
        batch kernel, slice retrieval — all read from this one snapshot.
        Cache traffic is published as ``table.expansion_cache.*`` when the
        obs layer is active.
        """
        from repro.core.expansion import ExpansionCache
        from repro.obs import catalog
        from repro.obs.runtime import get_active

        cache = self._expansion_cache
        obs = get_active()
        if cache is None:
            cache = ExpansionCache.from_table(self)
            self._expansion_cache = cache
            if obs is not None:
                obs.registry.counter(catalog.TABLE_EXPANSION_CACHE_MISSES).inc()
                obs.registry.set_gauge(
                    catalog.TABLE_EXPANSION_CACHE_ENTRIES, len(cache)
                )
        elif obs is not None:
            obs.registry.counter(catalog.TABLE_EXPANSION_CACHE_HITS).inc()
        return cache

    def invalidate_expansions(self) -> None:
        """Drop the memoized expansion cache (rebuilt lazily on next use).

        :meth:`add` already invalidates on mutation; this public hook exists
        for callers that need to *measure* the cold path — the ablation
        harness's ``expansion_cache=off`` cells and the smoke benchmark's
        cold-vs-warm decode rows — without reaching into the private slot.
        """
        self._expansion_cache = None

    @property
    def max_subpath_length(self) -> int:
        """Length of the longest registered subpath (the effective δ)."""
        return self._max_subpath_len

    @property
    def subpaths(self) -> List[Subpath]:
        """All registered subpaths in id order."""
        return [self._by_id[sid] for sid in sorted(self._by_id)]

    def inverted(self) -> Mapping[Subpath, int]:
        """A read-only view of ``ST^-1`` (subpath → id)."""
        return dict(self._by_subpath)

    def rule_symbol_count(self) -> int:
        """Number of integer symbols needed to write the rule ``R`` down.

        Each entry costs its subpath length plus one length marker; ids are
        implicit (contiguous).  Used by the size model in
        :mod:`repro.analysis.sizing`.
        """
        return sum(len(sp) + 1 for sp in self._by_id.values())

    def validate(self) -> None:
        """Check internal invariants; raises :class:`TableError` on breakage.

        Invariants: the two maps are mutually inverse, ids are contiguous
        from ``base_id``, and no subpath contains an id ≥ ``base_id``.
        """
        if len(self._by_id) != len(self._by_subpath):
            raise TableError("ST and ST^-1 sizes diverge")
        expected_ids = set(range(self.base_id, self.base_id + len(self._by_id)))
        if set(self._by_id) != expected_ids:
            raise TableError("supernode ids are not contiguous from base_id")
        for sid, sp in self._by_id.items():
            if self._by_subpath.get(sp) != sid:
                raise TableError(f"inverse lookup broken for supernode {sid}")
            if any(v >= self.base_id for v in sp):
                raise TableError(f"subpath {sp!r} intrudes into the supernode id space")
