"""Candidate sets and longest-prefix matching (Algorithm 6).

Both table construction (Algorithm 5) and compression (Algorithm 2) repeatedly
ask one question: *starting at position ``pos`` of path ``P``, what is the
longest sequence, no longer than ``cap``, that is present in a given set of
candidate subpaths?*  This module defines the interface for that question and
its baseline answer, a flat hash table probed from the longest length down
(exactly Algorithm 6 of the paper).

Alternative backends live in :mod:`repro.core.multilevel` (the two-level hash
of Algorithm 7), :mod:`repro.core.trie` (the prefix-tree optimization of
Section IV-D) and :mod:`repro.core.rollhash` (a rolling-hash scheme probing
each candidate length in O(1)).  All backends return identical match lengths
— they differ only in probe cost — which the test suite checks
property-based.

Weights: a candidate set also tracks a non-negative integer weight per
candidate (the *practical frequency* counter of Section IV-A).  Weight
bookkeeping is driven by the builder; matching itself never mutates weights,
keeping (de)compression side-effect free.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigError, InvalidInputError

Subpath = Tuple[int, ...]


class CandidateSet(ABC):
    """A weighted set of candidate subpaths supporting longest-prefix probes.

    Candidates are vertex sequences of length ≥ 2 (a single vertex never
    benefits from a table entry).  Implementations must keep
    :meth:`longest_match` consistent with the set contents: it returns the
    length of the longest candidate that is a prefix of
    ``path[pos:pos + cap]``, or ``1`` when no candidate matches (the paper's
    convention: an unmatched position contributes the single vertex).

    Every backend carries a :class:`~repro.core.probestats.ProbeStats` as
    ``self.stats`` — the §IV-C work counters that :meth:`longest_match`
    implementations must keep current in their own unit of work.  Reset it
    with ``stats.reset()`` between measurement batches; the
    :mod:`repro.obs` layer consumes it via snapshot/delta, never by
    replacing the object.
    """

    def __init__(self) -> None:
        from repro.core.probestats import ProbeStats

        #: Work counters for the §IV-C cost analysis (see
        #: :mod:`repro.core.probestats`).
        self.stats = ProbeStats()

    @abstractmethod
    def add(self, seq: Sequence[int], weight: int = 1) -> None:
        """Insert *seq* with *weight*, or add *weight* to an existing entry."""

    @abstractmethod
    def weight(self, seq: Sequence[int]) -> Optional[int]:
        """Current weight of *seq*, or ``None`` when absent."""

    @abstractmethod
    def discard(self, seq: Sequence[int]) -> None:
        """Remove *seq* if present (no-op otherwise)."""

    @abstractmethod
    def longest_match(self, path: Sequence[int], pos: int, cap: int) -> int:
        """Length of the longest candidate prefixing ``path[pos:pos+cap]``.

        Returns at least 1 (the bare vertex) and never more than
        ``min(cap, len(path) - pos)``.
        """

    @abstractmethod
    def items(self) -> Iterator[Tuple[Subpath, int]]:
        """Iterate ``(candidate, weight)`` pairs in unspecified order."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of candidates currently stored."""

    def __contains__(self, seq: Sequence[int]) -> bool:
        return self.weight(seq) is not None

    # -- shared bookkeeping (concrete) -----------------------------------------

    def increment(self, seq: Sequence[int], by: int = 1) -> None:
        """Add *by* to the weight of an existing candidate or insert it."""
        self.add(seq, by)

    def reset_weights(self) -> None:
        """Zero every weight (start of a construction iteration)."""
        for seq, _ in list(self.items()):
            self.set_weight(seq, 0)

    def set_weight(self, seq: Sequence[int], weight: int) -> None:
        """Force the weight of *seq* to *weight* (inserting if needed)."""
        current = self.weight(seq)
        if current is None:
            self.add(tuple(seq), weight)
        else:
            self.add(tuple(seq), weight - current)

    def top_candidates(self, count: int) -> List[Tuple[Subpath, int]]:
        """The *count* best candidates under the paper's ranking.

        Ranking is by practical weighted frequency ``weight × length``;
        ties prefer the longer candidate *unless* its weight is 1
        (Example 1's stated rule), then higher weight, then lexicographic
        order for determinism.
        """
        def key(entry: Tuple[Subpath, int]):
            seq, w = entry
            gain = w * len(seq)
            tie_len = len(seq) if w > 1 else 0
            return (-gain, -tie_len, -w, seq)

        ranked = sorted(self.items(), key=key)
        return ranked[:count]

    def prune_to_top(self, count: int) -> int:
        """Keep only the top-*count* candidates; return how many were dropped.

        This is line 17 of Algorithm 5 ("keep top-λ items in H").
        """
        if len(self) <= count:
            return 0
        keep = {seq for seq, _ in self.top_candidates(count)}
        dropped = 0
        for seq, _ in list(self.items()):
            if seq not in keep:
                self.discard(seq)
                dropped += 1
        return dropped


class HashCandidates(CandidateSet):
    """Flat hash-table candidate set — the Algorithm 6 baseline.

    ``longest_match`` probes lengths from the cap downward, hashing a fresh
    tuple per probe: the ``O(δ²)`` behaviour Example 3 illustrates.
    """

    def __init__(self) -> None:
        super().__init__()
        self._weights: Dict[Subpath, int] = {}
        self._max_len = 0

    def add(self, seq: Sequence[int], weight: int = 1) -> None:
        sp = tuple(seq)
        if len(sp) < 2:
            raise InvalidInputError(f"candidates need >= 2 vertices, got {sp!r}")
        self._weights[sp] = self._weights.get(sp, 0) + weight
        if len(sp) > self._max_len:
            self._max_len = len(sp)

    def weight(self, seq: Sequence[int]) -> Optional[int]:
        return self._weights.get(tuple(seq))

    def discard(self, seq: Sequence[int]) -> None:
        self._weights.pop(tuple(seq), None)

    def longest_match(self, path: Sequence[int], pos: int, cap: int) -> int:
        limit = min(cap, self._max_len, len(path) - pos)
        weights = self._weights
        stats = self.stats
        for length in range(limit, 1, -1):
            stats.probes += 1
            stats.hashed_vertices += length
            if tuple(path[pos : pos + length]) in weights:
                return length
        return 1

    def items(self) -> Iterator[Tuple[Subpath, int]]:
        return iter(list(self._weights.items()))

    def __len__(self) -> int:
        return len(self._weights)

    def __repr__(self) -> str:
        return f"HashCandidates(entries={len(self._weights)})"


def static_matcher_from_table(
    table, backend: str = "hash", hash_bits: int = 64
) -> CandidateSet:
    """Build a read-only-use matcher over a finished supernode table.

    The compressor (Algorithm 2) needs longest-prefix probes against the
    *static* inverted table; reusing the candidate-set backends keeps one
    matching implementation for both phases.  Weights are irrelevant here.

    :param table: a :class:`~repro.core.supernode_table.SupernodeTable`.
    :param backend: ``"hash"``, ``"multilevel"``, ``"trie"`` or ``"rolling"``.
    :param hash_bits: stored-hash width for the ``rolling`` backend.
    """
    matcher = make_candidate_set(backend, hash_bits=hash_bits)
    for _, subpath in table:
        matcher.add(subpath, 0)
    return matcher


def make_candidate_set(
    backend: str, alpha: int = 5, hash_bits: int = 64
) -> CandidateSet:
    """Factory for candidate-set backends by name.

    :param backend: ``"hash"``, ``"multilevel"``, ``"trie"`` or ``"rolling"``.
    :param alpha: primary-key length for the multilevel backend (ignored by
        the others).
    :param hash_bits: stored-hash width for the rolling backend (ignored by
        the others); output is identical at any width, only the
        collision-verify cost changes.
    """
    if backend == "hash":
        return HashCandidates()
    if backend == "multilevel":
        from repro.core.multilevel import MultiLevelCandidates

        return MultiLevelCandidates(alpha=alpha)
    if backend == "trie":
        from repro.core.trie import TrieCandidates

        return TrieCandidates()
    if backend == "rolling":
        from repro.core.rollhash import RollingHashCandidates

        return RollingHashCandidates(hash_bits=hash_bits)
    raise ConfigError(f"unknown matcher backend {backend!r}")
