"""Archive validation — the operational health check.

Before trusting a multi-gigabyte compressed archive (or after moving one
between machines), operators want a cheap integrity pass stronger than the
CRC alone: structural invariants plus a sampled round-trip.
:func:`validate_store` runs:

1. table invariants (bijection, contiguous ids, id-space separation);
2. token range checks (every symbol resolvable, no literal intruding into
   the supernode space);
3. a sampled decompress-and-recompress round-trip — each sampled path must
   re-compress to its stored token, proving the table still matches the
   data it encoded;
4. dead-entry accounting (informational).

Exposed on the CLI as ``python -m repro verify ARCHIVE``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.core.compressor import compress_path, decompress_path
from repro.core.errors import TableError
from repro.core.matcher import static_matcher_from_table
from repro.core.store import CompressedPathStore


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_store`."""

    paths: int = 0
    table_entries: int = 0
    sampled: int = 0
    dead_entries: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """``True`` when no error was found."""
        return not self.errors

    def summary(self) -> str:
        status = "OK" if self.ok else f"FAILED ({len(self.errors)} error(s))"
        return (
            f"{status}: {self.paths:,} paths, {self.table_entries} table "
            f"entries ({self.dead_entries} unused), {self.sampled} paths "
            f"round-trip checked"
        )


def validate_store(
    store: CompressedPathStore,
    sample: int = 256,
    seed: int = 0,
) -> ValidationReport:
    """Validate *store*; returns a report rather than raising.

    :param sample: how many paths get the full round-trip check (all of
        them when the store is smaller).
    """
    report = ValidationReport(paths=len(store), table_entries=len(store.table))

    # 1. Table invariants.
    try:
        store.table.validate()
    except TableError as exc:
        report.errors.append(f"table: {exc}")

    # 2. Token ranges.
    base = store.table.base_id
    limit = base + len(store.table)
    used = set()
    for path_id, token in enumerate(store.tokens()):
        for symbol in token:
            if symbol >= limit:
                report.errors.append(
                    f"path {path_id}: symbol {symbol} beyond table (limit {limit})"
                )
                break
            if symbol >= base:
                used.add(symbol)
    report.dead_entries = len(store.table) - len(used)

    # 3. Sampled round-trip: decompress, then recompress and compare.
    if len(store) and not report.errors:
        rng = random.Random(seed)
        count = min(sample, len(store))
        ids = rng.sample(range(len(store)), count)
        matcher = static_matcher_from_table(store.table)
        for path_id in ids:
            token = store.token(path_id)
            try:
                path = decompress_path(token, store.table)
                again = compress_path(path, store.table, matcher)
            except TableError as exc:
                report.errors.append(f"path {path_id}: {exc}")
                continue
            if again != tuple(token):
                report.errors.append(
                    f"path {path_id}: token does not re-compress to itself "
                    "(table/data mismatch)"
                )
        report.sampled = count

    return report
