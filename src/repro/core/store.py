"""A compressed path store with per-path random access.

The applications that motivate the paper (Cases 1 and 2 of the introduction)
never decompress the whole archive: they pull out *some* paths — those
through an anomalous server, those between a client/terminal pair — and leave
the rest compressed.  :class:`CompressedPathStore` is that storage layer:

* paths are compressed individually at ingest and held as integer tokens;
* :meth:`retrieve` decompresses exactly one path (``O(|P|)``, Lemma 1);
* :meth:`retrieve_many` / :meth:`retrieve_fraction` support the partial
  decompression measurements of Fig. 6b;
* byte accounting (:meth:`compressed_size_bytes`, :meth:`raw_size_bytes`)
  follows the paper's ``CR = |P| / (|P'| + |R|)``.

The store is append-only; path ids are dense ints in insertion order.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.compressor import decompress_path
from repro.core.errors import InvalidInputError, PathIdError
from repro.core.matcher import CandidateSet, static_matcher_from_table
from repro.core.supernode_table import SupernodeTable
from repro.obs import catalog
from repro.obs.runtime import get_active
from repro.paths.encoding import DEFAULT_ENCODING, Encoding


class CompressedPathStore:
    """Compressed, individually-retrievable storage for a path set.

    :param table: the supernode table paths are compressed against.
    :param matcher_backend: longest-match backend for ingestion (``"hash"``,
        ``"multilevel"``, ``"trie"`` or ``"rolling"``); output is identical
        across backends, only probe cost differs.
    :param order: optional :class:`~repro.paths.reorder.VertexOrder` the
        table was built under.  With an order, ingestion relabels incoming
        paths (original → new ids) and every retrieval surface inverts, so
        callers always speak original ids; ``token()`` stays raw (new-id
        space), matching what the table expands to.

    Build one with :meth:`from_dataset` (fits nothing — bring a trained
    table or codec), bulk-ingest a flat corpus with :meth:`from_corpus`, or
    ingest incrementally with :meth:`append`.
    """

    def __init__(
        self,
        table: SupernodeTable,
        matcher_backend: str = "hash",
        hash_bits: int = 64,
        order=None,
    ) -> None:
        self.table = table
        self.matcher_backend = matcher_backend
        self.hash_bits = hash_bits
        self.order = order
        self._matcher: CandidateSet = static_matcher_from_table(
            table, matcher_backend, hash_bits=hash_bits
        )
        self._tokens: List[Tuple[int, ...]] = []

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_dataset(
        cls, dataset, table: SupernodeTable, matcher_backend: str = "hash",
        order=None,
    ) -> "CompressedPathStore":
        """Compress every path of *dataset* into a new store."""
        store = cls(table, matcher_backend=matcher_backend, order=order)
        store.extend(dataset)
        return store

    @classmethod
    def from_corpus(
        cls, corpus, table: SupernodeTable, matcher_backend: str = "rolling",
        order=None,
    ) -> "CompressedPathStore":
        """Bulk-ingest a :class:`~repro.core.flatcorpus.FlatCorpus` (or any
        path iterable) through the batch compression entry point.

        Identical contents to :meth:`from_dataset`; the difference is purely
        mechanical — one :func:`~repro.core.compressor.compress_paths_flat`
        call (vectorized with the default ``rolling`` backend) instead of a
        per-path loop.
        """
        store = cls(table, matcher_backend=matcher_backend, order=order)
        store.extend_flat(corpus)
        return store

    @classmethod
    def from_tokens(
        cls,
        table: SupernodeTable,
        tokens: Iterable[Sequence[int]],
        matcher_backend: str = "hash",
        order=None,
    ) -> "CompressedPathStore":
        """Wrap already-compressed *tokens* in a store without recompressing.

        The benchmark and ablation harnesses time compression separately and
        then need a store over the result for the decode-side measurements;
        re-ingesting would both double the work and pollute the ``store.*``
        ingest counters.  The caller asserts the tokens were produced against
        *table* — and, when *order* is given, in new-id space under that
        order — round-trip verification stays on the caller's side.
        """
        store = cls(table, matcher_backend=matcher_backend, order=order)
        store._tokens.extend(tuple(token) for token in tokens)
        return store

    def extend_flat(self, paths: Iterable[Sequence[int]]) -> List[int]:
        """Bulk-append *paths* via the flat batch kernel; returns their ids.

        Equivalent to :meth:`extend` token-for-token and counter-for-counter
        (``store.ingested_*`` totals match); the batch route additionally
        publishes the ``compress.*`` counters of the underlying
        :func:`~repro.core.compressor.compress_paths_flat` call.
        """
        from repro.core.compressor import compress_paths_flat
        from repro.core.flatcorpus import as_flat_corpus

        corpus = as_flat_corpus(paths)
        if self.order is not None:
            corpus = self.order.transform_corpus(corpus)
        first_id = len(self._tokens)
        obs = get_active()
        if obs is None:
            tokens = compress_paths_flat(corpus, self.table, self._matcher)
            self._tokens.extend(tokens)
            return list(range(first_id, len(self._tokens)))
        with obs.tracer.span(catalog.SPAN_STORE_INGEST) as span, obs.registry.timeit(
            catalog.STORE_INGEST_SECONDS
        ):
            tokens = compress_paths_flat(corpus, self.table, self._matcher)
            self._tokens.extend(tokens)
            if span is not None:
                span.add("paths", len(tokens))
                span.add("flat", 1)
        registry = obs.registry
        registry.counter(catalog.STORE_INGESTED_PATHS).inc(len(tokens))
        registry.counter(catalog.STORE_INGESTED_SYMBOLS_IN).inc(corpus.total_symbols)
        registry.counter(catalog.STORE_INGESTED_SYMBOLS_OUT).inc(
            sum(len(t) for t in tokens)
        )
        return list(range(first_id, len(self._tokens)))

    @classmethod
    def from_codec(cls, dataset, codec) -> "CompressedPathStore":
        """Fit *codec* on *dataset* and ingest the whole dataset.

        *codec* must be a :class:`~repro.core.codec.TableCodec` (the store
        needs a supernode table to expand from).  A codec fitted with a
        reordering strategy hands its order through, so the store ingests
        and retrieves in original ids exactly like the codec does.
        """
        codec.fit(dataset)
        return cls.from_dataset(
            dataset, codec.table, order=getattr(codec, "order", None)
        )

    def append(self, path: Sequence[int]) -> int:
        """Compress and store one path; returns its path id."""
        from repro.core.compressor import compress_path

        if self.order is not None:
            path = self.order.apply_path(path)
        token = compress_path(path, self.table, self._matcher)
        self._tokens.append(token)
        obs = get_active()
        if obs is not None:
            registry = obs.registry
            registry.counter(catalog.STORE_INGESTED_PATHS).inc()
            registry.counter(catalog.STORE_INGESTED_SYMBOLS_IN).inc(len(path))
            registry.counter(catalog.STORE_INGESTED_SYMBOLS_OUT).inc(len(token))
        return len(self._tokens) - 1

    def extend(self, paths: Iterable[Sequence[int]]) -> List[int]:
        """Append many paths; returns their ids in order.

        With :mod:`repro.obs` active the batch is one ``store.ingest`` span;
        the shared matcher's probe work over the batch lands on the registry
        as ``matcher.probes`` / ``matcher.hashed_vertices``.
        """
        obs = get_active()
        if obs is None:
            return [self.append(p) for p in paths]
        probes_before = self._matcher.stats.snapshot()
        with obs.tracer.span(catalog.SPAN_STORE_INGEST) as span, obs.registry.timeit(
            catalog.STORE_INGEST_SECONDS
        ):
            ids = [self.append(p) for p in paths]
            if span is not None:
                span.add("paths", len(ids))
        self._matcher.stats.delta_since(probes_before).publish(
            obs.registry, catalog.PROBE_PREFIX_MATCHER
        )
        return ids

    # -- retrieval ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tokens)

    def token(self, path_id: int) -> Tuple[int, ...]:
        """The raw compressed token for *path_id* (no decompression)."""
        self._check_id(path_id)
        return self._tokens[path_id]

    def tokens(self) -> List[Tuple[int, ...]]:
        """All compressed tokens, in path-id order (do not mutate)."""
        return self._tokens

    def retrieve(self, path_id: int) -> Tuple[int, ...]:
        """Decompress and return the single path *path_id*."""
        self._check_id(path_id)
        obs = get_active()
        if obs is None:
            return self._restore(decompress_path(self._tokens[path_id], self.table))
        with obs.registry.timeit(catalog.STORE_RETRIEVE_SECONDS):
            path = self._restore(decompress_path(self._tokens[path_id], self.table))
        obs.registry.counter(catalog.STORE_RETRIEVED_PATHS).inc()
        return path

    def retrieve_slice(
        self, path_id: int, start: Optional[int] = None, stop: Optional[int] = None
    ) -> Tuple[int, ...]:
        """``retrieve(path_id)[start:stop]`` without full-path materialization.

        Python slice semantics (``None`` bounds, negatives, clamping; no
        step).  Token symbols outside the window are *skipped by
        arithmetic* over the expansion cache's precomputed lengths, so a
        narrow window into a long path costs O(token prefix + window) —
        the Fig. 6 "partial" access pattern at sub-path granularity.
        """
        self._check_id(path_id)
        from repro.core.expansion import slice_token

        token = self._tokens[path_id]
        obs = get_active()
        if obs is None:
            return self._restore(slice_token(token, self.table.expansions(), start, stop))
        with obs.registry.timeit(catalog.STORE_RETRIEVE_SLICE_SECONDS):
            out = self._restore(slice_token(token, self.table.expansions(), start, stop))
        obs.registry.counter(catalog.STORE_RETRIEVED_SLICES).inc()
        return out

    def expanded_length(self, path_id: int) -> int:
        """Decompressed length of *path_id* in O(token) — nothing expanded."""
        self._check_id(path_id)
        return self.table.expansions().token_length(self._tokens[path_id])

    def retrieve_many(self, path_ids: Iterable[int]) -> List[Tuple[int, ...]]:
        """Decompress exactly the given paths, leaving the rest compressed.

        This is the paper's partial decompression ``f^T : (Q', R) => Q``.
        Every id is validated *before* any decode work starts, so a bad id
        fails the whole call without side effects (no partially-counted
        ``store.retrieved_paths``, no wasted expansion).
        """
        ids = list(path_ids)
        for pid in ids:
            self._check_id(pid)
        return [self.retrieve(pid) for pid in ids]

    def retrieve_all(self) -> List[Tuple[int, ...]]:
        """Decompress the full store (the DS measurement of Fig. 6a)."""
        table = self.table
        restore = self._restore
        obs = get_active()
        if obs is None:
            return [restore(decompress_path(t, table)) for t in self._tokens]
        with obs.tracer.span(
            catalog.SPAN_STORE_RETRIEVE_ALL
        ) as span, obs.registry.timeit(catalog.STORE_RETRIEVE_ALL_SECONDS):
            paths = [restore(decompress_path(t, table)) for t in self._tokens]
            if span is not None:
                span.add("paths", len(paths))
        obs.registry.counter(catalog.STORE_RETRIEVED_PATHS).inc(len(paths))
        return paths

    def retrieve_fraction(self, fraction: float, seed: int = 0) -> List[Tuple[int, ...]]:
        """Decompress a uniform random *fraction* of paths (Fig. 6b's PDS).

        Deterministic for a given *seed*.
        """
        import random

        if not 0.0 < fraction <= 1.0:
            raise InvalidInputError("fraction must be in (0, 1]")
        count = max(1, round(fraction * len(self._tokens)))
        rng = random.Random(seed)
        ids = rng.sample(range(len(self._tokens)), count)
        return self.retrieve_many(ids)

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        """Iterate decompressed paths in path-id order."""
        table = self.table
        restore = self._restore
        return (restore(decompress_path(t, table)) for t in self._tokens)

    # -- size accounting ----------------------------------------------------------------

    def compressed_symbol_count(self) -> int:
        """Total integer symbols across all stored tokens."""
        return sum(len(t) for t in self._tokens)

    def compressed_size_bytes(self, encoding: Encoding = DEFAULT_ENCODING) -> int:
        """``|P'| + |R|`` in bytes: tokens (with length markers) plus table.

        A persisted vertex order is part of ``R`` (a reader needs it to
        restore original ids), so its backward map is charged here too.
        """
        total = encoding.size_of_value(self.table.base_id)
        for _, subpath in self.table:
            total += encoding.size_of_value(len(subpath)) + encoding.size_of(subpath)
        if self.order is not None:
            total += self.order.size_bytes(encoding)
        for token in self._tokens:
            total += encoding.size_of_value(len(token)) + encoding.size_of(token)
        obs = get_active()
        if obs is not None:
            obs.registry.set_gauge(catalog.STORE_COMPRESSED_BYTES, total)
        return total

    def raw_size_bytes(self, encoding: Encoding = DEFAULT_ENCODING) -> int:
        """``|P|`` in bytes: what the uncompressed paths would cost.

        Measured over *original* ids — with a vertex order active the
        decompressed new-id paths are inverted first, so varint accounting
        prices the paths the caller actually handed in.
        """
        total = 0
        for token in self._tokens:
            path = self._restore(decompress_path(token, self.table))
            total += encoding.size_of_value(len(path)) + encoding.size_of(path)
        obs = get_active()
        if obs is not None:
            obs.registry.set_gauge(catalog.STORE_RAW_BYTES, total)
        return total

    def compression_ratio(self, encoding: Encoding = DEFAULT_ENCODING) -> float:
        """``CR = |P| / (|P'| + |R|)`` for the store's current contents."""
        compressed = self.compressed_size_bytes(encoding)
        return self.raw_size_bytes(encoding) / compressed if compressed else 0.0

    # -- internals -----------------------------------------------------------------------

    def _restore(self, path: Tuple[int, ...]) -> Tuple[int, ...]:
        """Invert the vertex order on an outgoing path (no-op when unordered)."""
        if self.order is None:
            return path
        return self.order.invert_path(path)

    def _check_id(self, path_id: int) -> None:
        if not 0 <= path_id < len(self._tokens):
            raise PathIdError(f"path id {path_id} not in store of {len(self._tokens)} paths")

    def __repr__(self) -> str:
        return (
            f"CompressedPathStore(paths={len(self._tokens)}, "
            f"table_entries={len(self.table)})"
        )
