"""Automatic (i, k) selection — operationalizing the paper's Exp-1.

The paper picks its deployed modes by eyeballing the Fig. 4 trade-off
curves: "Regarding the trade-off between CS and CR, we pick two sets of
(i, k), the default mode (4, 7) and the fast mode (2, 7)."  This module
automates that decision for a new workload:

* :func:`sweep` measures CR and CS over a grid of (i, k) on a pilot sample
  of the data;
* :func:`choose` applies the paper's selection logic: among configurations
  within ``cr_tolerance`` of the best compression ratio, take the fastest
  (the "default mode" pick), and also report the fastest configuration
  losing at most ``fast_cr_loss`` absolute CR (the "fast mode" pick).

The sweep measures on a bounded pilot (``pilot_paths``), so tuning cost is
independent of archive size — the same reason table construction samples.

**Ablation-guided mode.**  Given an ``ablation_report`` (the
``BENCH_ablation.json`` payload of :mod:`repro.bench.ablation`),
:func:`autotune` stops treating every knob as equally suspect:

* components the report scored below ``min_importance`` are pinned to their
  defaults (the (i, k) grid collapses to a single row/column when table
  construction or sampling did not move any metric);
* components that *did* matter contribute their measured best value —
  CR-improving values are applied outright, CR-neutral ones only when they
  buy speed — as config overrides for the sweep base;
* the final pick is **guarded**: the recommended config and the untouched
  default are both measured on the same pilot with full round-trip
  verification, and if the recommendation does not hold the default's CR the
  tuner falls back to the default.  An ablation report can therefore narrow
  and speed up tuning, but never talk it into a worse or corrupt config.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.metrics import measure_codec
from repro.core.config import OFFSConfig
from repro.core.errors import InvalidInputError
from repro.core.offs import OFFSCodec
from repro.paths.dataset import PathDataset

#: Components below this importance (max relative headline-metric delta,
#: see :func:`repro.bench.ablation.importance_table`) are pruned from the
#: guided search space.
DEFAULT_MIN_IMPORTANCE = 0.02


@dataclass(frozen=True)
class TuningPoint:
    """One measured (i, k) configuration."""

    iterations: int
    sample_exponent: int
    compression_ratio: float
    compression_speed_mbps: float

    def as_row(self) -> Tuple[int, int, float, float]:
        return (
            self.iterations,
            self.sample_exponent,
            round(self.compression_ratio, 3),
            round(self.compression_speed_mbps, 3),
        )


@dataclass(frozen=True)
class TuningResult:
    """The sweep's outcome: the two operating points, Exp-1 style.

    In ablation-guided mode (``autotune(..., ablation_report=...)``) the
    result additionally carries the guarded recommendation:
    ``recommended_config`` is the full per-workload config (sweep pick plus
    the report's component overrides), ``pruned_components`` lists what the
    report let the tuner skip, and ``fallback_to_default`` records that the
    guard rejected a recommendation that failed to hold the default's CR.
    """

    default_mode: TuningPoint
    fast_mode: TuningPoint
    points: Tuple[TuningPoint, ...]
    pilot_paths: int
    elapsed_seconds: float
    recommended_config: Optional[OFFSConfig] = None
    pruned_components: Tuple[str, ...] = ()
    used_ablation: bool = False
    fallback_to_default: bool = False

    def default_config(self, base: Optional[OFFSConfig] = None) -> OFFSConfig:
        """An :class:`OFFSConfig` for the default-mode pick."""
        base = base or OFFSConfig()
        return base.with_(
            iterations=self.default_mode.iterations,
            sample_exponent=self.default_mode.sample_exponent,
        )

    def fast_config(self, base: Optional[OFFSConfig] = None) -> OFFSConfig:
        """An :class:`OFFSConfig` for the fast-mode pick."""
        base = base or OFFSConfig()
        return base.with_(
            iterations=self.fast_mode.iterations,
            sample_exponent=self.fast_mode.sample_exponent,
        )

    def best_config(self, base: Optional[OFFSConfig] = None) -> OFFSConfig:
        """The config to deploy: the guarded recommendation when one exists
        (ablation-guided mode), otherwise the default-mode pick."""
        if self.recommended_config is not None:
            return self.recommended_config
        return self.default_config(base)


def sweep(
    dataset,
    i_values: Sequence[int] = (1, 2, 3, 4, 6),
    k_values: Sequence[int] = (0, 1, 2, 3, 4),
    base: Optional[OFFSConfig] = None,
    pilot_paths: int = 2000,
    seed: int = 0,
) -> List[TuningPoint]:
    """Measure CR and CS over the (i, k) grid on a pilot sample."""
    base = base or OFFSConfig()
    paths = list(dataset)
    pilot = PathDataset(paths[:pilot_paths], name="pilot")
    points: List[TuningPoint] = []
    for i in i_values:
        for k in k_values:
            config = base.with_(iterations=i, sample_exponent=k, seed=seed)
            measurement = measure_codec(OFFSCodec(config), pilot, verify=False)
            points.append(
                TuningPoint(
                    iterations=i,
                    sample_exponent=k,
                    compression_ratio=measurement.compression_ratio,
                    compression_speed_mbps=measurement.compression_speed_mbps,
                )
            )
    return points


def choose(
    points: Sequence[TuningPoint],
    cr_tolerance: float = 0.05,
    fast_cr_loss: float = 0.35,
) -> Tuple[TuningPoint, TuningPoint]:
    """Apply the Exp-1 selection rule to measured *points*.

    :param cr_tolerance: relative CR slack for the default mode — among
        points within ``(1 - cr_tolerance) × best CR``, pick the fastest.
    :param fast_cr_loss: absolute CR the fast mode may give up relative to
        the default mode (the paper's OFFS* "only loses 0.33").
    :returns: ``(default_mode, fast_mode)``.
    """
    if not points:
        raise InvalidInputError("no tuning points to choose from")
    best_cr = max(p.compression_ratio for p in points)
    default_pool = [
        p for p in points if p.compression_ratio >= (1 - cr_tolerance) * best_cr
    ]
    default = max(default_pool, key=lambda p: p.compression_speed_mbps)
    fast_pool = [
        p for p in points
        if p.compression_ratio >= default.compression_ratio - fast_cr_loss
    ]
    fast = max(fast_pool, key=lambda p: p.compression_speed_mbps)
    return default, fast


# -- consuming an ablation report ------------------------------------------------


def _parse_knob_value(label: str) -> object:
    """Invert :func:`repro.bench.ablation.format_value` run-id spellings."""
    if label == "none":
        return None
    if label == "on":
        return True
    if label == "off":
        return False
    try:
        return int(label)
    except ValueError:
        return label


def _workload_entries(
    report: Mapping[str, object], workload: Optional[str]
) -> List[Mapping[str, object]]:
    """The report's importance entries for *workload*.

    Falls back to the per-knob maximum-importance entry across every
    workload when the dataset's workload was not in the campaign — a
    component that mattered anywhere stays in the search space.
    """
    entries = list(report.get("importance", ()))
    named = [e for e in entries if e.get("workload") == workload]
    if named:
        return named
    best: Dict[str, Mapping[str, object]] = {}
    for entry in entries:
        knob = str(entry["knob"])
        if knob not in best or entry["importance"] > best[knob]["importance"]:
            best[knob] = entry
    return sorted(
        best.values(), key=lambda e: (-float(e["importance"]), str(e["knob"]))
    )


def ablation_overrides(
    report: Mapping[str, object],
    workload: Optional[str] = None,
    min_importance: float = DEFAULT_MIN_IMPORTANCE,
) -> Tuple[Dict[str, object], Tuple[str, ...], Tuple[str, ...]]:
    """Distill a report into sweep inputs for one workload.

    :returns: ``(config_overrides, important_knobs, pruned_components)`` —
        overrides are :class:`OFFSConfig` field values taken from each
        important config-targeted knob's best cell (CR-improving values
        outright, CR-neutral ones only when they bought speed);
        ``important_knobs`` names every knob at or above *min_importance*
        (the (i, k) grid prunes on it); ``pruned_components`` is the
        complement, for reporting.
    """
    meta = {str(knob["name"]): knob for knob in report.get("knobs", ())}
    overrides: Dict[str, object] = {}
    important: List[str] = []
    pruned: List[str] = []
    # Entries arrive in descending importance, so when two knobs' settings
    # collide (hash_bits requires the rolling matcher; the matcher knob may
    # have picked another backend) the knob that moved metrics more wins.
    for entry in _workload_entries(report, workload):
        knob = str(entry["knob"])
        if float(entry["importance"]) < min_importance:
            pruned.append(str(entry["component"]))
            continue
        important.append(knob)
        target = str(meta.get(knob, {}).get("target", ""))
        scope, _, fieldname = target.partition(".")
        if scope != "config" or fieldname in ("iterations", "sample_exponent"):
            continue  # pipeline knobs and the (i, k) grid are not overrides
        values: Mapping[str, Mapping[str, float]] = entry.get("values", {})
        if not values:
            continue
        label, deltas = max(
            values.items(),
            key=lambda item: (item[1]["delta_cr"], item[1]["delta_cs"], item[0]),
        )
        if deltas["delta_cr"] < 0 or (
            deltas["delta_cr"] == 0 and deltas["delta_cs"] <= 0
        ):
            continue  # the knob mattered, but no swept value beat the baseline
        # Reconstruct the exact settings the winning cell measured with.
        settings = [
            (str(t), _parse_knob_value(str(v)))
            for t, v in meta.get(knob, {}).get("requires", ())
            if str(t).startswith("config.")
        ]
        settings.append((target, _parse_knob_value(label)))
        fields = {t.partition(".")[2]: v for t, v in settings}
        if any(overrides.get(f, v) != v for f, v in fields.items()):
            continue  # conflicts with a more important knob's pick
        overrides.update(fields)
    return overrides, tuple(important), tuple(pruned)


def autotune(
    dataset,
    base: Optional[OFFSConfig] = None,
    pilot_paths: int = 2000,
    cr_tolerance: float = 0.05,
    fast_cr_loss: float = 0.35,
    seed: int = 0,
    i_values: Sequence[int] = (1, 2, 3, 4, 6),
    k_values: Sequence[int] = (0, 1, 2, 3, 4),
    ablation_report: Optional[Mapping[str, object]] = None,
    workload: Optional[str] = None,
    min_importance: float = DEFAULT_MIN_IMPORTANCE,
) -> TuningResult:
    """One-call tuning: sweep the grid, pick the two operating points.

    With *ablation_report* (a loaded ``BENCH_ablation.json``, see
    :func:`repro.bench.ablation.load_report`) the sweep is pruned to the
    components the report scored as mattering for *workload* (defaulting to
    the dataset's name), the report's best component values are applied to
    the sweep base, and the returned :attr:`TuningResult.recommended_config`
    is guard-verified: measured against the unmodified default on the same
    pilot with full round-trip verification, falling back to the default if
    it scores a worse CR.
    """
    started = time.perf_counter()
    base = base or OFFSConfig()
    overrides: Dict[str, object] = {}
    important: Tuple[str, ...] = ()
    pruned: Tuple[str, ...] = ()
    sweep_base = base
    if ablation_report is not None:
        overrides, important, pruned = ablation_overrides(
            ablation_report,
            workload=workload or getattr(dataset, "name", None),
            min_importance=min_importance,
        )
        sweep_base = base.with_(**overrides)
        if "iterations" not in important:
            i_values = (base.iterations,)
        if "sample_exponent" not in important:
            k_values = (base.sample_exponent,)

    points = sweep(
        dataset,
        i_values=i_values,
        k_values=k_values,
        base=sweep_base,
        pilot_paths=pilot_paths,
        seed=seed,
    )
    default, fast = choose(points, cr_tolerance=cr_tolerance, fast_cr_loss=fast_cr_loss)

    recommended: Optional[OFFSConfig] = None
    fallback = False
    if ablation_report is not None:
        paths = list(dataset)
        pilot = PathDataset(paths[:pilot_paths], name="pilot")
        candidate = sweep_base.with_(
            iterations=default.iterations,
            sample_exponent=default.sample_exponent,
            seed=seed,
        )
        reference = base.with_(seed=seed)
        # The guard measures with verify=True: a recommendation that cannot
        # round-trip byte-identically raises here instead of shipping.
        candidate_m = measure_codec(OFFSCodec(candidate), pilot, verify=True)
        reference_m = measure_codec(OFFSCodec(reference), pilot, verify=True)
        if candidate_m.compression_ratio >= reference_m.compression_ratio:
            recommended = candidate
        else:
            recommended = reference
            fallback = True

    return TuningResult(
        default_mode=default,
        fast_mode=fast,
        points=tuple(points),
        pilot_paths=min(pilot_paths, len(dataset)),
        elapsed_seconds=time.perf_counter() - started,
        recommended_config=recommended,
        pruned_components=pruned,
        used_ablation=ablation_report is not None,
        fallback_to_default=fallback,
    )
