"""Automatic (i, k) selection — operationalizing the paper's Exp-1.

The paper picks its deployed modes by eyeballing the Fig. 4 trade-off
curves: "Regarding the trade-off between CS and CR, we pick two sets of
(i, k), the default mode (4, 7) and the fast mode (2, 7)."  This module
automates that decision for a new workload:

* :func:`sweep` measures CR and CS over a grid of (i, k) on a pilot sample
  of the data;
* :func:`choose` applies the paper's selection logic: among configurations
  within ``cr_tolerance`` of the best compression ratio, take the fastest
  (the "default mode" pick), and also report the fastest configuration
  losing at most ``fast_cr_loss`` absolute CR (the "fast mode" pick).

The sweep measures on a bounded pilot (``pilot_paths``), so tuning cost is
independent of archive size — the same reason table construction samples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.metrics import measure_codec
from repro.core.config import OFFSConfig
from repro.core.errors import InvalidInputError
from repro.core.offs import OFFSCodec
from repro.paths.dataset import PathDataset


@dataclass(frozen=True)
class TuningPoint:
    """One measured (i, k) configuration."""

    iterations: int
    sample_exponent: int
    compression_ratio: float
    compression_speed_mbps: float

    def as_row(self) -> Tuple[int, int, float, float]:
        return (
            self.iterations,
            self.sample_exponent,
            round(self.compression_ratio, 3),
            round(self.compression_speed_mbps, 3),
        )


@dataclass(frozen=True)
class TuningResult:
    """The sweep's outcome: the two operating points, Exp-1 style."""

    default_mode: TuningPoint
    fast_mode: TuningPoint
    points: Tuple[TuningPoint, ...]
    pilot_paths: int
    elapsed_seconds: float

    def default_config(self, base: Optional[OFFSConfig] = None) -> OFFSConfig:
        """An :class:`OFFSConfig` for the default-mode pick."""
        base = base or OFFSConfig()
        return base.with_(
            iterations=self.default_mode.iterations,
            sample_exponent=self.default_mode.sample_exponent,
        )

    def fast_config(self, base: Optional[OFFSConfig] = None) -> OFFSConfig:
        """An :class:`OFFSConfig` for the fast-mode pick."""
        base = base or OFFSConfig()
        return base.with_(
            iterations=self.fast_mode.iterations,
            sample_exponent=self.fast_mode.sample_exponent,
        )


def sweep(
    dataset,
    i_values: Sequence[int] = (1, 2, 3, 4, 6),
    k_values: Sequence[int] = (0, 1, 2, 3, 4),
    base: Optional[OFFSConfig] = None,
    pilot_paths: int = 2000,
    seed: int = 0,
) -> List[TuningPoint]:
    """Measure CR and CS over the (i, k) grid on a pilot sample."""
    base = base or OFFSConfig()
    paths = list(dataset)
    pilot = PathDataset(paths[:pilot_paths], name="pilot")
    points: List[TuningPoint] = []
    for i in i_values:
        for k in k_values:
            config = base.with_(iterations=i, sample_exponent=k, seed=seed)
            measurement = measure_codec(OFFSCodec(config), pilot, verify=False)
            points.append(
                TuningPoint(
                    iterations=i,
                    sample_exponent=k,
                    compression_ratio=measurement.compression_ratio,
                    compression_speed_mbps=measurement.compression_speed_mbps,
                )
            )
    return points


def choose(
    points: Sequence[TuningPoint],
    cr_tolerance: float = 0.05,
    fast_cr_loss: float = 0.35,
) -> Tuple[TuningPoint, TuningPoint]:
    """Apply the Exp-1 selection rule to measured *points*.

    :param cr_tolerance: relative CR slack for the default mode — among
        points within ``(1 - cr_tolerance) × best CR``, pick the fastest.
    :param fast_cr_loss: absolute CR the fast mode may give up relative to
        the default mode (the paper's OFFS* "only loses 0.33").
    :returns: ``(default_mode, fast_mode)``.
    """
    if not points:
        raise InvalidInputError("no tuning points to choose from")
    best_cr = max(p.compression_ratio for p in points)
    default_pool = [
        p for p in points if p.compression_ratio >= (1 - cr_tolerance) * best_cr
    ]
    default = max(default_pool, key=lambda p: p.compression_speed_mbps)
    fast_pool = [
        p for p in points
        if p.compression_ratio >= default.compression_ratio - fast_cr_loss
    ]
    fast = max(fast_pool, key=lambda p: p.compression_speed_mbps)
    return default, fast


def autotune(
    dataset,
    base: Optional[OFFSConfig] = None,
    pilot_paths: int = 2000,
    cr_tolerance: float = 0.05,
    fast_cr_loss: float = 0.35,
    seed: int = 0,
) -> TuningResult:
    """One-call tuning: sweep the grid, pick the two operating points."""
    started = time.perf_counter()
    points = sweep(dataset, base=base, pilot_paths=pilot_paths, seed=seed)
    default, fast = choose(points, cr_tolerance=cr_tolerance, fast_cr_loss=fast_cr_loss)
    return TuningResult(
        default_mode=default,
        fast_mode=fast,
        points=tuple(points),
        pilot_paths=min(pilot_paths, len(dataset)),
        elapsed_seconds=time.perf_counter() - started,
    )
