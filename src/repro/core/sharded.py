"""Sharded path stores: parallel builds, streaming ingest, fan-out reads.

A monolithic v2 archive is one blob built in one shot: build time is bound
to a single process and ingest memory grows with the dataset.  This module
partitions the same data into *shards* — independent v2 (``RPC2``) files
under one CRC'd JSON manifest — which buys three things the WebGraph /
Log(Graph) lineage of partitioned compressed representations is built on:

* **parallel build** (:func:`build_sharded_store`) — per-shard compression
  fans out over :func:`repro.core.parallel.compress_corpora` workers using
  the FlatCorpus shipping path, so wall-clock build time drops near-linearly
  with cores while the output stays bit-identical to the sequential build;
* **constant-memory streaming ingest** (:class:`ShardedIngest`) — arriving
  paths land in a mutable in-memory *memtable* compressed against a frozen
  table (a :class:`~repro.core.stream.StreamingCompressor`); when the
  memtable fills it is *sealed* to an immutable v2 shard, LSM-style, and
  when the stream's drift watch trips the table is optionally refit, so
  ingest memory is bounded by memtable + table, never by dataset size;
* **fan-out reads** (:class:`ShardedPathStore`) — the full query surface
  (``retrieve``/``retrieve_slice``/``retrieve_many``/``retrieve_batch``/
  ``expanded_length``/``paths_between``/``subpath_search``) routes global
  path ids through the manifest to per-shard
  :class:`~repro.core.mapped.MappedPathStore` readers, byte-identical to
  the same dataset in one monolithic v2 file.

Layout on disk: a manifest file (magic ``RPSM``, CRC32-protected JSON; see
docs/formats.md) next to its shard files ``<stem>.shard-00000.rpc2``,
``<stem>.shard-00001.rpc2``, ....  Each shard is a complete, self-contained
v2 store (own header, own table blob, own CRCs), so a damaged shard is
isolated and any v2 tooling can open one directly.

Two partition functions map a global path id to ``(shard, local id)``:

* ``range`` — shard *s* holds the contiguous ids ``[start_s, start_s +
  count_s)``; routing is a binary search over the recorded starts.  This is
  what the parallel build and the streaming ingest produce.
* ``hash`` — shard *s* holds ids ``{i : i mod shards == s}``; routing is
  two integer ops in either direction.  This keeps every shard's load even
  under id-skewed read traffic.

Both are deterministic and invertible, which is what makes fan-out results
*provably* identical to the monolithic store (the differential tests in
``tests/test_sharded.py`` hold every endpoint to it at multiple shard
counts).
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from bisect import bisect_right
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import (
    CorruptDataError,
    InvalidInputError,
    PathIdError,
    StateError,
    TruncatedDataError,
)
from repro.core.flatcorpus import FlatCorpus, as_flat_corpus
from repro.core.mapped import MappedPathStore
from repro.core.serialize import dumps_table, dumps_store_v2_tokens
from repro.core.supernode_table import SupernodeTable
from repro.obs import catalog
from repro.obs.runtime import get_active

#: Manifest file layout: magic(4) version(B) pad(3x) json_crc(I) json_len(I),
#: then the UTF-8 JSON document.  See docs/formats.md.
MANIFEST_MAGIC = b"RPSM"
MANIFEST_VERSION = 1
_MANIFEST_HEADER = struct.Struct("<4sB3xII")

PARTITION_RANGE = "range"
PARTITION_HASH = "hash"
PARTITIONS = (PARTITION_RANGE, PARTITION_HASH)


def shard_filename(stem: str, index: int) -> str:
    """The canonical shard file name: ``<stem>.shard-00042.rpc2``."""
    return f"{stem}.shard-{index:05d}.rpc2"


class ShardInfo:
    """One shard's manifest entry.

    :param file: shard file name, relative to the manifest's directory.
    :param start: first global path id (``range`` partition; ``None`` under
        ``hash``, where placement is computed, not recorded).
    :param count: number of paths in the shard.
    :param table_crc: CRC32 of the shard's RPST table blob — the table
        *fingerprint*.  Shards sharing a fingerprint share a table
        byte-for-byte; a streaming refit starts a new fingerprint.
    """

    __slots__ = ("file", "start", "count", "table_crc")

    def __init__(self, file: str, start: Optional[int], count: int, table_crc: int) -> None:
        self.file = file
        self.start = start
        self.count = count
        self.table_crc = table_crc

    def as_json(self) -> Dict[str, Any]:
        return {
            "file": self.file,
            "start": self.start,
            "count": self.count,
            "table_crc": self.table_crc,
        }

    def __repr__(self) -> str:
        return (
            f"ShardInfo(file={self.file!r}, start={self.start}, "
            f"count={self.count}, table_crc={self.table_crc:#010x})"
        )


class ShardManifest:
    """The routing table of a sharded store: partition fn + shard entries.

    Instances are immutable descriptions; :func:`dumps_manifest` /
    :func:`loads_manifest` move them to and from the CRC'd on-disk form.
    """

    def __init__(self, partition: str, shards: Sequence[ShardInfo]) -> None:
        if partition not in PARTITIONS:
            raise InvalidInputError(
                f"unknown partition fn {partition!r}; known: {PARTITIONS}"
            )
        self.partition = partition
        self.shards: Tuple[ShardInfo, ...] = tuple(shards)
        self.path_count = sum(info.count for info in self.shards)
        if partition == PARTITION_RANGE:
            expected = 0
            for info in self.shards:
                if info.start != expected:
                    raise CorruptDataError(
                        f"range manifest does not tile the id space: shard "
                        f"{info.file!r} starts at {info.start}, expected {expected}"
                    )
                expected += info.count
            self._starts = [info.start for info in self.shards]
        else:
            n = len(self.shards)
            for index, info in enumerate(self.shards):
                expected_count = len(range(index, self.path_count, n)) if n else 0
                if info.count != expected_count:
                    raise CorruptDataError(
                        f"hash manifest inconsistent: shard {info.file!r} "
                        f"declares {info.count} paths, modulo placement "
                        f"implies {expected_count}"
                    )
            self._starts = []

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    # -- routing -------------------------------------------------------------------

    def locate(self, path_id: int) -> Tuple[int, int]:
        """Global ``path_id`` → ``(shard index, local path id)``."""
        if not 0 <= path_id < self.path_count:
            raise PathIdError(
                f"path id {path_id} not in sharded store of {self.path_count} paths"
            )
        if self.partition == PARTITION_HASH:
            return path_id % len(self.shards), path_id // len(self.shards)
        shard = bisect_right(self._starts, path_id) - 1
        return shard, path_id - self._starts[shard]

    def global_id(self, shard: int, local_id: int) -> int:
        """``(shard index, local path id)`` → global path id."""
        if self.partition == PARTITION_HASH:
            return local_id * len(self.shards) + shard
        return self.shards[shard].start + local_id

    def partition_params(self) -> Dict[str, Any]:
        params: Dict[str, Any] = {"fn": self.partition}
        if self.partition == PARTITION_HASH:
            params["shards"] = len(self.shards)
        return params

    def __repr__(self) -> str:
        return (
            f"ShardManifest(partition={self.partition!r}, "
            f"shards={len(self.shards)}, paths={self.path_count})"
        )


def dumps_manifest(manifest: ShardManifest) -> bytes:
    """Serialize *manifest* to the ``RPSM`` wire form (CRC'd JSON)."""
    document = {
        "schema_version": 1,
        "partition": manifest.partition_params(),
        "path_count": manifest.path_count,
        "shards": [info.as_json() for info in manifest.shards],
    }
    payload = json.dumps(document, indent=2, sort_keys=True).encode("utf-8")
    header = _MANIFEST_HEADER.pack(
        MANIFEST_MAGIC, MANIFEST_VERSION, zlib.crc32(payload), len(payload)
    )
    return header + payload


def loads_manifest(data: bytes) -> ShardManifest:
    """Parse and validate an ``RPSM`` manifest blob."""
    if len(data) < _MANIFEST_HEADER.size:
        raise TruncatedDataError(
            f"shard manifest needs {_MANIFEST_HEADER.size} header bytes, "
            f"buffer has {len(data)}"
        )
    magic, version, crc, length = _MANIFEST_HEADER.unpack_from(data, 0)
    if magic != MANIFEST_MAGIC:
        raise CorruptDataError("not a shard manifest (bad magic)")
    if version != MANIFEST_VERSION:
        raise CorruptDataError(f"unsupported shard-manifest version {version}")
    payload = data[_MANIFEST_HEADER.size:]
    if len(payload) != length:
        raise TruncatedDataError(
            f"shard manifest declares {length} JSON bytes but carries "
            f"{len(payload)} (truncated at byte offset "
            f"{_MANIFEST_HEADER.size + min(length, len(payload))})"
        )
    if zlib.crc32(payload) != crc:
        raise CorruptDataError("shard manifest checksum mismatch (file is corrupt)")
    try:
        document = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptDataError(f"shard manifest JSON is invalid: {exc}") from exc
    return _manifest_from_json(document)


def _manifest_from_json(document: Any) -> ShardManifest:
    if not isinstance(document, dict):
        raise CorruptDataError("shard manifest JSON must be an object")
    partition = document.get("partition")
    if not isinstance(partition, dict) or "fn" not in partition:
        raise CorruptDataError("shard manifest lacks a partition descriptor")
    shards_json = document.get("shards")
    if not isinstance(shards_json, list):
        raise CorruptDataError("shard manifest lacks a shard list")
    shards = []
    for entry in shards_json:
        if not isinstance(entry, dict):
            raise CorruptDataError("shard manifest entry must be an object")
        try:
            shards.append(
                ShardInfo(
                    file=str(entry["file"]),
                    start=entry.get("start"),
                    count=int(entry["count"]),
                    table_crc=int(entry["table_crc"]),
                )
            )
        except KeyError as exc:
            raise CorruptDataError(
                f"shard manifest entry is missing field {exc.args[0]!r}"
            ) from exc
    manifest = ShardManifest(str(partition["fn"]), shards)
    declared = document.get("path_count")
    if declared is not None and declared != manifest.path_count:
        raise CorruptDataError(
            f"shard manifest declares {declared} paths but its shards sum "
            f"to {manifest.path_count}"
        )
    return manifest


def _write_file_atomic(path: str, blob: bytes) -> None:
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(blob)
    os.replace(tmp, path)


class ShardedPathStore:
    """Fan-out reader over a manifest of v2 shards — one store, many files.

    Duck-types the read surface of
    :class:`~repro.core.mapped.MappedPathStore` (global path ids in, same
    answers out) and adds the fan-out query endpoints
    (:meth:`paths_between`, :meth:`subpath_search`) that run per shard with
    each shard's *own* table, so they stay correct even when a streaming
    refit left shards with different tables.

    Shards open lazily (header-only, O(1) each) and their table fingerprint
    is checked against the manifest on first open.  Thread-safe for readers;
    fork/pickle-safe via the same ``process_local()`` / ``reopen()``
    protocol the mapped store uses.
    """

    def __init__(self, manifest: ShardManifest, directory: str, name: str = "<manifest>") -> None:
        self.manifest = manifest
        self.directory = directory
        self.name = name
        self._path: Optional[str] = None
        self._owner_pid = os.getpid()
        self._lock = threading.Lock()
        self._shards: List[Optional[MappedPathStore]] = [None] * manifest.shard_count
        self._queries: Dict[int, Tuple[Any, Any]] = {}
        obs = get_active()
        if obs is not None:
            obs.registry.set_gauge(catalog.SHARD_COUNT, manifest.shard_count)

    @classmethod
    def open(cls, path: str) -> "ShardedPathStore":
        """Open the manifest file at *path* (shards open lazily).

        With :mod:`repro.obs` active the open is timed as
        ``shard.open.seconds`` under a ``shard.open`` span and the summed
        shard file sizes land on ``shard.mapped_bytes``.
        """
        obs = get_active()
        if obs is None:
            return cls._open(path)
        with obs.tracer.span(catalog.SPAN_SHARD_OPEN) as span, obs.registry.timeit(
            catalog.SHARD_OPEN_SECONDS
        ):
            store = cls._open(path)
            if span is not None:
                span.add("shards", store.shard_count)
                span.add("paths", len(store))
            obs.registry.set_gauge(catalog.SHARD_MAPPED_BYTES, store.mapped_bytes)
        return store

    @classmethod
    def _open(cls, path: str) -> "ShardedPathStore":
        with open(path, "rb") as fh:
            manifest = loads_manifest(fh.read())
        directory = os.path.dirname(os.path.abspath(path))
        store = cls(manifest, directory, name=path)
        store._path = path
        return store

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Close every shard opened so far."""
        with self._lock:
            self._queries.clear()
            for index, shard in enumerate(self._shards):
                if shard is not None:
                    shard.close()
                    self._shards[index] = None

    def __enter__(self) -> "ShardedPathStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- process boundaries --------------------------------------------------------

    @property
    def owner_pid(self) -> int:
        """The pid of the process that opened (or unpickled) this store."""
        return self._owner_pid

    def reopen(self) -> "ShardedPathStore":
        """A fresh store over the same manifest — new readers, new mappings.

        :raises StateError: for a store constructed directly from a
            :class:`ShardManifest` with no backing manifest file.
        """
        if self._path is None:
            raise StateError(
                f"cannot reopen {self!r}: it has no backing manifest file; "
                "use ShardedPathStore.open(path)"
            )
        return type(self).open(self._path)

    def process_local(self) -> "ShardedPathStore":
        """This store if owned by the current process, else :meth:`reopen`."""
        if os.getpid() == self._owner_pid:
            return self
        return self.reopen()

    def __getstate__(self):
        if self._path is None:
            raise StateError(
                f"cannot pickle {self!r}: it has no backing manifest file; "
                "use ShardedPathStore.open(path)"
            )
        return {"path": self._path}

    def __setstate__(self, state) -> None:
        fresh = type(self)._open(state["path"])
        self.__dict__.update(fresh.__dict__)

    # -- shard access --------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return self.manifest.shard_count

    def shard_path(self, index: int) -> str:
        return os.path.join(self.directory, self.manifest.shards[index].file)

    def shard(self, index: int) -> MappedPathStore:
        """The per-shard mapped reader, opened (and fingerprinted) lazily."""
        store = self._shards[index]
        if store is not None:
            return store
        with self._lock:
            store = self._shards[index]
            if store is None:
                store = self._open_shard(index)
                self._shards[index] = store
        return store

    def _open_shard(self, index: int) -> MappedPathStore:
        info = self.manifest.shards[index]
        store = MappedPathStore.open(self.shard_path(index))
        try:
            header = store._header
            if header.path_count != info.count:
                raise CorruptDataError(
                    f"shard {info.file!r} holds {header.path_count} paths, "
                    f"manifest declares {info.count}"
                )
            table_blob = bytes(
                store._buf[header.table_offset : header.table_offset + header.table_size]
            )
            if zlib.crc32(table_blob) != info.table_crc:
                raise CorruptDataError(
                    f"shard {info.file!r} table fingerprint "
                    f"{zlib.crc32(table_blob):#010x} does not match manifest "
                    f"{info.table_crc:#010x}"
                )
        except CorruptDataError:
            store.close()
            raise
        return store

    @property
    def mapped_bytes(self) -> int:
        """Total bytes across all shard files (no shard is opened for this)."""
        return sum(
            os.path.getsize(self.shard_path(index))
            for index in range(self.shard_count)
        )

    @property
    def table_fingerprints(self) -> Tuple[int, ...]:
        """Distinct table CRCs across shards, in first-appearance order."""
        seen: List[int] = []
        for info in self.manifest.shards:
            if info.table_crc not in seen:
                seen.append(info.table_crc)
        return tuple(seen)

    @property
    def table(self) -> SupernodeTable:
        """The shared supernode table — defined only for uniform-table stores.

        :raises StateError: when shards carry different tables (a streaming
            refit happened); per-shard queries keep working regardless, so
            use the fan-out endpoints instead of table-level access.
        """
        fingerprints = self.table_fingerprints
        if len(fingerprints) > 1:
            raise StateError(
                f"sharded store has {len(fingerprints)} distinct tables "
                "(refit happened); there is no single shared table"
            )
        if not self.manifest.shards:
            raise StateError("empty sharded store has no table")
        return self.shard(0).table

    @property
    def order(self):
        """The store-wide :class:`~repro.paths.reorder.VertexOrder`, or ``None``.

        Every shard of a reordered store carries the same order section
        (``build_sharded_store`` stamps one order across all shards), so
        the first shard's answer is the store's answer.  Retrieval never
        consults this — each shard inverts its own ids — it exists for
        stats surfaces and size accounting.
        """
        if not self.manifest.shards:
            return None
        return self.shard(0).order

    # -- retrieval ----------------------------------------------------------------

    def __len__(self) -> int:
        return self.manifest.path_count

    def token(self, path_id: int) -> Tuple[int, ...]:
        """The raw compressed token for global *path_id*."""
        shard, local = self.manifest.locate(path_id)
        return self.shard(shard).token(local)

    def tokens(self) -> List[Tuple[int, ...]]:
        """All compressed tokens in global path-id order."""
        out: List[Optional[Tuple[int, ...]]] = [None] * len(self)
        for index in range(self.shard_count):
            shard = self.shard(index)
            for local in range(len(shard)):
                out[self.manifest.global_id(index, local)] = shard.token(local)
        return out  # type: ignore[return-value]

    def retrieve(self, path_id: int) -> Tuple[int, ...]:
        """Decompress and return the single path *path_id*."""
        shard, local = self.manifest.locate(path_id)
        return self.shard(shard).retrieve(local)

    def retrieve_slice(
        self, path_id: int, start: Optional[int] = None, stop: Optional[int] = None
    ) -> Tuple[int, ...]:
        """``retrieve(path_id)[start:stop]`` without full materialization."""
        shard, local = self.manifest.locate(path_id)
        return self.shard(shard).retrieve_slice(local, start, stop)

    def expanded_length(self, path_id: int) -> int:
        """Decompressed length of *path_id* without expanding anything."""
        shard, local = self.manifest.locate(path_id)
        return self.shard(shard).expanded_length(local)

    def retrieve_many(self, path_ids: Iterable[int]) -> List[Tuple[int, ...]]:
        """Decompress exactly the given paths; ids validated up front."""
        ids = list(path_ids)
        located = [self.manifest.locate(pid) for pid in ids]
        return [self.shard(shard).retrieve(local) for shard, local in located]

    def retrieve_batch(self, path_ids: Iterable[int]) -> List[Tuple[int, ...]]:
        """Batch retrieval through one flat-decode call *per touched shard*.

        Result-identical to :meth:`retrieve_many` (validate-all-up-front,
        output order follows input order); ids are grouped by shard and each
        group funnels through that shard's
        :meth:`~repro.core.mapped.MappedPathStore.retrieve_batch`.
        """
        ids = list(path_ids)
        located = [self.manifest.locate(pid) for pid in ids]
        if not ids:
            return []
        by_shard: Dict[int, List[Tuple[int, int]]] = {}
        for position, (shard, local) in enumerate(located):
            by_shard.setdefault(shard, []).append((position, local))
        out: List[Optional[Tuple[int, ...]]] = [None] * len(ids)
        for shard, entries in by_shard.items():
            paths = self.shard(shard).retrieve_batch([local for _, local in entries])
            for (position, _), path in zip(entries, paths):
                out[position] = path
        self._count_fanout(len(by_shard))
        return out  # type: ignore[return-value]

    def retrieve_all(self) -> List[Tuple[int, ...]]:
        """Decompress the full archive (per-shard flat decode, reordered)."""
        out: List[Optional[Tuple[int, ...]]] = [None] * len(self)
        for index in range(self.shard_count):
            paths = self.shard(index).retrieve_all()
            for local, path in enumerate(paths):
                out[self.manifest.global_id(index, local)] = path
        return out  # type: ignore[return-value]

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        return (self.retrieve(pid) for pid in range(len(self)))

    # -- fan-out queries -----------------------------------------------------------

    def _shard_query(self, index: int):
        """(VertexIndex, SubpathSearcher) over shard *index*, built once."""
        from repro.queries.index import VertexIndex
        from repro.queries.subpath_search import SubpathSearcher

        with self._lock:
            pair = self._queries.get(index)
            if pair is None:
                store = self._shards[index]
            else:
                return pair
        # Build outside the lock would race the shard open; shard() takes
        # the lock itself, so resolve the store first, then index it.
        store = self.shard(index)
        with self._lock:
            pair = self._queries.get(index)
            if pair is None:
                vertex_index = VertexIndex(store)
                pair = (vertex_index, SubpathSearcher(store, vertex_index))
                self._queries[index] = pair
        return pair

    def _count_fanout(self, shards_touched: int) -> None:
        obs = get_active()
        if obs is not None:
            obs.registry.counter(catalog.SHARD_FANOUT_QUERIES).inc()
            obs.registry.counter(catalog.SHARD_FANOUT_SHARDS).inc(shards_touched)

    def paths_containing(self, vertex: int) -> List[int]:
        """Sorted global path ids whose decompressed form contains *vertex*."""
        ids: List[int] = []
        for index in range(self.shard_count):
            vertex_index, _ = self._shard_query(index)
            ids.extend(
                self.manifest.global_id(index, local)
                for local in vertex_index.paths_containing(vertex)
            )
        self._count_fanout(self.shard_count)
        return sorted(ids)

    def affected_paths(self, issue_vertex: int) -> List[Tuple[int, ...]]:
        """Case 1 fan-out: all paths through *issue_vertex*, decompressed."""
        return self.retrieve_many(self.paths_containing(issue_vertex))

    def paths_between(self, source: int, destination: int) -> List[Tuple[int, ...]]:
        """Case 2 fan-out: all paths from *source* to *destination*.

        Identical semantics (and result order: ascending global id) to
        :meth:`repro.queries.retrieval.PathQueryEngine.paths_between` over
        the monolithic store — candidates are pruned by each shard's vertex
        index, terminals checked with one-vertex slices, and only actual
        matches pay a full decompression.
        """
        hits: List[Tuple[int, Tuple[int, ...]]] = []
        for index in range(self.shard_count):
            vertex_index, _ = self._shard_query(index)
            shard = self.shard(index)
            for local in vertex_index.paths_containing_all((source, destination)):
                head = shard.retrieve_slice(local, 0, 1)
                if not head or head[0] != source:
                    continue
                if shard.retrieve_slice(local, -1, None) != (destination,):
                    continue
                hits.append(
                    (self.manifest.global_id(index, local), shard.retrieve(local))
                )
        self._count_fanout(self.shard_count)
        hits.sort(key=lambda item: item[0])
        return [path for _, path in hits]

    def subpath_search_ids(self, query: Sequence[int]) -> List[int]:
        """Sorted global ids of paths containing *query* contiguously."""
        ids: List[int] = []
        for index in range(self.shard_count):
            _, searcher = self._shard_query(index)
            ids.extend(
                self.manifest.global_id(index, local)
                for local in searcher.search_ids(tuple(query))
            )
        self._count_fanout(self.shard_count)
        return sorted(ids)

    def subpath_search(self, query: Sequence[int]) -> List[Tuple[int, ...]]:
        """The matching paths for :meth:`subpath_search_ids`, decompressed."""
        return self.retrieve_many(self.subpath_search_ids(query))

    def vertex_index(self) -> "ShardedVertexIndex":
        """A global-id vertex index view (duck-types ``VertexIndex``)."""
        return ShardedVertexIndex(self)

    # -- size accounting (same contracts as the monolithic stores) ------------------

    def compressed_symbol_count(self) -> int:
        """Total integer symbols across all stored tokens."""
        return sum(
            self.shard(index).compressed_symbol_count()
            for index in range(self.shard_count)
        )

    def compressed_size_bytes(self, encoding=None) -> int:
        """``|P'| + |R|`` in bytes — each distinct table counted once.

        Value-identical to the monolithic store's accounting when all
        shards share one table.
        """
        from repro.paths.encoding import DEFAULT_ENCODING

        encoding = encoding or DEFAULT_ENCODING
        total = 0
        seen: set = set()
        for index in range(self.shard_count):
            shard = self.shard(index)
            crc = self.manifest.shards[index].table_crc
            if crc not in seen:
                seen.add(crc)
                table = shard.table
                total += encoding.size_of_value(table.base_id)
                for _, subpath in table:
                    total += encoding.size_of_value(len(subpath)) + encoding.size_of(subpath)
                # The order rides with the table: one copy per distinct
                # fingerprint, matching the monolithic store's accounting.
                if shard.order is not None:
                    total += shard.order.size_bytes(encoding)
            for token in shard.tokens():
                total += encoding.size_of_value(len(token)) + encoding.size_of(token)
        return total

    def raw_size_bytes(self, encoding=None) -> int:
        """``|P|`` in bytes: what the uncompressed paths would cost."""
        return sum(
            self.shard(index).raw_size_bytes(encoding)
            for index in range(self.shard_count)
        )

    def compression_ratio(self, encoding=None) -> float:
        """``CR = |P| / (|P'| + |R|)`` for the archive's contents."""
        compressed = self.compressed_size_bytes(encoding)
        return self.raw_size_bytes(encoding) / compressed if compressed else 0.0

    def check(self) -> int:
        """Force-validate every shard (header, table CRC, fingerprint).

        The startup gate :func:`repro.serve.check_store` runs for sharded
        stores: a truncated or fingerprint-divergent shard fails *here*
        with a typed error rather than as a 500 on some unlucky request.
        Returns the total path count.
        """
        for index in range(self.shard_count):
            _ = self.shard(index).table
        return len(self)

    def __repr__(self) -> str:
        return (
            f"ShardedPathStore(name={self.name!r}, shards={self.shard_count}, "
            f"paths={len(self)}, partition={self.manifest.partition!r})"
        )


class ShardedVertexIndex:
    """Global-id view over every shard's vertex index.

    Duck-types the lookup surface of
    :class:`~repro.queries.index.VertexIndex` (``paths_containing``,
    ``paths_containing_all``, ``paths_containing_any``), so the query
    engines and :class:`~repro.queries.pattern.PatternSearcher` run
    unchanged over a sharded store.  Each lookup fans out and merges; ids
    come back sorted, like the monolithic index.
    """

    def __init__(self, store: ShardedPathStore) -> None:
        self.store = store

    def _merge(self, lookup) -> List[int]:
        ids: List[int] = []
        for index in range(self.store.shard_count):
            vertex_index, _ = self.store._shard_query(index)
            ids.extend(
                self.store.manifest.global_id(index, local)
                for local in lookup(vertex_index)
            )
        self.store._count_fanout(self.store.shard_count)
        return sorted(ids)

    def paths_containing(self, vertex: int) -> List[int]:
        return self._merge(lambda idx: idx.paths_containing(vertex))

    def paths_containing_all(self, vertices) -> List[int]:
        vertices = tuple(vertices)
        return self._merge(lambda idx: idx.paths_containing_all(vertices))

    def paths_containing_any(self, vertices) -> List[int]:
        vertices = tuple(vertices)
        return self._merge(lambda idx: idx.paths_containing_any(vertices))

    def __repr__(self) -> str:
        return f"ShardedVertexIndex(shards={self.store.shard_count})"


# -- parallel build ---------------------------------------------------------------


def partition_corpus(
    corpus: FlatCorpus, shards: int, partition: str = PARTITION_RANGE
) -> List[FlatCorpus]:
    """Split *corpus* into *shards* corpora under *partition*.

    ``range`` slices are zero-copy views of the parent buffer; ``hash``
    shards gather every ``shards``-th path (a copy — modulo placement
    cannot be expressed as a contiguous slice).
    """
    if shards < 1:
        raise InvalidInputError(f"shards must be >= 1, got {shards}")
    if partition not in PARTITIONS:
        raise InvalidInputError(
            f"unknown partition fn {partition!r}; known: {PARTITIONS}"
        )
    n = len(corpus)
    if partition == PARTITION_HASH:
        return [
            FlatCorpus.from_paths(
                (corpus[i] for i in range(index, n, shards)),
                name=f"{corpus.name}[hash {index}/{shards}]",
            )
            for index in range(shards)
        ]
    base, remainder = divmod(n, shards)
    parts: List[FlatCorpus] = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < remainder else 0)
        parts.append(corpus.chunk(start, stop))
        start = stop
    return parts


def build_sharded_store(
    paths,
    table: SupernodeTable,
    out_path: str,
    shards: int = 4,
    processes: int = 1,
    partition: str = PARTITION_RANGE,
    backend: str = "rolling",
    order=None,
) -> str:
    """Compress *paths* against *table* into a sharded store at *out_path*.

    Per-shard compression *and serialization* fan out over *processes*
    workers (the FlatCorpus shipping path of
    :func:`repro.core.parallel.compress_corpora`, shipping finished v2
    blobs back), then each shard is written as a self-contained v2 file
    next to the manifest.  Output is bit-identical to the sequential monolithic
    build for every ``(partition, shards, processes)`` combination, because
    compression is a pure per-path function of ``(path, table)``.

    :param paths: any path iterable or a :class:`FlatCorpus` — in
        *original* vertex ids; the order (if any) is applied here.
    :param table: the (already built) shared supernode table — built over
        the *reordered* corpus when *order* is given.
    :param out_path: manifest file to write; shard files land beside it as
        ``<stem>.shard-00000.rpc2`` etc.
    :param order: optional :class:`~repro.paths.reorder.VertexOrder`.  The
        corpus is relabelled before partitioning, and every shard blob is
        stamped with the order section
        (:func:`~repro.core.serialize.append_order_section`) so each shard
        file stays self-contained — a shard opened on its own inverts ids
        exactly like the manifest-routed store does.
    :returns: *out_path*, for chaining into :meth:`ShardedPathStore.open`.
    """
    from repro.core.parallel import compress_corpora

    corpus = as_flat_corpus(paths)
    if order is not None:
        corpus = order.transform_corpus(corpus)
    obs = get_active()
    if obs is None:
        return _build_sharded(
            corpus, table, out_path, shards, processes, partition, backend, order
        )
    with obs.tracer.span(catalog.SPAN_SHARD_BUILD) as span, obs.registry.timeit(
        catalog.SHARD_BUILD_SECONDS
    ):
        manifest_path = _build_sharded(
            corpus, table, out_path, shards, processes, partition, backend, order
        )
        if span is not None:
            span.add("shards", shards)
            span.add("paths", len(corpus))
            span.add("processes", processes)
    obs.registry.counter(catalog.SHARD_BUILT).inc(shards)
    return manifest_path


def _build_sharded(
    corpus: FlatCorpus,
    table: SupernodeTable,
    out_path: str,
    shards: int,
    processes: int,
    partition: str,
    backend: str,
    order=None,
) -> str:
    from repro.core.parallel import _compress_corpora_blobs
    from repro.core.serialize import append_order_section

    parts = partition_corpus(corpus, shards, partition)
    blobs = _compress_corpora_blobs(parts, table, processes=processes, backend=backend)
    table_crc = zlib.crc32(dumps_table(table))
    directory = os.path.dirname(os.path.abspath(out_path))
    stem = os.path.splitext(os.path.basename(out_path))[0]
    infos: List[ShardInfo] = []
    start = 0
    for index, (blob, count) in enumerate(blobs):
        filename = shard_filename(stem, index)
        # Workers ship plain (unordered) blobs; the coordinator stamps the
        # store-wide order on each so shard files stay self-contained.
        blob = append_order_section(blob, order)
        _write_file_atomic(os.path.join(directory, filename), blob)
        infos.append(
            ShardInfo(
                file=filename,
                start=start if partition == PARTITION_RANGE else None,
                count=count,
                table_crc=table_crc,
            )
        )
        start += count
    manifest = ShardManifest(partition, infos)
    _write_file_atomic(out_path, dumps_manifest(manifest))
    return out_path


# -- streaming ingest -------------------------------------------------------------


class ShardedIngest:
    """Constant-memory streaming writer: memtable in, immutable shards out.

    The LSM-style append path of the sharded store.  Arriving paths are
    compressed immediately against a frozen table inside a
    :class:`~repro.core.stream.StreamingCompressor` memtable; every
    ``memtable_paths`` ingests the memtable is *sealed* — drained to an
    immutable v2 shard file and recorded in the manifest — so resident
    memory is bounded by ``memtable + table`` regardless of how many paths
    ever flow through.  Global path ids are assigned in arrival order and
    stable forever (the manifest's ``range`` partition).

    When the stream's drift watch trips at seal time and *refit_on_drift*
    is set, the next memtable's table is refit from the freshest sealed
    paths (``shard.refits`` counts these); older shards keep their original
    tables — every shard is self-contained, so readers never care.

    With *background* sealing, the serialize-and-write of a sealed memtable
    runs on a worker thread (at most one in flight) while ingestion
    continues — the "stream mode that simultaneously handles reading and
    processing" of the paper's Exp-2.

    :param out_path: manifest file; shard files land beside it.
    :param config: OFFS configuration for table (re)fits.
    :param train_after: warm-up paths buffered before the first table.
    :param memtable_paths: seal threshold, in paths.
    :param window: drift-detection window, in paths.
    :param refit_ratio: drift threshold (see ``StreamingCompressor``).
    :param refit_on_drift: refit the table when sealing a drifted memtable.
    :param base_id: explicit supernode id base for every table fit.
    :param background: serialize/write sealed shards on a worker thread.
    """

    def __init__(
        self,
        out_path: str,
        config=None,
        train_after: int = 1000,
        memtable_paths: int = 4096,
        window: int = 500,
        refit_ratio: float = 0.5,
        refit_on_drift: bool = False,
        base_id: Optional[int] = None,
        background: bool = False,
    ) -> None:
        from repro.core.stream import StreamingCompressor

        if memtable_paths < 1:
            raise InvalidInputError("memtable_paths must be >= 1")
        if train_after > memtable_paths:
            raise InvalidInputError(
                f"train_after ({train_after}) cannot exceed memtable_paths "
                f"({memtable_paths}): the warm-up must fit in one memtable"
            )
        self.out_path = out_path
        self.memtable_paths = memtable_paths
        self.refit_on_drift = refit_on_drift
        self.background = background
        self.refits = 0
        self._stream_args = dict(
            config=config,
            train_after=train_after,
            base_id=base_id,
            window=window,
            refit_ratio=refit_ratio,
        )
        self._stream = StreamingCompressor(**self._stream_args)
        self._memtable_raw: List[Tuple[int, ...]] = []
        self._sealed_paths = 0
        self._infos: List[ShardInfo] = []
        self._directory = os.path.dirname(os.path.abspath(out_path))
        self._stem = os.path.splitext(os.path.basename(out_path))[0]
        self._pending: Optional[threading.Thread] = None
        self._closed = False

    # -- ingestion ------------------------------------------------------------------

    def feed(self, path: Sequence[int]) -> Optional[int]:
        """Ingest one path; returns its *global* id (``None`` in warm-up).

        Warm-up ids are assigned at table-train time in arrival order, so
        they are stable either way.
        """
        if self._closed:
            raise StateError("ShardedIngest is closed")
        path = tuple(path)
        self._memtable_raw.append(path)
        local = self._stream.feed(path)
        obs = get_active()
        if obs is not None:
            obs.registry.counter(catalog.SHARD_INGESTED_PATHS).inc()
            obs.registry.set_gauge(catalog.SHARD_MEMTABLE_PATHS, len(self._stream))
        if self._stream.trained and len(self._stream.store) >= self.memtable_paths:
            self._seal()
            return self._sealed_paths - 1 if local is not None else None
        return None if local is None else self._sealed_paths + local

    def feed_many(self, paths: Iterable[Sequence[int]]) -> List[Optional[int]]:
        """Ingest many paths; returns their global ids."""
        return [self.feed(p) for p in paths]

    def __len__(self) -> int:
        """Paths ingested so far (sealed + memtable + warm-up buffer)."""
        return self._sealed_paths + len(self._stream)

    @property
    def sealed_paths(self) -> int:
        """Paths already persisted to immutable shards."""
        return self._sealed_paths

    @property
    def shard_count(self) -> int:
        return len(self._infos)

    @property
    def drifted(self) -> bool:
        """The live memtable's drift flag (see ``StreamingCompressor``)."""
        return self._stream.drifted

    # -- sealing --------------------------------------------------------------------

    def _seal(self) -> None:
        """Drain the memtable to an immutable shard and record it."""
        stream = self._stream
        if not stream.trained:
            if len(stream) == 0:
                return
            stream.train_now()
        tokens = stream.drain_tokens()
        if not tokens:
            return
        table = stream.store.table
        drifted = stream.drifted
        sealed_raw = self._memtable_raw
        self._memtable_raw = []
        index = len(self._infos)
        info = ShardInfo(
            file=shard_filename(self._stem, index),
            start=self._sealed_paths,
            count=len(tokens),
            table_crc=zlib.crc32(dumps_table(table)),
        )
        self._infos.append(info)
        self._sealed_paths += len(tokens)
        obs = get_active()
        if obs is not None:
            obs.registry.counter(catalog.SHARD_SEALED).inc()
            obs.registry.set_gauge(catalog.SHARD_MEMTABLE_PATHS, 0)
        manifest_blob = dumps_manifest(ShardManifest(PARTITION_RANGE, self._infos))
        shard_file = os.path.join(self._directory, info.file)

        def write() -> None:
            _write_file_atomic(shard_file, dumps_store_v2_tokens(table, tokens))
            _write_file_atomic(self.out_path, manifest_blob)

        self._join_pending()
        if self.background:
            self._pending = threading.Thread(target=write, name="repro-shard-seal")
            self._pending.start()
        elif obs is not None:
            with obs.tracer.span(catalog.SPAN_SHARD_SEAL) as span, obs.registry.timeit(
                catalog.SHARD_SEAL_SECONDS
            ):
                write()
                if span is not None:
                    span.add("paths", info.count)
                    span.add("shard", index)
        else:
            write()
        if self.refit_on_drift and drifted:
            self._refit(sealed_raw)

    def _refit(self, training_paths: List[Tuple[int, ...]]) -> None:
        """Train the next memtable's table on the freshest sealed paths."""
        from repro.core.stream import StreamingCompressor

        if not training_paths:
            return
        args = dict(self._stream_args)
        args["train_after"] = len(training_paths)
        fresh = StreamingCompressor(**args)
        fresh.feed_many(training_paths)
        # The training paths are already persisted in the shard just
        # sealed; the warm-up flush only seeded the new table and drift
        # baseline, so its tokens are discarded.
        fresh.drain_tokens()
        self._stream = fresh
        self.refits += 1
        obs = get_active()
        if obs is not None:
            obs.registry.counter(catalog.SHARD_REFITS).inc()

    def _join_pending(self) -> None:
        if self._pending is not None:
            self._pending.join()
            self._pending = None

    # -- lifecycle ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> str:
        """Seal the remainder, write the final manifest; returns its path.

        Idempotent.  An ingest that never saw a path still produces a
        valid (empty) manifest.
        """
        if self._closed:
            return self.out_path
        if len(self._stream) > 0:
            self._seal()
        self._join_pending()
        if not os.path.exists(self.out_path) or not self._infos:
            _write_file_atomic(
                self.out_path, dumps_manifest(ShardManifest(PARTITION_RANGE, self._infos))
            )
        self._closed = True
        return self.out_path

    def __enter__(self) -> "ShardedIngest":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"ShardedIngest(out={self.out_path!r}, shards={self.shard_count}, "
            f"sealed={self._sealed_paths}, memtable={len(self._stream)}, {state})"
        )


# -- magic-sniffing loader --------------------------------------------------------


def open_store(path: str):
    """Open any archive by magic sniff: v1 blob, v2 mmap, or shard manifest.

    * ``RPCS`` — full in-memory parse (:func:`~repro.core.serialize.loads_store`);
    * ``RPC2`` — :class:`~repro.core.mapped.MappedPathStore` (O(1) open);
    * ``RPSM`` — :class:`ShardedPathStore` (fan-out over the manifest).
    """
    from repro.core.serialize import STORE_V2_MAGIC, loads_store

    with open(path, "rb") as fh:
        magic = fh.read(4)
        if len(magic) < 4:
            raise TruncatedDataError(
                f"archive {path!r} holds {len(magic)} bytes, too short for "
                "any store magic (truncated at byte offset 0)"
            )
        if magic not in (MANIFEST_MAGIC, STORE_V2_MAGIC):
            return loads_store(magic + fh.read())
    if magic == MANIFEST_MAGIC:
        return ShardedPathStore.open(path)
    return MappedPathStore.open(path)
