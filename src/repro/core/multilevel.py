"""The two-level hash matcher of Algorithm 7 (``LongestPrefix*``).

The flat hash probe of Algorithm 6 re-hashes a shared prefix once per probed
length — Example 3 counts 35 hashed vertices for a failed length-8 probe.
Algorithm 7 splits every candidate longer than ``alpha`` (α) into a *primary*
key, its first α vertices, and a *secondary* key, the remainder:

* ``H1`` holds all candidates of length ≤ α directly.
* ``H2`` maps each primary key to a small hash table of secondary keys.

A probe for a long match hashes the primary key once; only the (short) suffix
is re-hashed while shrinking, giving the
``O(max(|P|·α², |P|·(δ−α)²))`` bound of Lemma 3 — minimized near α = δ/2
(the paper deploys α = 5 with δ = 8).

Match *results* are identical to the flat backend; only probe cost differs.
Algorithm 7's side effect of promoting a matched primary key into ``H1``
(its lines 12–13) is available via ``promote_prefixes=True`` and is ablated
in ``benchmarks/bench_ablation_matchers.py``; it is off by default so all
backends stay result-identical.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.core.errors import InvalidInputError
from repro.core.matcher import CandidateSet, Subpath


class MultiLevelCandidates(CandidateSet):
    """Candidate set indexed by the Algorithm 7 two-level hash scheme.

    :param alpha: primary-key length α (candidates of length ≤ α live in the
        one-level table).
    :param promote_prefixes: when ``True``, a successful primary-key hit whose
        suffix probe fails registers the α-prefix itself as a candidate, as
        the pseudocode's lines 12–13 do.
    """

    def __init__(self, alpha: int = 5, promote_prefixes: bool = False) -> None:
        super().__init__()
        if alpha < 1:
            raise InvalidInputError("alpha must be >= 1")
        self.alpha = alpha
        self.promote_prefixes = promote_prefixes
        self._h1: Dict[Subpath, int] = {}
        self._h2: Dict[Subpath, Dict[Subpath, int]] = {}
        self._max_len = 0

    # -- CandidateSet interface -------------------------------------------------

    def add(self, seq: Sequence[int], weight: int = 1) -> None:
        sp = tuple(seq)
        if len(sp) < 2:
            raise InvalidInputError(f"candidates need >= 2 vertices, got {sp!r}")
        if len(sp) <= self.alpha:
            self._h1[sp] = self._h1.get(sp, 0) + weight
        else:
            primary, secondary = sp[: self.alpha], sp[self.alpha :]
            bucket = self._h2.setdefault(primary, {})
            bucket[secondary] = bucket.get(secondary, 0) + weight
        if len(sp) > self._max_len:
            self._max_len = len(sp)

    def weight(self, seq: Sequence[int]) -> Optional[int]:
        sp = tuple(seq)
        if len(sp) <= self.alpha:
            return self._h1.get(sp)
        bucket = self._h2.get(sp[: self.alpha])
        if bucket is None:
            return None
        return bucket.get(sp[self.alpha :])

    def discard(self, seq: Sequence[int]) -> None:
        sp = tuple(seq)
        if len(sp) <= self.alpha:
            self._h1.pop(sp, None)
            return
        primary = sp[: self.alpha]
        bucket = self._h2.get(primary)
        if bucket is not None:
            bucket.pop(sp[self.alpha :], None)
            if not bucket:
                del self._h2[primary]

    def longest_match(self, path: Sequence[int], pos: int, cap: int) -> int:
        limit = min(cap, self._max_len, len(path) - pos)
        alpha = self.alpha
        stats = self.stats
        if limit > alpha:
            # One primary-key hash of alpha vertices...
            stats.probes += 1
            stats.hashed_vertices += alpha
            primary = tuple(path[pos : pos + alpha])
            bucket = self._h2.get(primary)
            if bucket is not None:
                # ...then only the shrinking suffix is re-hashed.
                for length in range(limit, alpha, -1):
                    stats.probes += 1
                    stats.hashed_vertices += length - alpha
                    if tuple(path[pos + alpha : pos + length]) in bucket:
                        return length
                if self.promote_prefixes:
                    # Algorithm 7 lines 12-13: the primary key becomes a
                    # candidate of its own right.
                    self._h1[primary] = self._h1.get(primary, 0) + 1
                    return alpha
            limit = min(limit, alpha)
        for length in range(limit, 1, -1):
            stats.probes += 1
            stats.hashed_vertices += length
            if tuple(path[pos : pos + length]) in self._h1:
                return length
        return 1

    def items(self) -> Iterator[Tuple[Subpath, int]]:
        for sp, w in list(self._h1.items()):
            yield sp, w
        for primary, bucket in list(self._h2.items()):
            for secondary, w in list(bucket.items()):
                yield primary + secondary, w

    def __len__(self) -> int:
        return len(self._h1) + sum(len(b) for b in self._h2.values())

    def __repr__(self) -> str:
        return (
            f"MultiLevelCandidates(alpha={self.alpha}, h1={len(self._h1)}, "
            f"h2_buckets={len(self._h2)})"
        )

    # -- introspection ------------------------------------------------------------

    def probe_cost_bound(self, delta: int) -> int:
        """Lemma 3's per-position hashed-vertex bound for a given δ.

        Provided for the ablation benchmark's commentary: the flat scheme
        hashes ``O(δ²)`` vertices per failed probe, this one
        ``O(max(α², (δ-α)²))`` plus one α-vertex primary hash.
        """
        suffix = delta - self.alpha
        return max(self.alpha * self.alpha, suffix * suffix) + self.alpha
