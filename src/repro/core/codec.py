"""The common codec interface every compressor in this repository implements.

The paper compares compressors that produce very different artifacts —
integer streams with a supernode table (OFFS, RSS, GFS) versus opaque byte
blobs with a trained dictionary (Dlz4) — under one set of measures
(CR / CS / DS / PDS, Section VI-B).  :class:`PathCodec` is the contract that
makes that comparison honest: every codec must

* ``fit`` on a dataset (train its rule ``R``),
* ``compress_path`` / ``decompress_path`` losslessly per path, and
* account its sizes in real bytes via an
  :class:`~repro.paths.encoding.Encoding`.

:class:`TableCodec` implements the whole contract for any compressor whose
rule is a supernode table; subclasses only choose *which* table to build.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.compressor import compress_path, decompress_path
from repro.core.errors import NotFittedError
from repro.core.matcher import CandidateSet, static_matcher_from_table
from repro.core.supernode_table import SupernodeTable
from repro.paths.encoding import DEFAULT_ENCODING, Encoding


class PathCodec(ABC):
    """Abstract lossless per-path compressor.

    ``name`` labels the codec in benchmark reports.  The compressed token
    type is codec-specific (integer tuples for dictionary codecs, bytes for
    generic ones); callers must treat it as opaque and round-trip it through
    the same codec instance.
    """

    name: str = "codec"

    @abstractmethod
    def fit(self, dataset) -> "PathCodec":
        """Train the codec's rule on *dataset*; returns ``self`` for chaining."""

    @abstractmethod
    def compress_path(self, path: Sequence[int]) -> Any:
        """Compress one path to an opaque token."""

    @abstractmethod
    def decompress_path(self, token: Any) -> Tuple[int, ...]:
        """Restore the original path from a token."""

    @abstractmethod
    def rule_size_bytes(self, encoding: Encoding = DEFAULT_ENCODING) -> int:
        """Byte cost of the rule ``R`` (table / dictionary) under *encoding*."""

    @abstractmethod
    def compressed_size_bytes(self, token: Any, encoding: Encoding = DEFAULT_ENCODING) -> int:
        """Byte cost of one compressed token under *encoding*."""

    # -- conveniences -----------------------------------------------------------

    def compress_dataset(self, dataset) -> List[Any]:
        """Compress every path of *dataset* in order."""
        return [self.compress_path(p) for p in dataset]

    def decompress_dataset(self, tokens: Sequence[Any]) -> List[Tuple[int, ...]]:
        """Decompress a list of tokens in order."""
        return [self.decompress_path(t) for t in tokens]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class TableCodec(PathCodec):
    """A codec whose rule is a :class:`SupernodeTable`.

    Subclasses implement :meth:`build_table`; compression, decompression and
    size accounting are shared, so RSS, GFS and OFFS differ *only* in how
    they pick supernodes — exactly the comparison the paper makes.
    """

    def __init__(self, matcher_backend: str = "hash", base_id: Optional[int] = None) -> None:
        #: First supernode id.  ``None`` lets ``fit`` derive it from the
        #: training data; set it explicitly when the training set is a sample
        #: of a larger universe (otherwise unseen larger vertex ids would
        #: collide with the supernode id space at compression time).
        self.base_id = base_id
        self.matcher_backend = matcher_backend
        self._table: Optional[SupernodeTable] = None
        self._matcher: Optional[CandidateSet] = None

    @abstractmethod
    def build_table(self, dataset) -> SupernodeTable:
        """Construct this codec's supernode table for *dataset*."""

    # -- PathCodec implementation --------------------------------------------------

    def fit(self, dataset) -> "TableCodec":
        self._table = self.build_table(dataset)
        self._matcher = static_matcher_from_table(self._table, self.matcher_backend)
        return self

    @property
    def table(self) -> SupernodeTable:
        """The trained table; raises :class:`NotFittedError` before ``fit``."""
        if self._table is None:
            raise NotFittedError(f"{self.name}: call fit() before (de)compressing")
        return self._table

    def compress_path(self, path: Sequence[int]) -> Tuple[int, ...]:
        return compress_path(path, self.table, self._matcher)

    def decompress_path(self, token: Sequence[int]) -> Tuple[int, ...]:
        return decompress_path(token, self.table)

    def rule_size_bytes(self, encoding: Encoding = DEFAULT_ENCODING) -> int:
        """Table cost: per entry, a length marker plus the subpath ids.

        Matches :meth:`SupernodeTable.rule_symbol_count`; supernode ids are
        implicit because they are contiguous from ``base_id``.
        """
        table = self.table
        total = encoding.size_of_value(table.base_id)
        for _, subpath in table:
            total += encoding.size_of_value(len(subpath))
            total += encoding.size_of(subpath)
        return total

    def compressed_size_bytes(
        self, token: Sequence[int], encoding: Encoding = DEFAULT_ENCODING
    ) -> int:
        return encoding.size_of_value(len(token)) + encoding.size_of(token)
