"""Streaming ingestion — the "more advanced stream mode" the paper prefers.

Exp-2 notes that at Alibaba's scale "it is preferable to adopt a more
advanced stream mode that simultaneously handles reading and processing".
:class:`StreamingCompressor` is that mode for this library:

* **warm-up** — the first ``train_after`` paths are buffered uncompressed;
  when the threshold is reached a supernode table is built from them and
  the buffer is flushed through it (this mirrors Fig. 6c's "table based on
  first arriving samples");
* **steady state** — each arriving path is compressed immediately against
  the frozen table;
* **drift watch** — the compressor tracks a moving symbol-level ratio over
  the last ``window`` paths; if it degrades below ``refit_ratio`` of the
  ratio observed at training time, ``drifted`` turns on so the operator can
  schedule a refit (tables stay immutable — compressed data must remain
  decodable, so refitting means starting a new archive segment).

With :mod:`repro.obs` active the drift watch is observable, not just a
boolean: every steady-state ingest publishes ``stream.drift_ratio`` (the
windowed ratio relative to the training ratio — 1.0 means "compressing as
well as at train time") and each False→True drift transition increments
``stream.drifted``, so compaction/refit decisions leave a metric trail.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional, Sequence, Tuple

from repro.core.builder import TableBuilder
from repro.core.config import OFFSConfig
from repro.core.errors import InvalidInputError, StateError
from repro.core.store import CompressedPathStore
from repro.obs import catalog
from repro.obs.runtime import get_active
from repro.paths.dataset import PathDataset


class StreamingCompressor:
    """Compresses an unbounded path stream with per-path granularity.

    :param config: OFFS configuration for the warm-up table build.
    :param train_after: number of warm-up paths buffered before the table
        is constructed.
    :param base_id: explicit supernode id base; required knowledge when the
        stream may later carry vertex ids the warm-up never saw.  Defaults
        to a generous margin above the warm-up maximum.
    :param window: size of the drift-detection window, in paths.
    :param refit_ratio: drift threshold — ``drifted`` turns on when the
        windowed symbol ratio falls below ``refit_ratio × training ratio``.
    """

    def __init__(
        self,
        config: Optional[OFFSConfig] = None,
        train_after: int = 1000,
        base_id: Optional[int] = None,
        window: int = 500,
        refit_ratio: float = 0.5,
    ) -> None:
        if train_after < 1:
            raise InvalidInputError("train_after must be >= 1")
        if window < 1:
            raise InvalidInputError("window must be >= 1")
        if not 0.0 < refit_ratio <= 1.0:
            raise InvalidInputError("refit_ratio must be in (0, 1]")
        self.config = config or OFFSConfig(sample_exponent=0)
        self.train_after = train_after
        self.window = window
        self.refit_ratio = refit_ratio
        self._explicit_base_id = base_id
        self._buffer: List[Tuple[int, ...]] = []
        self._store: Optional[CompressedPathStore] = None
        self._training_ratio: Optional[float] = None
        # Manual eviction (rather than deque(maxlen=...)) so the window's
        # raw/compressed sums stay incremental: the drift gauge is updated
        # on every steady-state ingest and must not rescan the window.
        self._recent: Deque[Tuple[int, int]] = deque()
        self._recent_raw = 0
        self._recent_compressed = 0
        self._was_drifted = False
        self.paths_seen = 0

    # -- state ---------------------------------------------------------------------

    @property
    def trained(self) -> bool:
        """``True`` once the warm-up table exists."""
        return self._store is not None

    @property
    def store(self) -> CompressedPathStore:
        """The underlying compressed store (after training)."""
        if self._store is None:
            raise StateError(
                "stream is still warming up; feed it at least "
                f"{self.train_after} paths or call train_now()"
            )
        return self._store

    @property
    def drifted(self) -> bool:
        """``True`` when the recent symbol ratio fell below the refit bar."""
        if self._training_ratio is None or len(self._recent) < self.window:
            return False
        if self._recent_compressed == 0:
            return False
        windowed = self._recent_raw / self._recent_compressed
        return windowed < self.refit_ratio * self._training_ratio

    @property
    def drift_ratio(self) -> Optional[float]:
        """Windowed symbol ratio relative to the training ratio.

        1.0 means the last ``window`` paths compress exactly as well as the
        warm-up did; values below :attr:`refit_ratio` mean :attr:`drifted`.
        ``None`` until a full window of steady-state traffic exists.
        """
        if (
            self._training_ratio is None
            or not self._training_ratio
            or len(self._recent) < self.window
            or self._recent_compressed == 0
        ):
            return None
        windowed = self._recent_raw / self._recent_compressed
        return windowed / self._training_ratio

    # -- ingestion -------------------------------------------------------------------

    def feed(self, path: Sequence[int]) -> Optional[int]:
        """Ingest one path.

        Returns the assigned path id once the stream is trained; during
        warm-up returns ``None`` (ids are assigned at flush, in arrival
        order, so they are stable either way).
        """
        path = tuple(path)
        self.paths_seen += 1
        if self._store is None:
            self._buffer.append(path)
            if len(self._buffer) >= self.train_after:
                self.train_now()
            return None
        return self._ingest(path)

    def feed_many(self, paths: Iterable[Sequence[int]]) -> List[Optional[int]]:
        """Ingest many paths; returns their ids (``None`` during warm-up)."""
        return [self.feed(p) for p in paths]

    def train_now(self) -> None:
        """Force table construction from whatever has been buffered."""
        if self._store is not None:
            raise StateError("stream is already trained")
        if not self._buffer:
            raise StateError("nothing buffered to train on")
        warmup = PathDataset(self._buffer, name="warmup")
        base_id = self._explicit_base_id
        if base_id is None:
            # Generous head-room: future paths will carry unseen ids.
            base_id = max(1, (warmup.max_vertex_id() + 1) * 4)
        table, _ = TableBuilder(self.config).build(warmup, base_id=base_id)
        self._store = CompressedPathStore(table)
        buffered, self._buffer = self._buffer, []
        for path in buffered:
            self._ingest(path)
        self._training_ratio = (
            (self._recent_raw / self._recent_compressed)
            if self._recent_compressed
            else 1.0
        )

    def _ingest(self, path: Tuple[int, ...]) -> int:
        assert self._store is not None
        path_id = self._store.append(path)
        token = self._store.token(path_id)
        self._recent.append((len(path), len(token)))
        self._recent_raw += len(path)
        self._recent_compressed += len(token)
        while len(self._recent) > self.window:
            old_raw, old_compressed = self._recent.popleft()
            self._recent_raw -= old_raw
            self._recent_compressed -= old_compressed
        self._publish_drift()
        return path_id

    def _publish_drift(self) -> None:
        """Surface the drift watch on the active registry (if any).

        ``stream.drift_ratio`` tracks the windowed-vs-training ratio;
        ``stream.drifted`` counts False→True transitions only, so the
        counter reads as "number of drift events", not "paths spent
        drifted".
        """
        now_drifted = self.drifted
        obs = get_active()
        if obs is not None:
            ratio = self.drift_ratio
            if ratio is not None:
                obs.registry.set_gauge(catalog.STREAM_DRIFT_RATIO, ratio)
            if now_drifted and not self._was_drifted:
                obs.registry.counter(catalog.STREAM_DRIFTED).inc()
        self._was_drifted = now_drifted

    # -- compaction support ----------------------------------------------------------

    def drain_tokens(self) -> List[Tuple[int, ...]]:
        """Remove and return every compressed token accumulated so far.

        The LSM-style seal primitive used by
        :class:`~repro.core.sharded.ShardedIngest`: the caller persists the
        returned tokens (with :attr:`store`'s frozen table) as an immutable
        shard, and the memtable empties while the table, drift window and
        training baseline stay intact.  Path ids restart at 0 after a
        drain — callers that hand out global ids track their own offset.

        :raises StateError: during warm-up (nothing is compressed yet).
        """
        store = self.store
        tokens = list(store._tokens)
        store._tokens.clear()
        return tokens

    # -- reading ----------------------------------------------------------------------

    def retrieve(self, path_id: int) -> Tuple[int, ...]:
        """Random-access retrieval from the live archive."""
        return self.store.retrieve(path_id)

    def __len__(self) -> int:
        return (len(self._store) if self._store else 0) + len(self._buffer)

    def __repr__(self) -> str:
        state = "trained" if self.trained else f"warming({len(self._buffer)})"
        return f"StreamingCompressor({state}, seen={self.paths_seen})"


class AutoSegmentingStream:
    """The closed operational loop: stream, detect drift, rotate, repeat.

    Wraps a :class:`~repro.core.segment.SegmentedArchive` and drives its
    rotations from the same windowed ratio monitor
    :class:`StreamingCompressor` uses.  Each arriving path is compressed
    into the active segment; when the recent window compresses markedly
    worse than the segment did at its start, a new segment is trained on
    the most recent paths and subsequent traffic lands there.  Old
    segments stay decodable; global ids are stable.

    :param config: OFFS configuration for segment tables.
    :param base_id: shared supernode id base (must exceed every vertex id).
    :param warmup: paths buffered before the first segment trains, and
        recent-path count used to train each rotation.
    :param window: drift-detection window, in paths.
    :param refit_ratio: rotate when the windowed symbol ratio falls below
        ``refit_ratio ×`` the segment's initial ratio.
    :param min_segment_paths: never rotate a segment younger than this
        (guards against rotation thrash on bursty traffic).
    """

    def __init__(
        self,
        config: Optional[OFFSConfig] = None,
        base_id: int = 1 << 30,
        warmup: int = 500,
        window: int = 300,
        refit_ratio: float = 0.6,
        min_segment_paths: int = 600,
    ) -> None:
        from repro.core.segment import SegmentedArchive

        if warmup < 1 or window < 1 or min_segment_paths < 1:
            raise InvalidInputError("warmup, window and min_segment_paths must be >= 1")
        if not 0.0 < refit_ratio <= 1.0:
            raise InvalidInputError("refit_ratio must be in (0, 1]")
        self.archive = SegmentedArchive(
            config=config or OFFSConfig(sample_exponent=0), base_id=base_id
        )
        self.warmup = warmup
        self.window = window
        self.refit_ratio = refit_ratio
        self.min_segment_paths = min_segment_paths
        self._buffer: List[Tuple[int, ...]] = []
        self._recent: Deque[Tuple[int, int]] = deque(maxlen=window)
        self._segment_ratio: Optional[float] = None
        self._segment_paths = 0
        self.rotations = 0

    def feed(self, path: Sequence[int]) -> Optional[int]:
        """Ingest one path; returns its global id (``None`` during warm-up)."""
        path = tuple(path)
        if self.archive.segment_count == 0:
            self._buffer.append(path)
            if len(self._buffer) >= self.warmup:
                self.archive.start_segment(self._buffer)
                buffered, self._buffer = self._buffer, []
                last = None
                for p in buffered:
                    last = self._ingest(p)
                self._seal_baseline()
                return last
            return None
        gid = self._ingest(path)
        self._maybe_rotate(path)
        return gid

    def feed_many(self, paths: Iterable[Sequence[int]]) -> List[Optional[int]]:
        """Ingest many paths; returns their global ids."""
        return [self.feed(p) for p in paths]

    def _ingest(self, path: Tuple[int, ...]) -> int:
        gid = self.archive.append(path)
        token_len = len(self.archive.segments()[-1].token(
            len(self.archive.segments()[-1]) - 1
        ))
        self._recent.append((len(path), token_len))
        self._segment_paths += 1
        return gid

    def _seal_baseline(self) -> None:
        raw = sum(r for r, _ in self._recent)
        compressed = sum(c for _, c in self._recent)
        self._segment_ratio = (raw / compressed) if compressed else 1.0

    def _windowed_ratio(self) -> Optional[float]:
        if len(self._recent) < self.window:
            return None
        raw = sum(r for r, _ in self._recent)
        compressed = sum(c for _, c in self._recent)
        return (raw / compressed) if compressed else None

    def _maybe_rotate(self, latest: Tuple[int, ...]) -> None:
        if self._segment_ratio is None:
            # A fresh segment's baseline seals once a full window of its
            # own traffic has been observed.
            if len(self._recent) >= min(self.window, self.min_segment_paths):
                self._seal_baseline()
            return
        if self._segment_paths < self.min_segment_paths:
            return
        current = self._windowed_ratio()
        if current is None:
            return
        if current < self.refit_ratio * self._segment_ratio:
            # Train the new segment on the drifted window's paths.
            recent_count = min(self.window, len(self.archive))
            start = len(self.archive) - recent_count
            training = self.archive.retrieve_many(
                range(start, len(self.archive))
            )
            self.archive.rotate(training)
            self.rotations += 1
            self._segment_paths = 0
            self._recent.clear()
            self._segment_ratio = None
            # The first windowful in the new segment sets its baseline via
            # _seal_baseline once enough paths arrive.

    def retrieve(self, global_id: int) -> Tuple[int, ...]:
        """Random-access retrieval by global id."""
        return self.archive.retrieve(global_id)

    def __len__(self) -> int:
        return len(self.archive) + len(self._buffer)

    def __repr__(self) -> str:
        return (
            f"AutoSegmentingStream(segments={self.archive.segment_count}, "
            f"paths={len(self)}, rotations={self.rotations})"
        )
