"""Trie-backed candidate set — the Section IV-D "possible optimization" (2).

The paper sketches, as future work, replacing the hash tables with a prefix
tree: "each node in the tree is composed of an index of the vertex and
pointers to the next vertices in subpaths. ... the upper bound of each prefix
match is optimized from O(δ²) to O(δ)".  This module implements that design.

A probe walks forward from the query position, following one child pointer
per vertex and remembering the deepest node that terminates a candidate — a
single left-to-right scan, so each position costs at most δ child lookups
regardless of how many lengths would have to be probed by a hash scheme.

Match results are identical to the other backends; the ablation benchmark
``benchmarks/bench_ablation_matchers.py`` measures the probe-cost difference.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import InvalidInputError
from repro.core.matcher import CandidateSet, Subpath


class _TrieNode:
    """One vertex step in the candidate trie."""

    __slots__ = ("children", "weight", "terminal")

    def __init__(self) -> None:
        self.children: Dict[int, _TrieNode] = {}
        self.weight = 0
        self.terminal = False


class TrieCandidates(CandidateSet):
    """Candidate set stored as a forward prefix tree."""

    def __init__(self) -> None:
        super().__init__()
        self._root = _TrieNode()
        self._count = 0
        self._max_len = 0
        # self.stats (from the base class): the trie's unit of work is one
        # child-pointer dereference per vertex (the §IV-D O(δ) bound).

    def _node_for(self, seq: Sequence[int], create: bool) -> Optional[_TrieNode]:
        node = self._root
        for v in seq:
            child = node.children.get(v)
            if child is None:
                if not create:
                    return None
                child = _TrieNode()
                node.children[v] = child
            node = child
        return node

    # -- CandidateSet interface ---------------------------------------------------

    def add(self, seq: Sequence[int], weight: int = 1) -> None:
        sp = tuple(seq)
        if len(sp) < 2:
            raise InvalidInputError(f"candidates need >= 2 vertices, got {sp!r}")
        node = self._node_for(sp, create=True)
        assert node is not None
        if not node.terminal:
            node.terminal = True
            self._count += 1
            if len(sp) > self._max_len:
                self._max_len = len(sp)
        node.weight += weight

    def weight(self, seq: Sequence[int]) -> Optional[int]:
        node = self._node_for(tuple(seq), create=False)
        if node is None or not node.terminal:
            return None
        return node.weight

    def discard(self, seq: Sequence[int]) -> None:
        # Unmark the terminal; dangling interior nodes are pruned lazily by
        # compact() since eager unlinking needs parent back-pointers.
        node = self._node_for(tuple(seq), create=False)
        if node is not None and node.terminal:
            node.terminal = False
            node.weight = 0
            self._count -= 1

    def longest_match(self, path: Sequence[int], pos: int, cap: int) -> int:
        limit = min(cap, self._max_len, len(path) - pos)
        node = self._root
        best = 1
        stats = self.stats
        stats.probes += 1
        for depth in range(limit):
            stats.hashed_vertices += 1
            node = node.children.get(path[pos + depth])
            if node is None:
                break
            if node.terminal and depth + 1 >= 2:
                best = depth + 1
        return best

    def items(self) -> Iterator[Tuple[Subpath, int]]:
        stack: List[Tuple[_TrieNode, Tuple[int, ...]]] = [(self._root, ())]
        collected: List[Tuple[Subpath, int]] = []
        while stack:
            node, prefix = stack.pop()
            if node.terminal:
                collected.append((prefix, node.weight))
            for v, child in node.children.items():
                stack.append((child, prefix + (v,)))
        return iter(collected)

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        return f"TrieCandidates(entries={self._count}, max_len={self._max_len})"

    # -- maintenance ----------------------------------------------------------------

    def compact(self) -> None:
        """Prune subtrees that no longer lead to any terminal node.

        ``discard`` only unmarks terminals; after heavy pruning (the top-λ
        filter) call this to release memory and shorten failed probes.
        """

        def prune(node: _TrieNode) -> bool:
            dead = [v for v, child in node.children.items() if not prune(child)]
            for v in dead:
                del node.children[v]
            return node.terminal or bool(node.children)

        prune(self._root)
        self._max_len = self._recompute_max_len()

    def _recompute_max_len(self) -> int:
        best = 0
        stack: List[Tuple[_TrieNode, int]] = [(self._root, 0)]
        while stack:
            node, depth = stack.pop()
            if node.terminal and depth > best:
                best = depth
            for child in node.children.values():
                stack.append((child, depth + 1))
        return best
