"""OFFS core: supernode tables, table construction, (de)compression, storage.

The paper's primary contribution lives here:

* :mod:`repro.core.config` — the δ/α/τ/k/β parameter set with paper defaults.
* :mod:`repro.core.supernode_table` — the rule ``R``: supernode ↔ subpath.
* :mod:`repro.core.matcher` / :mod:`~repro.core.multilevel` /
  :mod:`~repro.core.trie` — longest-prefix matching backends
  (Algorithms 6 and 7, and the §IV-D trie).
* :mod:`repro.core.builder` — ``TConstruct*`` (Algorithm 5): merge &
  expansion under practical weighted frequency.
* :mod:`repro.core.compressor` — Algorithms 1 and 2, plus the flat batch
  entry points (``compress_paths_flat`` / ``decompress_paths_flat``).
* :mod:`repro.core.flatcorpus` / :mod:`repro.core.rollhash` — the
  flat-corpus layout and the rolling-hash backend with its vectorized
  batch kernel.
* :mod:`repro.core.offs` — the :class:`OFFSCodec` façade.
* :mod:`repro.core.store` — per-path random-access compressed storage.
* :mod:`repro.core.expansion` — the memoized supernode-expansion cache
  behind the decode fast path (batch kernel, slice retrieval).
* :mod:`repro.core.serialize` — versioned binary persistence (v1 blobs
  and the mmap-friendly v2 single-file layout).
* :mod:`repro.core.mapped` — :class:`MappedPathStore`, zero-copy random
  access over v2 files.
* :mod:`repro.core.sharded` — :class:`ShardedPathStore`: parallel sharded
  builds, LSM-style streaming ingest, and manifest-routed fan-out reads.
"""

from repro.core.autotune import (
    DEFAULT_MIN_IMPORTANCE,
    TuningResult,
    ablation_overrides,
    autotune,
)
from repro.core.builder import BuildReport, TableBuilder, build_supernode_table
from repro.core.codec import PathCodec, TableCodec
from repro.core.compressor import (
    compress_dataset,
    compress_path,
    compress_paths_flat,
    decompress_dataset,
    decompress_path,
    decompress_paths_flat,
)
from repro.core.flatcorpus import FlatCorpus, as_flat_corpus
from repro.core.config import OFFSConfig
from repro.core.errors import (
    BoundsError,
    ConfigError,
    CorruptDataError,
    InvalidInputError,
    NotFittedError,
    PathIdError,
    ReproError,
    StateError,
    TableError,
    TruncatedDataError,
)
from repro.core.expansion import ExpansionCache, slice_token
from repro.core.matcher import CandidateSet, HashCandidates, make_candidate_set
from repro.core.parallel import (
    compress_corpora,
    decompress_corpora,
    parallel_compress,
    parallel_decompress,
)
from repro.core.segment import SegmentedArchive
from repro.core.stream import AutoSegmentingStream, StreamingCompressor
from repro.core.topdown import TopDownRefiner
from repro.core.validate import ValidationReport, validate_store
from repro.core.multilevel import MultiLevelCandidates
from repro.core.rollhash import FlatBatchKernel, RollingHashCandidates
from repro.core.offs import OFFSCodec
from repro.core.mapped import MappedPathStore
from repro.core.sharded import (
    ShardedIngest,
    ShardedPathStore,
    ShardManifest,
    build_sharded_store,
    open_store,
)
from repro.core.serialize import (
    dump_store_file,
    dumps_store,
    dumps_store_v2,
    dumps_table,
    load_store_file,
    loads_store,
    loads_store_v2,
    loads_table,
)
from repro.core.store import CompressedPathStore
from repro.core.supernode_table import SupernodeTable
from repro.core.trie import TrieCandidates

__all__ = [
    "DEFAULT_MIN_IMPORTANCE",
    "TuningResult",
    "ablation_overrides",
    "autotune",
    "SegmentedArchive",
    "ValidationReport",
    "validate_store",
    "BuildReport",
    "TableBuilder",
    "build_supernode_table",
    "PathCodec",
    "TableCodec",
    "compress_dataset",
    "compress_path",
    "compress_paths_flat",
    "decompress_dataset",
    "decompress_path",
    "decompress_paths_flat",
    "FlatCorpus",
    "as_flat_corpus",
    "FlatBatchKernel",
    "RollingHashCandidates",
    "OFFSConfig",
    "BoundsError",
    "ConfigError",
    "CorruptDataError",
    "InvalidInputError",
    "NotFittedError",
    "PathIdError",
    "ReproError",
    "StateError",
    "TableError",
    "CandidateSet",
    "compress_corpora",
    "decompress_corpora",
    "parallel_compress",
    "parallel_decompress",
    "AutoSegmentingStream",
    "StreamingCompressor",
    "TopDownRefiner",
    "HashCandidates",
    "MultiLevelCandidates",
    "TrieCandidates",
    "make_candidate_set",
    "OFFSCodec",
    "dump_store_file",
    "dumps_store",
    "dumps_store_v2",
    "dumps_table",
    "load_store_file",
    "loads_store",
    "loads_store_v2",
    "loads_table",
    "CompressedPathStore",
    "MappedPathStore",
    "ShardedIngest",
    "ShardedPathStore",
    "ShardManifest",
    "build_sharded_store",
    "open_store",
    "SupernodeTable",
    "TruncatedDataError",
    "ExpansionCache",
    "slice_token",
]
