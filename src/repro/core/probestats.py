"""Probe-cost accounting for the matcher backends.

The paper's §IV-C argument is about *hash cost*, not results: Example 3
counts 35 hashed vertices for a failed length-8 probe under the flat scheme
(``(8+2)(8-2+1)/2``), Example 4 bounds the two-level scheme at 14 for the
same query, and §IV-D promises ``O(δ)`` for the trie.  Wall-clock timings in
pure Python are too noisy to verify constant-factor claims, so the backends
count their work instead:

* ``probes`` — membership tests issued;
* ``hashed_vertices`` — vertices fed to hash functions (tuple construction
  and hashing are linear in length, the cost model of Lemma 3); for the
  trie, child-pointer dereferences (its per-vertex unit of work).

``tests/test_probe_costs.py`` re-derives the Examples' arithmetic from
these counters, and the A1 ablation bench reports them alongside timings.

Batch discipline: counters accumulate across ``longest_match`` calls until
explicitly zeroed — :meth:`ProbeStats.reset` between batches is the public
API for that (do not re-instantiate the stats object; backends hold a
reference to theirs for the matcher's whole lifetime).  For accounting a
bounded stretch of work without disturbing the running totals, pair
:meth:`snapshot` with :meth:`delta_since` and, when the
:mod:`repro.obs` layer is active, :meth:`publish` the delta onto its
registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class ProbeStats:
    """Work counters accumulated across ``longest_match`` calls."""

    probes: int = 0
    hashed_vertices: int = 0

    def reset(self) -> None:
        """Zero the counters (start of a new measurement batch)."""
        self.probes = 0
        self.hashed_vertices = 0

    def snapshot(self) -> "ProbeStats":
        """A copy of the current counters."""
        return ProbeStats(self.probes, self.hashed_vertices)

    def delta_since(self, earlier: "ProbeStats") -> "ProbeStats":
        """The work done since *earlier* (a prior :meth:`snapshot`)."""
        return ProbeStats(
            self.probes - earlier.probes,
            self.hashed_vertices - earlier.hashed_vertices,
        )

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dict (JSON-safe)."""
        return {"probes": self.probes, "hashed_vertices": self.hashed_vertices}

    def publish(self, registry, prefix: str = "matcher") -> None:
        """Add these counts onto a :class:`~repro.obs.registry.MetricsRegistry`.

        Emits ``<prefix>.probes`` and ``<prefix>.hashed_vertices``.  This is
        the bridge from the always-on per-backend counters to the opt-in
        observability layer: call sites snapshot before a batch and publish
        the :meth:`delta_since` after it.

        *prefix* must be registered in :data:`repro.obs.catalog.PROBE_PREFIXES`
        — an arbitrary prefix would mint counter names outside the catalog,
        invisible to the conservation tests and dashboards.
        """
        from repro.obs.catalog import probe_counter_names

        probes_name, hashed_name = probe_counter_names(prefix)
        registry.counter(probes_name).inc(self.probes)
        registry.counter(hashed_name).inc(self.hashed_vertices)

    def __add__(self, other: "ProbeStats") -> "ProbeStats":
        return ProbeStats(
            self.probes + other.probes,
            self.hashed_vertices + other.hashed_vertices,
        )
