"""Probe-cost accounting for the matcher backends.

The paper's §IV-C argument is about *hash cost*, not results: Example 3
counts 35 hashed vertices for a failed length-8 probe under the flat scheme
(``(8+2)(8-2+1)/2``), Example 4 bounds the two-level scheme at 14 for the
same query, and §IV-D promises ``O(δ)`` for the trie.  Wall-clock timings in
pure Python are too noisy to verify constant-factor claims, so the backends
count their work instead:

* ``probes`` — membership tests issued;
* ``hashed_vertices`` — vertices fed to hash functions (tuple construction
  and hashing are linear in length, the cost model of Lemma 3); for the
  trie, child-pointer dereferences (its per-vertex unit of work).

``tests/test_probe_costs.py`` re-derives the Examples' arithmetic from
these counters, and the A1 ablation bench reports them alongside timings.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ProbeStats:
    """Work counters accumulated across ``longest_match`` calls."""

    probes: int = 0
    hashed_vertices: int = 0

    def reset(self) -> None:
        """Zero the counters."""
        self.probes = 0
        self.hashed_vertices = 0

    def snapshot(self) -> "ProbeStats":
        """A copy of the current counters."""
        return ProbeStats(self.probes, self.hashed_vertices)

    def __add__(self, other: "ProbeStats") -> "ProbeStats":
        return ProbeStats(
            self.probes + other.probes,
            self.hashed_vertices + other.hashed_vertices,
        )
