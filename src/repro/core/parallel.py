"""Parallel (de)compression over processes — the paper's OpenMP claim.

Section V: "we are able to implement pleasing parallelism on a finer
granularity as small as a path in ``O(|P|·δ²/p)`` on a p-core machine", and
likewise ``O(|P|/p)`` for decompression.  Both algorithms are pure functions
of (path, table), so the parallel scheme is embarrassing: chunk the input,
ship the table to each worker once, map.

Implementation notes:

* ``multiprocessing`` with an initializer holds the table (and the static
  matcher built from it) in worker-global state, so per-chunk pickling cost
  is the chunk payload only, never table copies.
* Chunks travel both directions as :class:`~repro.core.flatcorpus.FlatCorpus`
  shipping payloads — two machine-byte blobs (buffer + offsets) per chunk.
  Slicing a chunk out of the parent corpus is zero-copy (a memoryview of the
  shared buffer), and pickling it is two memcpy-speed ``bytes`` objects
  instead of a forest of integer tuples.
* Workers run the batch entry points (:func:`~repro.core.compressor.
  compress_paths_flat`); with ``backend="rolling"`` each chunk goes through
  the vectorized kernel.  ``processes=1`` bypasses multiprocessing but uses
  the *same* batch entry point, so metric totals and probe counts are
  identical across process counts for every backend.

Observability: when :mod:`repro.obs` instrumentation is active in the
parent, each worker activates its own counters-only instrumentation at
initializer time, resets it per chunk, and ships the chunk's metric
snapshot back with the results; the parent folds every snapshot into its
registry.  Counter totals therefore equal the sequential run's exactly
(probe counts are pure per path — and, for the batch kernel, additive over
path-aligned chunks), while worker timers pool into CPU-time style
aggregates — see the differential test in
``tests/test_parallel_differential.py``.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.compressor import compress_paths_flat, decompress_paths_flat
from repro.core.errors import InvalidInputError
from repro.core.flatcorpus import FlatCorpus, ShippedCorpus, as_flat_corpus
from repro.core.matcher import CandidateSet, static_matcher_from_table
from repro.core.supernode_table import SupernodeTable
from repro.obs.registry import MetricsRegistry
from repro.obs.runtime import Instrumentation, activate, get_active
from repro.obs.spans import SpanTracer

_worker_table: Optional[SupernodeTable] = None
_worker_matcher: Optional[CandidateSet] = None
_worker_registry: Optional[MetricsRegistry] = None

_ChunkResult = Tuple[ShippedCorpus, Optional[Dict[str, Any]]]


def _init_worker(
    base_id: int,
    subpaths: List[Tuple[int, ...]],
    backend: str = "hash",
    instrument: bool = False,
) -> None:
    """Rebuild the table and its matcher once per worker process.

    With *instrument*, the worker also activates a counters-only
    instrumentation of its own: a forked child must never write into the
    (copied) parent registry, whose counts would be lost with the process.
    """
    global _worker_table, _worker_matcher, _worker_registry
    _worker_table = SupernodeTable(base_id, subpaths)
    _worker_matcher = static_matcher_from_table(_worker_table, backend)
    if instrument:
        _worker_registry = MetricsRegistry()
        activate(Instrumentation(_worker_registry, SpanTracer(enabled=False)))
    else:
        _worker_registry = None


def _chunk_metrics() -> Optional[Dict[str, Any]]:
    """This chunk's metric snapshot (the registry is reset per chunk)."""
    if _worker_registry is None:
        return None
    return _worker_registry.as_dict()


def _compress_chunk(payload: ShippedCorpus) -> _ChunkResult:
    assert _worker_table is not None and _worker_matcher is not None
    if _worker_registry is not None:
        _worker_registry.reset()
    corpus = FlatCorpus.from_shipping(payload)
    tokens = compress_paths_flat(corpus, _worker_table, _worker_matcher, as_corpus=True)
    return tokens.to_shipping(), _chunk_metrics()


def _decompress_chunk(payload: ShippedCorpus) -> _ChunkResult:
    assert _worker_table is not None
    if _worker_registry is not None:
        _worker_registry.reset()
    corpus = FlatCorpus.from_shipping(payload)
    paths = decompress_paths_flat(corpus, _worker_table, as_corpus=True)
    return paths.to_shipping(), _chunk_metrics()


def _run_parallel(
    worker,
    items: Sequence[Sequence[int]],
    table: SupernodeTable,
    processes: int,
    chunk_size: int,
    backend: str,
) -> List[Tuple[int, ...]]:
    if processes < 1:
        raise InvalidInputError("processes must be >= 1")
    if chunk_size < 1:
        raise InvalidInputError("chunk_size must be >= 1")
    corpus = as_flat_corpus(items)
    payloads = [chunk.to_shipping() for chunk in corpus.chunks(chunk_size)]
    if not payloads:
        return []
    obs = get_active()
    ctx = multiprocessing.get_context("fork") if hasattr(multiprocessing, "get_context") else multiprocessing
    with ctx.Pool(
        processes,
        initializer=_init_worker,
        initargs=(table.base_id, table.subpaths, backend, obs is not None),
    ) as pool:
        results = pool.map(worker, payloads)
    out: List[Tuple[int, ...]] = []
    for shipped, metrics in results:
        out.extend(FlatCorpus.from_shipping(shipped))
        if metrics is not None and obs is not None:
            obs.registry.merge_dict(metrics)
    return out


def parallel_compress(
    paths: Sequence[Sequence[int]],
    table: SupernodeTable,
    processes: int = 2,
    chunk_size: int = 2048,
    backend: str = "hash",
) -> List[Tuple[int, ...]]:
    """Compress *paths* against *table* across *processes* workers.

    Order-preserving and bit-identical to the sequential
    :func:`~repro.core.compressor.compress_dataset` — with any *backend*
    and any process count.
    """
    if processes == 1:
        matcher = static_matcher_from_table(table, backend)
        return compress_paths_flat(as_flat_corpus(paths), table, matcher)
    return _run_parallel(_compress_chunk, paths, table, processes, chunk_size, backend)


def parallel_decompress(
    tokens: Sequence[Sequence[int]],
    table: SupernodeTable,
    processes: int = 2,
    chunk_size: int = 2048,
) -> List[Tuple[int, ...]]:
    """Decompress *tokens* across *processes* workers (order-preserving)."""
    if processes == 1:
        return decompress_paths_flat(as_flat_corpus(tokens), table)
    return _run_parallel(_decompress_chunk, tokens, table, processes, chunk_size, "hash")
