"""Parallel (de)compression over processes — the paper's OpenMP claim.

Section V: "we are able to implement pleasing parallelism on a finer
granularity as small as a path in ``O(|P|·δ²/p)`` on a p-core machine", and
likewise ``O(|P|/p)`` for decompression.  Both algorithms are pure functions
of (path, table), so the parallel scheme is embarrassing: chunk the input,
ship the table to each worker once, map.

Implementation notes:

* ``multiprocessing`` with an initializer holds the table (and the static
  matcher built from it) in worker-global state, so per-chunk pickling cost
  is one list of integer tuples, not table copies.
* Chunks are large (default 2048 paths) because pure-Python work units must
  amortize IPC; with C-level kernels the paper's per-path granularity would
  be realistic.
* ``processes=1`` bypasses multiprocessing entirely — the sequential
  functions are the ground truth the tests compare against.
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional, Sequence, Tuple

from repro.core.compressor import compress_path, decompress_path
from repro.core.matcher import CandidateSet, static_matcher_from_table
from repro.core.supernode_table import SupernodeTable

_worker_table: Optional[SupernodeTable] = None
_worker_matcher: Optional[CandidateSet] = None


def _init_worker(base_id: int, subpaths: List[Tuple[int, ...]]) -> None:
    """Rebuild the table and its matcher once per worker process."""
    global _worker_table, _worker_matcher
    _worker_table = SupernodeTable(base_id, subpaths)
    _worker_matcher = static_matcher_from_table(_worker_table)


def _compress_chunk(chunk: List[Tuple[int, ...]]) -> List[Tuple[int, ...]]:
    assert _worker_table is not None and _worker_matcher is not None
    return [compress_path(p, _worker_table, _worker_matcher) for p in chunk]


def _decompress_chunk(chunk: List[Tuple[int, ...]]) -> List[Tuple[int, ...]]:
    assert _worker_table is not None
    return [decompress_path(t, _worker_table) for t in chunk]


def _run_parallel(
    worker,
    items: Sequence[Sequence[int]],
    table: SupernodeTable,
    processes: int,
    chunk_size: int,
) -> List[Tuple[int, ...]]:
    if processes < 1:
        raise ValueError("processes must be >= 1")
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    items = [tuple(p) for p in items]
    chunks = [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]
    if not chunks:
        return []
    ctx = multiprocessing.get_context("fork") if hasattr(multiprocessing, "get_context") else multiprocessing
    with ctx.Pool(
        processes,
        initializer=_init_worker,
        initargs=(table.base_id, table.subpaths),
    ) as pool:
        results = pool.map(worker, chunks)
    out: List[Tuple[int, ...]] = []
    for chunk_result in results:
        out.extend(chunk_result)
    return out


def parallel_compress(
    paths: Sequence[Sequence[int]],
    table: SupernodeTable,
    processes: int = 2,
    chunk_size: int = 2048,
) -> List[Tuple[int, ...]]:
    """Compress *paths* against *table* across *processes* workers.

    Order-preserving and bit-identical to the sequential
    :func:`~repro.core.compressor.compress_dataset`.
    """
    if processes == 1:
        matcher = static_matcher_from_table(table)
        return [compress_path(p, table, matcher) for p in paths]
    return _run_parallel(_compress_chunk, paths, table, processes, chunk_size)


def parallel_decompress(
    tokens: Sequence[Sequence[int]],
    table: SupernodeTable,
    processes: int = 2,
    chunk_size: int = 2048,
) -> List[Tuple[int, ...]]:
    """Decompress *tokens* across *processes* workers (order-preserving)."""
    if processes == 1:
        return [decompress_path(t, table) for t in tokens]
    return _run_parallel(_decompress_chunk, tokens, table, processes, chunk_size)
