"""Parallel (de)compression over processes — the paper's OpenMP claim.

Section V: "we are able to implement pleasing parallelism on a finer
granularity as small as a path in ``O(|P|·δ²/p)`` on a p-core machine", and
likewise ``O(|P|/p)`` for decompression.  Both algorithms are pure functions
of (path, table), so the parallel scheme is embarrassing: chunk the input,
ship the table to each worker once, map.

Implementation notes:

* ``multiprocessing`` holds the table (and the static matcher built from
  it) in worker-global state, so per-chunk pickling cost is the chunk
  payload only, never table copies.  With the ``fork`` start method the
  parent builds that state once *before* spawning the pool and the workers
  inherit it copy-on-write — zero per-worker rebuild; other start methods
  fall back to an initializer fed pickled ``(base_id, subpaths)``.
* Chunks travel both directions as :class:`~repro.core.flatcorpus.FlatCorpus`
  shipping payloads — two machine-byte blobs (buffer + offsets) per chunk.
  Slicing a chunk out of the parent corpus is zero-copy (a memoryview of the
  shared buffer), and pickling it is two memcpy-speed ``bytes`` objects
  instead of a forest of integer tuples.
* Workers run the batch entry points (:func:`~repro.core.compressor.
  compress_paths_flat`); with ``backend="rolling"`` each chunk goes through
  the vectorized kernel.  ``processes=1`` bypasses multiprocessing but uses
  the *same* batch entry point, so metric totals and probe counts are
  identical across process counts for every backend.

Observability: when :mod:`repro.obs` instrumentation is active in the
parent, each worker activates its own counters-only instrumentation at
initializer time, resets it per chunk, and ships the chunk's metric
snapshot back with the results; the parent folds every snapshot into its
registry.  Counter totals therefore equal the sequential run's exactly
(probe counts are pure per path — and, for the batch kernel, additive over
path-aligned chunks), while worker timers pool into CPU-time style
aggregates — see the differential test in
``tests/test_parallel_differential.py``.
"""

from __future__ import annotations

import multiprocessing
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.compressor import compress_paths_flat, decompress_paths_flat
from repro.core.errors import InvalidInputError
from repro.core.flatcorpus import FlatCorpus, ShippedCorpus, as_flat_corpus
from repro.core.matcher import CandidateSet, static_matcher_from_table
from repro.core.serialize import dumps_store_v2_tokens
from repro.core.supernode_table import SupernodeTable
from repro.obs.registry import MetricsRegistry
from repro.obs.runtime import Instrumentation, activate, get_active
from repro.obs.spans import SpanTracer

_worker_table: Optional[SupernodeTable] = None
_worker_matcher: Optional[CandidateSet] = None
_worker_registry: Optional[MetricsRegistry] = None

_ChunkResult = Tuple[ShippedCorpus, Optional[Dict[str, Any]]]


def _init_worker(
    base_id: int,
    subpaths: List[Tuple[int, ...]],
    backend: str = "hash",
    instrument: bool = False,
) -> None:
    """Rebuild the table and its matcher once per worker process.

    With *instrument*, the worker also activates a counters-only
    instrumentation of its own: a forked child must never write into the
    (copied) parent registry, whose counts would be lost with the process.
    """
    global _worker_table, _worker_matcher, _worker_registry
    _worker_table = SupernodeTable(base_id, subpaths)
    _worker_matcher = static_matcher_from_table(_worker_table, backend)
    if instrument:
        _worker_registry = MetricsRegistry()
        activate(Instrumentation(_worker_registry, SpanTracer(enabled=False)))
    else:
        _worker_registry = None


def _init_worker_inherited(instrument: bool = False) -> None:
    """Fork-start initializer: the parent set the worker globals *before*
    the fork, so the child already holds table+matcher copy-on-write — no
    per-worker rebuild, no initargs pickling.  Only the instrumentation (a
    per-child registry) must be fresh."""
    global _worker_registry
    if instrument:
        _worker_registry = MetricsRegistry()
        activate(Instrumentation(_worker_registry, SpanTracer(enabled=False)))
    else:
        _worker_registry = None


@contextmanager
def _table_pool(processes: int, table: SupernodeTable, backend: str, instrument: bool):
    """A worker pool whose processes hold (table, matcher) worker state.

    With the ``fork`` start method the state is built once in the parent
    and inherited copy-on-write; otherwise each worker rebuilds it from
    pickled ``(base_id, subpaths)`` initargs.  Either way the workers run
    the same chunk functions against the same state."""
    global _worker_table, _worker_matcher
    ctx = multiprocessing.get_context("fork") if hasattr(multiprocessing, "get_context") else multiprocessing
    method = ctx.get_start_method() if hasattr(ctx, "get_start_method") else "fork"
    if method == "fork":
        _worker_table = table
        _worker_matcher = static_matcher_from_table(table, backend)
        try:
            with ctx.Pool(
                processes, initializer=_init_worker_inherited, initargs=(instrument,)
            ) as pool:
                yield pool
        finally:
            _worker_table = None
            _worker_matcher = None
    else:
        with ctx.Pool(
            processes,
            initializer=_init_worker,
            initargs=(table.base_id, table.subpaths, backend, instrument),
        ) as pool:
            yield pool


def _chunk_metrics() -> Optional[Dict[str, Any]]:
    """This chunk's metric snapshot (the registry is reset per chunk)."""
    if _worker_registry is None:
        return None
    return _worker_registry.as_dict()


def _compress_chunk(payload: ShippedCorpus) -> _ChunkResult:
    assert _worker_table is not None and _worker_matcher is not None
    if _worker_registry is not None:
        _worker_registry.reset()
    corpus = FlatCorpus.from_shipping(payload)
    tokens = compress_paths_flat(corpus, _worker_table, _worker_matcher, as_corpus=True)
    return tokens.to_shipping(), _chunk_metrics()


def _serialize_shard_chunk(
    payload: ShippedCorpus,
) -> Tuple[bytes, int, Optional[Dict[str, Any]]]:
    assert _worker_table is not None and _worker_matcher is not None
    if _worker_registry is not None:
        _worker_registry.reset()
    corpus = FlatCorpus.from_shipping(payload)
    tokens = compress_paths_flat(corpus, _worker_table, _worker_matcher)
    return dumps_store_v2_tokens(_worker_table, tokens), len(tokens), _chunk_metrics()


def _compress_corpora_blobs(
    corpora: Sequence[FlatCorpus],
    table: SupernodeTable,
    processes: int = 2,
    backend: str = "rolling",
) -> List[Tuple[bytes, int]]:
    """Compress each corpus and serialize it to a v2 blob inside the worker.

    The write-path twin of :func:`compress_corpora`, used by the sharded
    build: serialization is pure per-shard work, so shipping finished blobs
    instead of token lists keeps the parent's critical path at
    ``partition + spawn + max(shard)`` rather than re-paying every shard's
    serialization sequentially after the barrier.  Each ``(blob, count)``
    is byte-identical to serializing ``compress_corpora(...)[i]`` in the
    parent, for any process count.
    """
    if processes < 1:
        raise InvalidInputError("processes must be >= 1")
    if not corpora:
        return []
    if processes == 1:
        matcher = static_matcher_from_table(table, backend)
        out1: List[Tuple[bytes, int]] = []
        for corpus in corpora:
            tokens = compress_paths_flat(corpus, table, matcher)
            out1.append((dumps_store_v2_tokens(table, tokens), len(tokens)))
        return out1
    obs = get_active()
    payloads = [corpus.to_shipping() for corpus in corpora]
    with _table_pool(min(processes, len(payloads)), table, backend, obs is not None) as pool:
        results = pool.map(_serialize_shard_chunk, payloads)
    out: List[Tuple[bytes, int]] = []
    for blob, count, metrics in results:
        out.append((blob, count))
        if metrics is not None and obs is not None:
            obs.registry.merge_dict(metrics)
    return out


def _decompress_chunk(payload: ShippedCorpus) -> _ChunkResult:
    assert _worker_table is not None
    if _worker_registry is not None:
        _worker_registry.reset()
    corpus = FlatCorpus.from_shipping(payload)
    paths = decompress_paths_flat(corpus, _worker_table, as_corpus=True)
    return paths.to_shipping(), _chunk_metrics()


def _run_parallel(
    worker,
    items: Sequence[Sequence[int]],
    table: SupernodeTable,
    processes: int,
    chunk_size: int,
    backend: str,
) -> List[Tuple[int, ...]]:
    if processes < 1:
        raise InvalidInputError("processes must be >= 1")
    if chunk_size < 1:
        raise InvalidInputError("chunk_size must be >= 1")
    corpus = as_flat_corpus(items)
    payloads = [chunk.to_shipping() for chunk in corpus.chunks(chunk_size)]
    if not payloads:
        return []
    obs = get_active()
    with _table_pool(processes, table, backend, obs is not None) as pool:
        results = pool.map(worker, payloads)
    out: List[Tuple[int, ...]] = []
    for shipped, metrics in results:
        out.extend(FlatCorpus.from_shipping(shipped))
        if metrics is not None and obs is not None:
            obs.registry.merge_dict(metrics)
    return out


def parallel_compress(
    paths: Sequence[Sequence[int]],
    table: SupernodeTable,
    processes: int = 2,
    chunk_size: int = 2048,
    backend: str = "hash",
) -> List[Tuple[int, ...]]:
    """Compress *paths* against *table* across *processes* workers.

    Order-preserving and bit-identical to the sequential
    :func:`~repro.core.compressor.compress_dataset` — with any *backend*
    and any process count.
    """
    if processes == 1:
        matcher = static_matcher_from_table(table, backend)
        return compress_paths_flat(as_flat_corpus(paths), table, matcher)
    return _run_parallel(_compress_chunk, paths, table, processes, chunk_size, backend)


def compress_corpora(
    corpora: Sequence[FlatCorpus],
    table: SupernodeTable,
    processes: int = 2,
    backend: str = "rolling",
) -> List[List[Tuple[int, ...]]]:
    """Compress each corpus in *corpora* against *table*; one token list per
    corpus, in input order.

    This is the fan-out primitive behind the sharded build
    (:func:`repro.core.sharded.build_sharded_store`): each corpus is one
    shard's paths, shipped whole to a worker through the same FlatCorpus
    shipping path the chunked :func:`parallel_compress` uses, so per-shard
    results are bit-identical to compressing the shard sequentially.
    Metric snapshots fold back into the active registry exactly like the
    chunked path (counter totals identical across process counts).
    """
    if processes < 1:
        raise InvalidInputError("processes must be >= 1")
    if not corpora:
        return []
    if processes == 1:
        matcher = static_matcher_from_table(table, backend)
        return [
            compress_paths_flat(corpus, table, matcher) for corpus in corpora
        ]
    obs = get_active()
    payloads = [corpus.to_shipping() for corpus in corpora]
    with _table_pool(min(processes, len(payloads)), table, backend, obs is not None) as pool:
        results = pool.map(_compress_chunk, payloads)
    out: List[List[Tuple[int, ...]]] = []
    for shipped, metrics in results:
        out.append(FlatCorpus.from_shipping(shipped).to_paths())
        if metrics is not None and obs is not None:
            obs.registry.merge_dict(metrics)
    return out


def decompress_corpora(
    corpora: Sequence[FlatCorpus],
    table: SupernodeTable,
    processes: int = 2,
) -> List[List[Tuple[int, ...]]]:
    """Decompress each token corpus in *corpora*; the inverse of
    :func:`compress_corpora` (round-trips its output for any process count).

    One path list per corpus, in input order — the fan-out shape a sharded
    archive's per-shard token lists arrive in.
    """
    if processes < 1:
        raise InvalidInputError("processes must be >= 1")
    if not corpora:
        return []
    if processes == 1:
        return [decompress_paths_flat(corpus, table) for corpus in corpora]
    obs = get_active()
    payloads = [corpus.to_shipping() for corpus in corpora]
    with _table_pool(min(processes, len(payloads)), table, "hash", obs is not None) as pool:
        results = pool.map(_decompress_chunk, payloads)
    out: List[List[Tuple[int, ...]]] = []
    for shipped, metrics in results:
        out.append(FlatCorpus.from_shipping(shipped).to_paths())
        if metrics is not None and obs is not None:
            obs.registry.merge_dict(metrics)
    return out


def parallel_decompress(
    tokens: Sequence[Sequence[int]],
    table: SupernodeTable,
    processes: int = 2,
    chunk_size: int = 2048,
) -> List[Tuple[int, ...]]:
    """Decompress *tokens* across *processes* workers (order-preserving)."""
    if processes == 1:
        return decompress_paths_flat(as_flat_corpus(tokens), table)
    return _run_parallel(_decompress_chunk, tokens, table, processes, chunk_size, "hash")
