"""Segmented archives — "more tables to be collected every day".

The paper's deployment accumulates "more than 50 GB of data from nearly one
million data transmissions in one day.  And there are massive data to be
collected by more tables every day."  Tables are immutable once paths are
compressed against them (the archive must stay decodable), so the
operational unit is the *segment*: one supernode table plus the store of
paths compressed against it — a day, a shard, or a drift epoch.

:class:`SegmentedArchive` manages an ordered list of segments behind one
global path-id space and one query surface:

* ingest goes to the active segment; :meth:`rotate` seals it and starts a
  new one trained on recent data (what the streaming compressor's drift
  signal should trigger);
* :meth:`retrieve` maps a global id to ``(segment, local id)`` in O(log
  #segments);
* Case 1/2 queries fan out across segments and merge;
* serialization round-trips the whole archive.
"""

from __future__ import annotations

import bisect
import struct
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.builder import TableBuilder
from repro.core.config import OFFSConfig
from repro.core.errors import CorruptDataError, InvalidInputError, PathIdError, StateError
from repro.core.serialize import dumps_store, loads_store
from repro.core.store import CompressedPathStore
from repro.paths.dataset import PathDataset
from repro.paths.encoding import DEFAULT_ENCODING, Encoding

_MAGIC = b"RPSA"  # RePro Segmented Archive
_VERSION = 1


class SegmentedArchive:
    """An ordered collection of compressed segments with global path ids.

    :param config: OFFS configuration used when training segment tables.
    :param base_id: supernode id base shared by all segments; must exceed
        every vertex id the archive will ever see.
    """

    def __init__(self, config: Optional[OFFSConfig] = None, base_id: int = 1 << 30) -> None:
        self.config = config or OFFSConfig(sample_exponent=0)
        self.base_id = base_id
        self._segments: List[CompressedPathStore] = []
        self._offsets: List[int] = []  # global id of each segment's first path

    # -- segment management ----------------------------------------------------------

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def segments(self) -> List[CompressedPathStore]:
        """The segment stores, oldest first (do not mutate)."""
        return list(self._segments)

    def start_segment(self, training_paths: Sequence[Sequence[int]]) -> int:
        """Seal the active segment and open a new one.

        :param training_paths: what the new segment's table is built from
            (typically the most recent traffic).
        :returns: the new segment's index.
        """
        if not training_paths:
            raise InvalidInputError("a segment needs training paths for its table")
        table, _ = TableBuilder(self.config).build(
            PathDataset(training_paths, name=f"segment{len(self._segments)}"),
            base_id=self.base_id,
        )
        self._offsets.append(len(self))
        self._segments.append(CompressedPathStore(table))
        return len(self._segments) - 1

    # ``rotate`` reads better at call sites that seal on drift.
    rotate = start_segment

    def append(self, path: Sequence[int]) -> int:
        """Compress *path* into the active segment; returns its global id."""
        if not self._segments:
            raise StateError("no active segment; call start_segment() first")
        local = self._segments[-1].append(path)
        return self._offsets[-1] + local

    def extend(self, paths: Iterable[Sequence[int]]) -> List[int]:
        """Append many paths; returns their global ids."""
        return [self.append(p) for p in paths]

    # -- retrieval ----------------------------------------------------------------------

    def __len__(self) -> int:
        if not self._segments:
            return 0
        return self._offsets[-1] + len(self._segments[-1])

    def _locate(self, global_id: int) -> Tuple[int, int]:
        if not 0 <= global_id < len(self):
            raise PathIdError(f"path id {global_id} not in archive of {len(self)} paths")
        segment = bisect.bisect_right(self._offsets, global_id) - 1
        return segment, global_id - self._offsets[segment]

    def retrieve(self, global_id: int) -> Tuple[int, ...]:
        """Decompress one path by global id."""
        segment, local = self._locate(global_id)
        return self._segments[segment].retrieve(local)

    def retrieve_many(self, global_ids: Iterable[int]) -> List[Tuple[int, ...]]:
        """Decompress several paths by global id, in the given order."""
        return [self.retrieve(g) for g in global_ids]

    def retrieve_all(self) -> List[Tuple[int, ...]]:
        """Decompress the whole archive, oldest segment first."""
        out: List[Tuple[int, ...]] = []
        for store in self._segments:
            out.extend(store.retrieve_all())
        return out

    # -- queries (fan out + merge) ----------------------------------------------------------

    def paths_containing(self, vertex: int) -> List[int]:
        """Case 1 across segments: global ids of paths through *vertex*."""
        from repro.queries.index import VertexIndex

        result: List[int] = []
        for offset, store in zip(self._offsets, self._segments):
            index = VertexIndex(store)
            result.extend(offset + local for local in index.paths_containing(vertex))
        return result

    def paths_between(self, source: int, destination: int) -> List[Tuple[int, ...]]:
        """Case 2 across segments: all paths from *source* to *destination*."""
        from repro.queries.retrieval import PathQueryEngine

        matches: List[Tuple[int, ...]] = []
        for store in self._segments:
            matches.extend(PathQueryEngine(store).paths_between(source, destination))
        return matches

    def affected_vertices(self, issue_vertex: int) -> Set[int]:
        """Case 1's answer set, merged across segments."""
        affected: Set[int] = set()
        for global_id in self.paths_containing(issue_vertex):
            affected.update(self.retrieve(global_id))
        affected.discard(issue_vertex)
        return affected

    # -- sizes ----------------------------------------------------------------------------------

    def compressed_size_bytes(self, encoding: Encoding = DEFAULT_ENCODING) -> int:
        """Total bytes across all segments (each pays its own table)."""
        return sum(s.compressed_size_bytes(encoding) for s in self._segments)

    def raw_size_bytes(self, encoding: Encoding = DEFAULT_ENCODING) -> int:
        """Bytes of the uncompressed archive."""
        return sum(s.raw_size_bytes(encoding) for s in self._segments)

    def compression_ratio(self, encoding: Encoding = DEFAULT_ENCODING) -> float:
        compressed = self.compressed_size_bytes(encoding)
        return self.raw_size_bytes(encoding) / compressed if compressed else 0.0

    def __repr__(self) -> str:
        return f"SegmentedArchive(segments={self.segment_count}, paths={len(self)})"

    # -- serialization ------------------------------------------------------------------------------

    def dumps(self) -> bytes:
        """Serialize the whole archive (all segments) to bytes."""
        out = bytearray()
        out += _MAGIC
        out += struct.pack("<BIQ", _VERSION, len(self._segments), self.base_id)
        for store in self._segments:
            blob = dumps_store(store)
            out += struct.pack("<I", len(blob))
            out += blob
        return bytes(out)

    @classmethod
    def loads(cls, data: bytes, config: Optional[OFFSConfig] = None) -> "SegmentedArchive":
        """Restore an archive serialized by :meth:`dumps`."""
        if data[:4] != _MAGIC:
            raise CorruptDataError("not a segmented-archive blob (bad magic)")
        try:
            version, count, base_id = struct.unpack_from("<BIQ", data, 4)
        except struct.error as exc:
            raise CorruptDataError("truncated segmented-archive header") from exc
        if version != _VERSION:
            raise CorruptDataError(f"unsupported segmented-archive version {version}")
        archive = cls(config=config, base_id=base_id)
        pos = 4 + struct.calcsize("<BIQ")
        for _ in range(count):
            try:
                (size,) = struct.unpack_from("<I", data, pos)
            except struct.error as exc:
                raise CorruptDataError("truncated segment length") from exc
            pos += 4
            if pos + size > len(data):
                raise CorruptDataError("truncated segment blob")
            store = loads_store(data[pos : pos + size])
            pos += size
            archive._offsets.append(len(archive))
            archive._segments.append(store)
        if pos != len(data):
            raise CorruptDataError("trailing garbage after last segment")
        return archive
