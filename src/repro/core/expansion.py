"""Memoized supernode expansion — the decode-side fast path.

Algorithm 1 expands every supernode symbol on every decompression call.
For retrieval-heavy workloads (the paper's Cases 1 and 2, Fig. 6) that
re-derives the same subpath tuples millions of times.  An
:class:`ExpansionCache` flattens every supernode of a table to its full
vertex tuple exactly **once** and keeps the results in three aligned
structures:

* ``expand(sid)`` — the fully-flattened tuple (nested/multilevel
  supernodes — entries whose subpath itself contains supernode ids — are
  resolved iteratively, never recursively, with cycle detection);
* ``symbol_length(symbol)`` — expanded length of any stream symbol in
  O(1), which turns slice retrieval (Fig. 6 "partial") into arithmetic;
* a flat concatenation + offsets pair (``as_numpy()``) that the batch
  decode kernel of :func:`repro.core.compressor.decompress_paths_flat`
  gathers from in one vectorized pass.

The cache is built lazily by :meth:`SupernodeTable.expansions
<repro.core.supernode_table.SupernodeTable.expansions>` and memoized on
the table; any mutation (``add``) invalidates it.  Hit/miss counts land on
the ``table.expansion_cache.*`` metrics when :mod:`repro.obs` is active.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import TableError

Subpath = Tuple[int, ...]

try:  # soft dependency, same policy as repro.core.flatcorpus
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None


def flatten_subpaths(
    base_id: int, by_id: Dict[int, Subpath]
) -> Dict[int, Subpath]:
    """Fully flatten every entry of ``by_id`` (id → subpath) to vertex tuples.

    Entries may reference other supernodes (symbols ``>= base_id``) in any
    order — forward, backward, or chained through several levels.  The
    resolution is **iterative** (an explicit work stack), so a
    pathologically deep nesting chain cannot hit Python's recursion limit,
    and reference cycles are detected and reported as :class:`TableError`
    instead of looping forever.
    """
    flat: Dict[int, Subpath] = {}
    in_progress: List[int] = []  # DFS stack of ids being expanded
    on_stack = set()
    for root in by_id:
        if root in flat:
            continue
        in_progress.append(root)
        on_stack.add(root)
        while in_progress:
            sid = in_progress[-1]
            subpath = by_id.get(sid)
            if subpath is None:
                raise TableError(f"unknown supernode id {sid} referenced in table")
            blocked = False
            for symbol in subpath:
                if symbol >= base_id and symbol not in flat:
                    if symbol in on_stack:
                        raise TableError(
                            f"supernode {sid} participates in an expansion "
                            f"cycle through {symbol}"
                        )
                    in_progress.append(symbol)
                    on_stack.add(symbol)
                    blocked = True
                    break
            if blocked:
                continue
            out: List[int] = []
            for symbol in subpath:
                if symbol >= base_id:
                    out.extend(flat[symbol])
                else:
                    out.append(symbol)
            flat[sid] = tuple(out)
            in_progress.pop()
            on_stack.discard(sid)
    return flat


class ExpansionCache:
    """Immutable snapshot of a table's fully-flattened expansions.

    Build with :meth:`from_table`; obtain the memoized instance through
    :meth:`SupernodeTable.expansions
    <repro.core.supernode_table.SupernodeTable.expansions>` instead of
    constructing one per call site.
    """

    __slots__ = ("base_id", "_flat", "_lengths", "_concat", "_starts", "_np_arrays")

    def __init__(self, base_id: int, flat: Dict[int, Subpath]) -> None:
        self.base_id = base_id
        self._flat = flat
        # Dense, id-ordered companions for O(1) arithmetic and the batch
        # kernel: lengths[i] and concat[starts[i]:starts[i+1]] describe
        # supernode base_id + i.
        count = len(flat)
        lengths = array("q", bytes(8 * count))
        concat = array("q")
        starts = array("q", [0])
        for i in range(count):
            expansion = flat[base_id + i]
            lengths[i] = len(expansion)
            concat.extend(expansion)
            starts.append(len(concat))
        self._lengths = lengths
        self._concat = concat
        self._starts = starts
        self._np_arrays = None

    @classmethod
    def from_table(cls, table) -> "ExpansionCache":
        """Flatten *table* (a :class:`SupernodeTable`) into a fresh cache."""
        return cls(table.base_id, flatten_subpaths(table.base_id, dict(table)))

    # -- lookups -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._flat)

    def __contains__(self, supernode_id: int) -> bool:
        return supernode_id in self._flat

    def expand(self, supernode_id: int) -> Subpath:
        """The fully-flattened vertex tuple for *supernode_id*."""
        try:
            return self._flat[supernode_id]
        except KeyError:
            raise TableError(f"unknown supernode id {supernode_id}") from None

    def expansion_length(self, supernode_id: int) -> int:
        """Expanded length of one supernode in O(1)."""
        index = supernode_id - self.base_id
        if not 0 <= index < len(self._lengths):
            raise TableError(f"unknown supernode id {supernode_id}")
        return self._lengths[index]

    def symbol_length(self, symbol: int) -> int:
        """Expanded length of any stream symbol: 1 for a vertex literal."""
        if symbol < self.base_id:
            return 1
        return self.expansion_length(symbol)

    def token_length(self, token: Sequence[int]) -> int:
        """Decompressed length of a whole compressed token, no materialization."""
        base = self.base_id
        lengths = self._lengths
        total = 0
        for symbol in token:
            if symbol < base:
                total += 1
            else:
                index = symbol - base
                if index >= len(lengths):
                    raise TableError(f"unknown supernode id {symbol}")
                total += lengths[index]
        return total

    def items(self) -> Iterator[Tuple[int, Subpath]]:
        """``(supernode_id, flattened_expansion)`` pairs in id order."""
        base = self.base_id
        for i in range(len(self._flat)):
            yield base + i, self._flat[base + i]

    # -- batch-kernel views -------------------------------------------------------

    @property
    def flat_concat(self) -> array:
        """All expansions concatenated in id order (``array('q')``)."""
        return self._concat

    @property
    def flat_starts(self) -> array:
        """``len(self) + 1`` fenceposts into :attr:`flat_concat`."""
        return self._starts

    def as_numpy(self):
        """``(concat, starts, lengths)`` int64 views, or ``None`` sans numpy."""
        if _np is None:
            return None
        if self._np_arrays is None:
            self._np_arrays = (
                _np.frombuffer(self._concat, dtype=_np.int64)
                if len(self._concat)
                else _np.zeros(0, dtype=_np.int64),
                _np.frombuffer(self._starts, dtype=_np.int64),
                _np.frombuffer(self._lengths, dtype=_np.int64)
                if len(self._lengths)
                else _np.zeros(0, dtype=_np.int64),
            )
        return self._np_arrays

    def __repr__(self) -> str:
        return (
            f"ExpansionCache(base_id={self.base_id}, entries={len(self)}, "
            f"vertices={len(self._concat)})"
        )


def slice_token(
    token: Sequence[int],
    cache: ExpansionCache,
    start: Optional[int] = None,
    stop: Optional[int] = None,
) -> Subpath:
    """``decompress(token)[start:stop]`` without materializing the full path.

    Slice semantics match Python's (``None`` bounds, negatives, clamping;
    no step).  Cost is O(symbols skipped + vertices returned): positions
    are advanced by precomputed expansion lengths, and only the symbols
    overlapping the window are expanded.
    """
    total = cache.token_length(token)
    begin, end, _ = slice(start, stop).indices(total)
    if end <= begin:
        return ()
    base = cache.base_id
    out: List[int] = []
    pos = 0
    for symbol in token:
        if pos >= end:
            break
        length = 1 if symbol < base else cache.expansion_length(symbol)
        if pos + length <= begin:
            pos += length
            continue
        if symbol < base:
            out.append(symbol)
        elif pos >= begin and pos + length <= end:
            out.extend(cache.expand(symbol))
        else:
            expansion = cache.expand(symbol)
            out.extend(expansion[max(0, begin - pos) : min(length, end - pos)])
        pos += length
    return tuple(out)
