"""Compression and decompression of individual paths (Algorithms 1 and 2).

These are the hot loops of the system.  Both operate per path — the property
that gives OFFS its per-path random access ("the finest granularity of
(de)compression ... as small as a path") — and both are pure functions of
their inputs, so callers may fan them out over processes freely (the paper's
OpenMP parallelism; see :func:`compress_dataset`'s ``chunked`` helpers).

* :func:`compress_path` — greedy longest-match replacement of subpaths by
  supernode ids (Algorithm 2); ``O(|P| · δ²)`` with the hash matcher,
  ``O(|P| · δ)`` with the trie matcher.
* :func:`decompress_path` — one-pass supernode expansion (Algorithm 1);
  ``O(|P|)`` in the decompressed length (Lemma 1).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import TableError
from repro.core.matcher import CandidateSet, static_matcher_from_table
from repro.core.supernode_table import SupernodeTable

CompressedPath = Tuple[int, ...]


def compress_path(
    path: Sequence[int],
    table: SupernodeTable,
    matcher: Optional[CandidateSet] = None,
) -> CompressedPath:
    """Compress one path against a finished supernode table (Algorithm 2).

    Scans left to right; at each position the longest table subpath starting
    there (capped by δ, the table's longest entry) is replaced by its
    supernode id, otherwise the single vertex is copied through.

    :param matcher: a prebuilt static matcher over *table*; pass one when
        compressing many paths to amortize its construction (see
        :func:`repro.core.matcher.static_matcher_from_table`).
    """
    if matcher is None:
        matcher = static_matcher_from_table(table)
    delta = table.max_subpath_length
    out: List[int] = []
    pos = 0
    n = len(path)
    while pos < n:
        length = matcher.longest_match(path, pos, delta) if delta >= 2 else 1
        if length > 1:
            sid = table.get_id(tuple(path[pos : pos + length]))
            if sid is None:
                raise TableError(
                    "matcher and table disagree: matched subpath "
                    f"{tuple(path[pos:pos + length])!r} has no supernode id"
                )
            out.append(sid)
        else:
            vertex = path[pos]
            if vertex >= table.base_id:
                # A literal at or above base_id would decompress as a
                # supernode.  This happens when the table was trained on a
                # sample that missed the id range — train with an explicit
                # base_id covering the whole universe instead.
                raise TableError(
                    f"vertex id {vertex} collides with the supernode id space "
                    f"(base_id={table.base_id}); fit the table with a base_id "
                    "above every vertex id that will ever be compressed"
                )
            out.append(vertex)
        pos += length
    return tuple(out)


def decompress_path(compressed: Sequence[int], table: SupernodeTable) -> Tuple[int, ...]:
    """Restore one path from its compressed form (Algorithm 1).

    Every symbol at or above the table's ``base_id`` is expanded to its
    subpath; vertex ids pass through unchanged.
    """
    out: List[int] = []
    base = table.base_id
    for symbol in compressed:
        if symbol >= base:
            out.extend(table.expand(symbol))
        else:
            out.append(symbol)
    return tuple(out)


def compress_dataset(
    paths: Iterable[Sequence[int]],
    table: SupernodeTable,
    matcher: Optional[CandidateSet] = None,
) -> List[CompressedPath]:
    """Compress every path in *paths*, sharing one static matcher."""
    if matcher is None:
        matcher = static_matcher_from_table(table)
    return [compress_path(p, table, matcher) for p in paths]


def decompress_dataset(
    compressed_paths: Iterable[Sequence[int]],
    table: SupernodeTable,
) -> List[Tuple[int, ...]]:
    """Decompress every compressed path in *compressed_paths*."""
    return [decompress_path(c, table) for c in compressed_paths]


def chunked(items: Sequence, chunk_size: int) -> Iterable[Sequence]:
    """Split *items* into contiguous chunks for parallel fan-out.

    The algorithms are pure per path, so a pool can map
    ``compress_dataset``/``decompress_dataset`` over these chunks to realize
    the paper's ``O(|P| · δ² / p)`` parallel bound.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    for start in range(0, len(items), chunk_size):
        yield items[start : start + chunk_size]
