"""Compression and decompression of individual paths (Algorithms 1 and 2).

These are the hot loops of the system.  Both operate per path — the property
that gives OFFS its per-path random access ("the finest granularity of
(de)compression ... as small as a path") — and both are pure functions of
their inputs, so callers may fan them out over processes freely (the paper's
OpenMP parallelism; see :func:`compress_dataset`'s ``chunked`` helpers).

* :func:`compress_path` — greedy longest-match replacement of subpaths by
  supernode ids (Algorithm 2); ``O(|P| · δ²)`` with the hash matcher,
  ``O(|P| · δ)`` with the trie matcher.
* :func:`decompress_path` — one-pass supernode expansion (Algorithm 1);
  ``O(|P|)`` in the decompressed length (Lemma 1).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import TableError
from repro.core.matcher import CandidateSet, static_matcher_from_table
from repro.core.supernode_table import SupernodeTable
from repro.obs.runtime import get_active

CompressedPath = Tuple[int, ...]


def compress_path(
    path: Sequence[int],
    table: SupernodeTable,
    matcher: Optional[CandidateSet] = None,
) -> CompressedPath:
    """Compress one path against a finished supernode table (Algorithm 2).

    Scans left to right; at each position the longest table subpath starting
    there (capped by δ, the table's longest entry) is replaced by its
    supernode id, otherwise the single vertex is copied through.

    :param matcher: a prebuilt static matcher over *table*; pass one when
        compressing many paths to amortize its construction (see
        :func:`repro.core.matcher.static_matcher_from_table`).
    """
    if matcher is None:
        matcher = static_matcher_from_table(table)
    delta = table.max_subpath_length
    out: List[int] = []
    pos = 0
    n = len(path)
    while pos < n:
        length = matcher.longest_match(path, pos, delta) if delta >= 2 else 1
        if length > 1:
            sid = table.get_id(tuple(path[pos : pos + length]))
            if sid is None:
                raise TableError(
                    "matcher and table disagree: matched subpath "
                    f"{tuple(path[pos:pos + length])!r} has no supernode id"
                )
            out.append(sid)
        else:
            vertex = path[pos]
            if vertex >= table.base_id:
                # A literal at or above base_id would decompress as a
                # supernode.  This happens when the table was trained on a
                # sample that missed the id range — train with an explicit
                # base_id covering the whole universe instead.
                raise TableError(
                    f"vertex id {vertex} collides with the supernode id space "
                    f"(base_id={table.base_id}); fit the table with a base_id "
                    "above every vertex id that will ever be compressed"
                )
            out.append(vertex)
        pos += length
    return tuple(out)


def decompress_path(compressed: Sequence[int], table: SupernodeTable) -> Tuple[int, ...]:
    """Restore one path from its compressed form (Algorithm 1).

    Every symbol at or above the table's ``base_id`` is expanded to its
    subpath; vertex ids pass through unchanged.
    """
    out: List[int] = []
    base = table.base_id
    for symbol in compressed:
        if symbol >= base:
            out.extend(table.expand(symbol))
        else:
            out.append(symbol)
    return tuple(out)


def compress_dataset(
    paths: Iterable[Sequence[int]],
    table: SupernodeTable,
    matcher: Optional[CandidateSet] = None,
) -> List[CompressedPath]:
    """Compress every path in *paths*, sharing one static matcher.

    When :mod:`repro.obs` instrumentation is active, the batch is wrapped in
    a ``compress`` span and accounted on the registry: paths and symbols in
    and out, plus the matcher's probe-work delta (``matcher.probes`` /
    ``matcher.hashed_vertices``).  The per-path inner loop is never touched
    — with instrumentation off this is exactly a list comprehension.
    """
    if matcher is None:
        matcher = static_matcher_from_table(table)
    obs = get_active()
    if obs is None:
        return [compress_path(p, table, matcher) for p in paths]

    probes_before = matcher.stats.snapshot()
    with obs.tracer.span("compress") as span, obs.registry.timeit("compress.seconds"):
        out: List[CompressedPath] = []
        symbols_in = 0
        for p in paths:
            out.append(compress_path(p, table, matcher))
            symbols_in += len(p)
        symbols_out = sum(len(t) for t in out)
        if span is not None:
            span.add("paths", len(out))
            span.add("symbols_in", symbols_in)
            span.add("symbols_out", symbols_out)
    registry = obs.registry
    registry.counter("compress.paths").inc(len(out))
    registry.counter("compress.symbols_in").inc(symbols_in)
    registry.counter("compress.symbols_out").inc(symbols_out)
    matcher.stats.delta_since(probes_before).publish(registry, "matcher")
    return out


def decompress_dataset(
    compressed_paths: Iterable[Sequence[int]],
    table: SupernodeTable,
) -> List[Tuple[int, ...]]:
    """Decompress every compressed path in *compressed_paths*.

    Instrumented like :func:`compress_dataset` (a ``decompress`` span,
    ``decompress.*`` counters) when the obs layer is active.
    """
    obs = get_active()
    if obs is None:
        return [decompress_path(c, table) for c in compressed_paths]

    with obs.tracer.span("decompress") as span, obs.registry.timeit(
        "decompress.seconds"
    ):
        out: List[Tuple[int, ...]] = []
        symbols_in = 0
        for c in compressed_paths:
            out.append(decompress_path(c, table))
            symbols_in += len(c)
        symbols_out = sum(len(p) for p in out)
        if span is not None:
            span.add("paths", len(out))
            span.add("symbols_in", symbols_in)
            span.add("symbols_out", symbols_out)
    registry = obs.registry
    registry.counter("decompress.paths").inc(len(out))
    registry.counter("decompress.symbols_in").inc(symbols_in)
    registry.counter("decompress.symbols_out").inc(symbols_out)
    return out


def chunked(items: Sequence, chunk_size: int) -> Iterable[Sequence]:
    """Split *items* into contiguous chunks for parallel fan-out.

    The algorithms are pure per path, so a pool can map
    ``compress_dataset``/``decompress_dataset`` over these chunks to realize
    the paper's ``O(|P| · δ² / p)`` parallel bound.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    for start in range(0, len(items), chunk_size):
        yield items[start : start + chunk_size]
