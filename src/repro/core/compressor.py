"""Compression and decompression of individual paths (Algorithms 1 and 2).

These are the hot loops of the system.  Both operate per path — the property
that gives OFFS its per-path random access ("the finest granularity of
(de)compression ... as small as a path") — and both are pure functions of
their inputs, so callers may fan them out over processes freely (the paper's
OpenMP parallelism; see :func:`compress_dataset`'s ``chunked`` helpers).

* :func:`compress_path` — greedy longest-match replacement of subpaths by
  supernode ids (Algorithm 2); ``O(|P| · δ²)`` with the hash matcher,
  ``O(|P| · δ)`` with the trie matcher.
* :func:`decompress_path` — one-pass supernode expansion (Algorithm 1);
  ``O(|P|)`` in the decompressed length (Lemma 1).
* :func:`compress_paths_flat` / :func:`decompress_paths_flat` — the batch
  entry points over a :class:`~repro.core.flatcorpus.FlatCorpus`.  With the
  ``rolling`` matcher and numpy present, compression runs through the
  vectorized :class:`~repro.core.rollhash.FlatBatchKernel`; results are
  bit-identical to the per-path loop with any backend.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.errors import InvalidInputError, TableError
from repro.core.flatcorpus import FlatCorpus, as_flat_corpus
from repro.core.matcher import CandidateSet, static_matcher_from_table
from repro.core.supernode_table import SupernodeTable
from repro.obs import catalog
from repro.obs.runtime import get_active

CompressedPath = Tuple[int, ...]


def compress_path(
    path: Sequence[int],
    table: SupernodeTable,
    matcher: Optional[CandidateSet] = None,
) -> CompressedPath:
    """Compress one path against a finished supernode table (Algorithm 2).

    Scans left to right; at each position the longest table subpath starting
    there (capped by δ, the table's longest entry) is replaced by its
    supernode id, otherwise the single vertex is copied through.

    :param matcher: a prebuilt static matcher over *table*; pass one when
        compressing many paths to amortize its construction (see
        :func:`repro.core.matcher.static_matcher_from_table`).
    """
    if matcher is None:
        matcher = static_matcher_from_table(table)
    delta = table.max_subpath_length
    out: List[int] = []
    pos = 0
    n = len(path)
    while pos < n:
        length = matcher.longest_match(path, pos, delta) if delta >= 2 else 1
        if length > 1:
            sid = table.get_id(tuple(path[pos : pos + length]))
            if sid is None:
                raise TableError(
                    "matcher and table disagree: matched subpath "
                    f"{tuple(path[pos:pos + length])!r} has no supernode id"
                )
            out.append(sid)
        else:
            vertex = path[pos]
            if vertex >= table.base_id:
                # A literal at or above base_id would decompress as a
                # supernode.  This happens when the table was trained on a
                # sample that missed the id range — train with an explicit
                # base_id covering the whole universe instead.
                raise TableError(
                    f"vertex id {vertex} collides with the supernode id space "
                    f"(base_id={table.base_id}); fit the table with a base_id "
                    "above every vertex id that will ever be compressed"
                )
            out.append(vertex)
        pos += length
    return tuple(out)


def decompress_path(compressed: Sequence[int], table: SupernodeTable) -> Tuple[int, ...]:
    """Restore one path from its compressed form (Algorithm 1).

    Every symbol at or above the table's ``base_id`` is expanded to its
    subpath; vertex ids pass through unchanged.  Expansion reads from the
    table's memoized :class:`~repro.core.expansion.ExpansionCache`, so the
    per-symbol work is one dict lookup and a concatenation — nested
    supernodes were already flattened when the cache was built.
    """
    out: List[int] = []
    base = table.base_id
    expand = table.expansions().expand
    for symbol in compressed:
        if symbol >= base:
            out.extend(expand(symbol))
        else:
            out.append(symbol)
    return tuple(out)


def compress_dataset(
    paths: Iterable[Sequence[int]],
    table: SupernodeTable,
    matcher: Optional[CandidateSet] = None,
) -> List[CompressedPath]:
    """Compress every path in *paths*, sharing one static matcher.

    When :mod:`repro.obs` instrumentation is active, the batch is wrapped in
    a ``compress`` span and accounted on the registry: paths and symbols in
    and out, plus the matcher's probe-work delta (``matcher.probes`` /
    ``matcher.hashed_vertices``).  The per-path inner loop is never touched
    — with instrumentation off this is exactly a list comprehension.
    """
    if matcher is None:
        matcher = static_matcher_from_table(table)
    obs = get_active()
    if obs is None:
        return [compress_path(p, table, matcher) for p in paths]

    probes_before = matcher.stats.snapshot()
    with obs.tracer.span(catalog.SPAN_COMPRESS) as span, obs.registry.timeit(
        catalog.COMPRESS_SECONDS
    ):
        out: List[CompressedPath] = []
        symbols_in = 0
        for p in paths:
            out.append(compress_path(p, table, matcher))
            symbols_in += len(p)
        symbols_out = sum(len(t) for t in out)
        if span is not None:
            span.add("paths", len(out))
            span.add("symbols_in", symbols_in)
            span.add("symbols_out", symbols_out)
    registry = obs.registry
    registry.counter(catalog.COMPRESS_PATHS).inc(len(out))
    registry.counter(catalog.COMPRESS_SYMBOLS_IN).inc(symbols_in)
    registry.counter(catalog.COMPRESS_SYMBOLS_OUT).inc(symbols_out)
    matcher.stats.delta_since(probes_before).publish(
        registry, catalog.PROBE_PREFIX_MATCHER
    )
    return out


def decompress_dataset(
    compressed_paths: Iterable[Sequence[int]],
    table: SupernodeTable,
) -> List[Tuple[int, ...]]:
    """Decompress every compressed path in *compressed_paths*.

    Instrumented like :func:`compress_dataset` (a ``decompress`` span,
    ``decompress.*`` counters) when the obs layer is active.
    """
    obs = get_active()
    if obs is None:
        return [decompress_path(c, table) for c in compressed_paths]

    with obs.tracer.span(catalog.SPAN_DECOMPRESS) as span, obs.registry.timeit(
        catalog.DECOMPRESS_SECONDS
    ):
        out: List[Tuple[int, ...]] = []
        symbols_in = 0
        for c in compressed_paths:
            out.append(decompress_path(c, table))
            symbols_in += len(c)
        symbols_out = sum(len(p) for p in out)
        if span is not None:
            span.add("paths", len(out))
            span.add("symbols_in", symbols_in)
            span.add("symbols_out", symbols_out)
    registry = obs.registry
    registry.counter(catalog.DECOMPRESS_PATHS).inc(len(out))
    registry.counter(catalog.DECOMPRESS_SYMBOLS_IN).inc(symbols_in)
    registry.counter(catalog.DECOMPRESS_SYMBOLS_OUT).inc(symbols_out)
    return out


def compress_paths_flat(
    paths: Union[FlatCorpus, Iterable[Sequence[int]]],
    table: SupernodeTable,
    matcher: Optional[CandidateSet] = None,
    as_corpus: bool = False,
) -> Union[List[CompressedPath], FlatCorpus]:
    """Compress a whole corpus in one batch (the flat pipeline entry point).

    Bit-identical to :func:`compress_dataset` over the same paths with the
    same matcher backend; with the ``rolling`` matcher and numpy available,
    the probe work runs through the vectorized
    :class:`~repro.core.rollhash.FlatBatchKernel` — one pass of window
    hashes over the flat buffer, then a thin greedy verify loop.

    :param paths: a :class:`FlatCorpus` (preferred; anything else is
        interned first).
    :param matcher: a prebuilt static matcher over *table*; its type selects
        the kernel (``RollingHashCandidates`` → vectorized batch path).
    :param as_corpus: return the compressed tokens as a :class:`FlatCorpus`
        (what the parallel workers ship back) instead of a list of tuples.
    """
    corpus = as_flat_corpus(paths)
    if matcher is None:
        matcher = static_matcher_from_table(table)
    obs = get_active()
    if obs is None:
        out = _compress_corpus(corpus, table, matcher)
        return FlatCorpus.from_paths(out, name=corpus.name) if as_corpus else out

    probes_before = matcher.stats.snapshot()
    with obs.tracer.span(catalog.SPAN_COMPRESS) as span, obs.registry.timeit(
        catalog.COMPRESS_SECONDS
    ):
        out = _compress_corpus(corpus, table, matcher)
        symbols_in = corpus.total_symbols
        symbols_out = sum(len(t) for t in out)
        if span is not None:
            span.add("paths", len(out))
            span.add("symbols_in", symbols_in)
            span.add("symbols_out", symbols_out)
            span.add("flat", 1)
    registry = obs.registry
    registry.counter(catalog.COMPRESS_PATHS).inc(len(out))
    registry.counter(catalog.COMPRESS_SYMBOLS_IN).inc(symbols_in)
    registry.counter(catalog.COMPRESS_SYMBOLS_OUT).inc(symbols_out)
    registry.counter(catalog.COMPRESS_FLAT_BATCHES).inc()
    matcher.stats.delta_since(probes_before).publish(
        registry, catalog.PROBE_PREFIX_MATCHER
    )
    return FlatCorpus.from_paths(out, name=corpus.name) if as_corpus else out


def _compress_corpus(
    corpus: FlatCorpus, table: SupernodeTable, matcher: CandidateSet
) -> List[CompressedPath]:
    """Kernel dispatch for :func:`compress_paths_flat` (obs-free inner part)."""
    from repro.core.rollhash import RollingHashCandidates

    if isinstance(matcher, RollingHashCandidates):
        kernel = matcher.flat_kernel(table)
        if kernel.available:
            return _compress_corpus_rolling(corpus, table, kernel, matcher.stats)
    return [compress_path(corpus.path(i), table, matcher) for i in range(len(corpus))]


def _compress_corpus_rolling(
    corpus: FlatCorpus, table: SupernodeTable, kernel, stats
) -> List[CompressedPath]:
    """The greedy verify loop over a precomputed best-length array.

    ``kernel.best_lengths`` nominates, per symbol position, the longest
    candidate length whose rolling hash matches the table; this loop walks
    each path greedily, verifies every nomination against the exact table
    (collisions descend to the next shorter length) and emits supernode ids
    or literals.  Work counters land on *stats* so the obs layer sees the
    batch like any other matcher run.
    """
    delta = table.max_subpath_length
    base_id = table.base_id
    max_vertex = corpus.max_vertex()
    if max_vertex >= base_id:
        raise TableError(
            f"vertex id {max_vertex} collides with the supernode id space "
            f"(base_id={base_id}); fit the table with a base_id above every "
            "vertex id that will ever be compressed"
        )
    best = kernel.best_lengths(corpus)
    assert best is not None  # kernel.available was checked by the dispatcher
    ids = table.inverted()
    get_id = ids.get
    buffer = corpus.buffer
    out: List[CompressedPath] = []
    emit = out.append
    verify_vertices = 0
    start = 0
    for end in list(corpus.offsets)[1:]:
        path = tuple(buffer[start:end])
        n = end - start
        tokens: List[int] = []
        push = tokens.append
        pos = 0
        while pos < n:
            length = best[start + pos]
            if length > 1 and length <= delta:
                verify_vertices += length
                sid = get_id(path[pos : pos + length])
                while sid is None and length > 2:
                    # Hash collision: the nomination was a false positive;
                    # descend until a real candidate (or a literal) remains.
                    length -= 1
                    verify_vertices += length
                    sid = get_id(path[pos : pos + length])
                if sid is not None:
                    push(sid)
                    pos += length
                    continue
            push(path[pos])
            pos += 1
        emit(tuple(tokens))
        start = end
    stats.probes += kernel.batch_probes
    stats.hashed_vertices += kernel.batch_probes + verify_vertices
    return out


def decompress_paths_flat(
    tokens: Union[FlatCorpus, Iterable[Sequence[int]]],
    table: SupernodeTable,
    as_corpus: bool = False,
) -> Union[List[Tuple[int, ...]], FlatCorpus]:
    """Decompress a whole batch of tokens (flat-pipeline counterpart).

    Accepts a :class:`FlatCorpus` of compressed tokens (what the parallel
    workers receive) or any token iterable; instrumented exactly like
    :func:`decompress_dataset`.

    The kernel writes straight into one flat output buffer through the
    table's precomputed expansion offsets — a single vectorized gather
    when numpy is available, an ``array('q')`` extend loop otherwise —
    and is byte-identical to per-path :func:`decompress_path` over the
    same tokens.

    :param as_corpus: return the restored paths as a :class:`FlatCorpus`
        (zero tuple churn; the fast path for bulk consumers).
    """
    corpus = as_flat_corpus(tokens)
    obs = get_active()
    if obs is None:
        restored = _decompress_corpus(corpus, table)
        return restored if as_corpus else restored.to_paths()

    with obs.tracer.span(catalog.SPAN_DECOMPRESS) as span, obs.registry.timeit(
        catalog.DECOMPRESS_SECONDS
    ):
        restored = _decompress_corpus(corpus, table)
        symbols_in = corpus.total_symbols
        symbols_out = restored.total_symbols
        if span is not None:
            span.add("paths", len(restored))
            span.add("symbols_in", symbols_in)
            span.add("symbols_out", symbols_out)
            span.add("flat", 1)
    registry = obs.registry
    registry.counter(catalog.DECOMPRESS_PATHS).inc(len(restored))
    registry.counter(catalog.DECOMPRESS_SYMBOLS_IN).inc(symbols_in)
    registry.counter(catalog.DECOMPRESS_SYMBOLS_OUT).inc(symbols_out)
    registry.counter(catalog.DECOMPRESS_FLAT_BATCHES).inc()
    return restored if as_corpus else restored.to_paths()


def _decompress_corpus(corpus: FlatCorpus, table: SupernodeTable) -> FlatCorpus:
    """Batch-expand a token corpus into a fresh path corpus (obs-free inner).

    numpy route: per-symbol output lengths come from the expansion cache's
    dense length array; their prefix sum places every symbol's expansion in
    the output, and one gather through a combined source (expansions
    concatenated ++ the token buffer itself, for literals) fills the whole
    buffer without per-path Python work.
    """
    from array import array

    cache = table.expansions()
    arrays = corpus.as_numpy()
    cache_arrays = cache.as_numpy()
    if arrays is not None and cache_arrays is not None and len(corpus.buffer):
        import numpy as np

        buf, offs = arrays
        concat, starts, exp_lengths = cache_arrays
        base = table.base_id
        mask = buf >= base
        sids = buf[mask] - base
        if len(sids) and (int(sids.max()) >= len(exp_lengths) or int(sids.min()) < 0):
            bad = int(sids.max()) + base
            raise TableError(f"unknown supernode id {bad}")
        lengths = np.ones(len(buf), dtype=np.int64)
        lengths[mask] = exp_lengths[sids]
        out_starts = np.empty(len(buf) + 1, dtype=np.int64)
        out_starts[0] = 0
        np.cumsum(lengths, out=out_starts[1:])
        # Unified gather source: expansion vertices first, then the token
        # buffer itself so a literal at position i reads combined[C + i].
        combined = np.concatenate((concat, buf))
        src_start = np.arange(len(concat), len(concat) + len(buf), dtype=np.int64)
        src_start[mask] = starts[sids]
        within = np.arange(int(out_starts[-1]), dtype=np.int64) - np.repeat(
            out_starts[:-1], lengths
        )
        out = combined[np.repeat(src_start, lengths) + within]
        out_buffer = array("q")
        out_buffer.frombytes(np.ascontiguousarray(out, dtype="<i8").tobytes())
        out_offsets = array("q")
        out_offsets.frombytes(
            np.ascontiguousarray(out_starts[offs], dtype="<i8").tobytes()
        )
        return FlatCorpus(out_buffer, out_offsets, name=corpus.name)

    # Pure-Python fallback: one pass, extending a flat buffer through the
    # memoized expansions (still no per-path tuple materialization).
    base = table.base_id
    expand = cache.expand
    buffer = corpus.buffer
    out_buffer = array("q")
    out_offsets = array("q", [0])
    extend = out_buffer.extend
    append = out_buffer.append
    mark = out_offsets.append
    start = 0
    for end in list(corpus.offsets)[1:]:
        for symbol in buffer[start:end]:
            if symbol >= base:
                extend(expand(symbol))
            else:
                append(symbol)
        mark(len(out_buffer))
        start = end
    return FlatCorpus(out_buffer, out_offsets, name=corpus.name)


def chunked(items: Sequence, chunk_size: int) -> Iterable[Sequence]:
    """Split *items* into contiguous chunks for parallel fan-out.

    The algorithms are pure per path, so a pool can map
    ``compress_dataset``/``decompress_dataset`` over these chunks to realize
    the paper's ``O(|P| · δ² / p)`` parallel bound.

    Raises :class:`~repro.core.errors.InvalidInputError` (a ValueError) for
    ``chunk_size <= 0`` *eagerly* (at call time, not first iteration) — a
    generator that validated lazily would let ``chunked(items, 0)`` pass
    silently anywhere the result is stored before being consumed.
    """
    if chunk_size < 1:
        raise InvalidInputError(f"chunk_size must be >= 1, got {chunk_size}")

    def _generate() -> Iterable[Sequence]:
        for start in range(0, len(items), chunk_size):
            yield items[start : start + chunk_size]

    return _generate()
