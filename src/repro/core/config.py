"""Configuration for OFFS table construction and compression.

The paper's tunables, with its deployed defaults (Section VI-A):

* ``delta`` (δ = 8) — maximum subpath length stored in the table, hence the
  longest match the greedy compressor attempts (Algorithm 2).
* ``alpha`` (α = 5) — primary-key length of the two-level hash matcher
  (Algorithm 7); only meaningful for the ``multilevel`` matcher backend.
* ``iterations`` (τ, paper's ``i``; default 4 = the paper's *default mode*,
  2 = *fast mode* OFFS*) — number of merge/expansion refinement passes in
  ``TConstruct*`` (Algorithm 5).
* ``sample_exponent`` (k; default 7) — one path in every ``2**k`` is used for
  table construction, the paper's sample rate of 128.
* ``beta`` (β = 500) — candidate capacity divisor: ``λ = nodes / beta``.
  The paper sets λ "linear to |P| with a fixed factor β"; its space analysis
  (candidate heap ≈ λ·δ bytes with observed overhead ν < 0.03 of the input
  at β = 500, δ = 8) pins β down as a *divisor* of the node count.  The
  top-λ filter at the end of each iteration is also what evicts one-off
  "parasitic" candidates (unique-prefix merges) before they can shadow truly
  frequent sequences in the next pass.  ``capacity`` overrides λ directly.
* ``min_final_weight`` — finalization drops candidates seen fewer times
  (Example 2 drops "the useless ones with weight one").
* ``matcher`` — prefix-match backend: ``"hash"`` (Algorithm 6),
  ``"multilevel"`` (Algorithm 7), ``"trie"`` (the §IV-D optimization (2)) or
  ``"rolling"`` (the rolling-hash scheme of :mod:`repro.core.rollhash`,
  O(1) per probed length).
* ``hash_bits`` (default 64) — stored-hash width of the ``rolling`` backend
  (ignored by the others).  Smaller widths raise the collision rate and so
  the collision-verify cost; compressed output is identical at any width
  because every candidate match is verified against the real symbols.  The
  ablation harness (:mod:`repro.bench.ablation`) sweeps it to price the
  verify step; tests use tiny widths to force collisions.
* ``topdown_rounds`` (default 0 = off) — hybrid top-down refinement passes
  after the bottom-up iterations (the §IV-D optimization (1); see
  :mod:`repro.core.topdown`).
* ``reorder`` (default ``"identity"`` = off) — compression-aware vertex
  reordering strategy applied before table construction
  (:mod:`repro.paths.reorder`): ``frequency`` gives the hottest vertices
  the smallest ids (cheapest varints), ``bfs`` / ``locality`` additionally
  cluster co-occurring vertices.  The codec fits the order alongside the
  table and stores invert it on retrieval, so callers always see original
  ids.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.core.errors import ConfigError

MATCHER_BACKENDS = ("hash", "multilevel", "trie", "rolling")


@dataclass(frozen=True)
class OFFSConfig:
    """Immutable OFFS parameter set; see module docstring for semantics."""

    delta: int = 8
    alpha: int = 5
    iterations: int = 4
    sample_exponent: int = 7
    beta: float = 500.0
    capacity: Optional[int] = None
    min_final_weight: int = 2
    matcher: str = "hash"
    hash_bits: int = 64
    topdown_rounds: int = 0
    reorder: str = "identity"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.delta < 2:
            raise ConfigError("delta must be >= 2 (supernodes are at least edges)")
        if not 1 <= self.alpha:
            raise ConfigError("alpha must be >= 1")
        if self.alpha >= self.delta:
            raise ConfigError("alpha must be < delta (secondary keys need room)")
        if self.iterations < 0:
            raise ConfigError("iterations must be >= 0")
        if self.sample_exponent < 0:
            raise ConfigError("sample_exponent must be >= 0")
        if self.beta <= 0:
            raise ConfigError("beta must be positive")
        if self.capacity is not None and self.capacity < 1:
            raise ConfigError("capacity must be >= 1 when given")
        if self.min_final_weight < 1:
            raise ConfigError("min_final_weight must be >= 1")
        if self.matcher not in MATCHER_BACKENDS:
            raise ConfigError(f"matcher must be one of {MATCHER_BACKENDS}, got {self.matcher!r}")
        if not 1 <= self.hash_bits <= 64:
            raise ConfigError("hash_bits must be in [1, 64]")
        if self.topdown_rounds < 0:
            raise ConfigError("topdown_rounds must be >= 0")
        if self.reorder != "identity":
            # Imported lazily: repro.paths.reorder pulls in the paths
            # package, which this module must not require at import time.
            from repro.paths.reorder import ORDER_STRATEGIES

            if self.reorder not in ORDER_STRATEGIES:
                raise ConfigError(
                    f"reorder must be one of {ORDER_STRATEGIES}, got {self.reorder!r}"
                )

    @property
    def sample_stride(self) -> int:
        """The paper's ``s``: use one path in every ``2**k``."""
        return 1 << self.sample_exponent

    def lambda_for(self, total_nodes: int) -> int:
        """Candidate-set capacity λ for a dataset of *total_nodes* vertices.

        ``λ = max(64, total_nodes / beta)``; the floor keeps tiny test
        datasets from degenerating to a near-empty table.
        """
        if self.capacity is not None:
            return self.capacity
        return max(64, int(total_nodes / self.beta))

    def with_(self, **changes) -> "OFFSConfig":
        """Return a copy with *changes* applied (validated)."""
        return replace(self, **changes)

    @classmethod
    def default_mode(cls, **overrides) -> "OFFSConfig":
        """The paper's OFFS default mode: ``(i, k) = (4, 7)``."""
        return cls(**{"iterations": 4, "sample_exponent": 7, **overrides})

    @classmethod
    def fast_mode(cls, **overrides) -> "OFFSConfig":
        """The paper's OFFS* fast mode: ``(i, k) = (2, 7)``."""
        return cls(**{"iterations": 2, "sample_exponent": 7, **overrides})
