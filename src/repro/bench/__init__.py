"""Experiment harness regenerating the paper's tables and figures.

:mod:`repro.bench.experiments` implements one function per paper artifact
(Table III, Figures 4–6) plus the ablations DESIGN.md calls out; each
returns printable rows (header first) so ``benchmarks/bench_*.py`` and the
examples can render them with
:func:`repro.analysis.stats.format_table`.  :mod:`repro.bench.harness`
provides the shared codec roster and run configuration.
"""

from repro.bench.ablation import (
    KNOBS,
    Cell,
    Knob,
    RunSpec,
    baseline_spec,
    build_report,
    generate_matrix,
    importance_table,
    load_report,
    measure_cell,
    run_ablation,
    run_matrix,
)
from repro.bench.harness import BenchConfig, default_codecs, offs_pair
from repro.bench.experiments import (
    exp_ablation_matchers,
    exp_ablation_measure,
    exp_ablation_params,
    exp_fig4_iterations,
    exp_fig4_sampling,
    exp_fig5_comparison,
    exp_fig6_decompression,
    exp_fig6_partial,
    exp_fig6_scalability,
    exp_table3,
)

__all__ = [
    "BenchConfig",
    "default_codecs",
    "offs_pair",
    "KNOBS",
    "Cell",
    "Knob",
    "RunSpec",
    "baseline_spec",
    "build_report",
    "generate_matrix",
    "importance_table",
    "load_report",
    "measure_cell",
    "run_ablation",
    "run_matrix",
    "exp_ablation_matchers",
    "exp_ablation_measure",
    "exp_ablation_params",
    "exp_fig4_iterations",
    "exp_fig4_sampling",
    "exp_fig5_comparison",
    "exp_fig6_decompression",
    "exp_fig6_partial",
    "exp_fig6_scalability",
    "exp_table3",
]
