"""``python -m repro.bench`` — run the paper experiments without pytest."""

import sys

from repro.bench.runner import main

sys.exit(main())
