"""One function per paper artifact: Table III, Figures 4, 5 and 6, ablations.

Every function returns ``(rows, shape)``: *rows* is a printable table
(header first) and *shape* a dict of the scalar facts the paper's prose
claims about the artifact (who wins, by what factor, where the knee sits).
The bench files print the rows and assert on the shape; EXPERIMENTS.md
records both next to the paper's numbers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.metrics import (
    measure_codec,
    measure_decompression,
    measure_partial_decompression,
)
from repro.analysis.sizing import dataset_raw_bytes, tokens_total_bytes
from repro.analysis.stats import dataset_stats_table
from repro.baselines import Dlz4Codec, GFSCodec, RSSCodec
from repro.bench.harness import BenchConfig, DEFAULT_BENCH, default_codecs
from repro.core.offs import OFFSCodec
from repro.core.store import CompressedPathStore
from repro.workloads.registry import DATASET_NAMES, make_dataset

Rows = List[Sequence]
Shape = Dict[str, float]


# ---------------------------------------------------------------------------
# Table III — dataset statistics
# ---------------------------------------------------------------------------

def exp_table3(config: BenchConfig = DEFAULT_BENCH) -> Tuple[Rows, Shape]:
    """Table III: statistics of the four dataset surrogates."""
    datasets = [make_dataset(name, config.size, config.seed) for name in DATASET_NAMES]
    rows = dataset_stats_table(datasets)
    stats = {ds.name: ds.stats() for ds in datasets}
    shape = {
        # The length profile orderings Table III exhibits.
        "rome_longest_avg": float(
            stats["rome"].avg_length == max(s.avg_length for s in stats.values())
        ),
        "alibaba_avg": stats["alibaba"].avg_length,
        "sanfrancisco_fewest_ids": float(
            stats["sanfrancisco"].id_number == min(s.id_number for s in stats.values())
        ),
    }
    return rows, shape


# ---------------------------------------------------------------------------
# Figure 4 — impacts of i and k
# ---------------------------------------------------------------------------

def exp_fig4_iterations(
    dataset_name: str = "alibaba",
    i_values: Sequence[int] = tuple(range(0, 10)),
    config: BenchConfig = DEFAULT_BENCH,
) -> Tuple[Rows, Shape]:
    """Fig. 4 a–d: CR and CS as the iteration count ``i`` grows.

    Paper shape: CR rises rapidly for i ∈ [0, 3] (candidates are still
    growing toward δ), then gently; CS roughly halves from i=0 to i=4 and
    keeps sinking slowly.
    """
    dataset = make_dataset(dataset_name, config.size, config.seed)
    # Keep construction a visible share of the total cost, as it is in the
    # paper's setup; at scaled-down sizes the campaign's default k would
    # make construction vanish and flatten the CS curve artificially.
    k = min(config.sample_exponent, 2)
    rows: Rows = [("i", "CR", "CS (MB/s)")]
    crs: List[float] = []
    css: List[float] = []
    for i in i_values:
        codec = OFFSCodec(config.offs_config(iterations=i, sample_exponent=k))
        m = measure_codec(codec, dataset)
        crs.append(m.compression_ratio)
        css.append(m.compression_speed_mbps)
        rows.append((i, round(m.compression_ratio, 3), round(m.compression_speed_mbps, 3)))
    knee = min(3, len(crs) - 1)
    shape = {
        "cr_rise_to_knee": crs[knee] - crs[0],
        "cr_rise_after_knee": crs[-1] - crs[knee],
        "cs_peak_over_final": (max(css) / css[-1]) if css[-1] else 0.0,
        "cr_final": crs[-1],
    }
    return rows, shape


def exp_fig4_sampling(
    dataset_name: str = "alibaba",
    k_values: Sequence[int] = tuple(range(0, 10)),
    config: BenchConfig = DEFAULT_BENCH,
) -> Tuple[Rows, Shape]:
    """Fig. 4 e–h: CR and CS as the sample exponent ``k`` grows.

    Paper shape: CR decays slowly while the sample is still representative,
    then sharply once it is not; CS rises steeply with k (table construction
    dominates at k=0) and then flattens (compression dominates).
    """
    dataset = make_dataset(dataset_name, config.size, config.seed)
    rows: Rows = [("k", "sampled paths", "CR", "CS (MB/s)")]
    crs: List[float] = []
    css: List[float] = []
    for k in k_values:
        codec = OFFSCodec(config.offs_config(sample_exponent=k))
        m = measure_codec(codec, dataset)
        crs.append(m.compression_ratio)
        css.append(m.compression_speed_mbps)
        sampled = max(1, len(dataset) // (1 << k))
        rows.append((k, sampled, round(m.compression_ratio, 3), round(m.compression_speed_mbps, 3)))
    mid = min(4, len(crs) - 1)
    shape = {
        "cr_loss_slow_regime": crs[0] - crs[mid],
        "cr_loss_fast_regime": crs[mid] - crs[-1],
        # Peak speed-up over k=0: past the representativeness cliff CS can
        # sink again ("it might suffer from more useless matches during
        # compression, which affects CS" — the paper's own caveat), so the
        # gain is measured at the best k, not the last.
        "cs_gain": max(css) / css[0] if css[0] else 0.0,
        "cr_at_default": crs[mid],
    }
    return rows, shape


# ---------------------------------------------------------------------------
# Figure 5 — comparison with baselines
# ---------------------------------------------------------------------------

def exp_fig5_comparison(
    dataset_names: Sequence[str] = DATASET_NAMES,
    config: BenchConfig = DEFAULT_BENCH,
) -> Tuple[Rows, Shape]:
    """Fig. 5: CR (a) and CS (b) of OFFS/OFFS* vs Dlz4 vs RSS vs GFS.

    Paper shape: OFFS has the best CR on every dataset (≈ 3× Dlz4 and
    ≈ 1.5× the naive DICTs on their hardware), GFS ≤ RSS on average
    (match collisions), OFFS has the best CS, naive DICTs the worst, and
    OFFS* trades a small CR loss for extra construction speed.
    """
    rows: Rows = [("dataset", "codec", "CR", "CS (MB/s)")]
    ratios: Dict[str, List[float]] = {}
    speeds: Dict[str, List[float]] = {}
    for name in dataset_names:
        dataset = make_dataset(name, config.size, config.seed)
        for codec in default_codecs(config):
            m = measure_codec(codec, dataset)
            rows.append(
                (name, codec.name, round(m.compression_ratio, 3), round(m.compression_speed_mbps, 3))
            )
            ratios.setdefault(codec.name, []).append(m.compression_ratio)
            speeds.setdefault(codec.name, []).append(m.compression_speed_mbps)

    def avg(values: List[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    shape = {
        "offs_cr_avg": avg(ratios["OFFS"]),
        "offs_over_dlz4_cr": avg(ratios["OFFS"]) / avg(ratios["Dlz4"]),
        "offs_over_rss_cr": avg(ratios["OFFS"]) / avg(ratios["RSS"]),
        "offs_over_gfs_cr": avg(ratios["OFFS"]) / avg(ratios["GFS"]),
        "offs_star_cr_gap": avg(ratios["OFFS"]) - avg(ratios["OFFS*"]),
        "offs_over_dlz4_cs": avg(speeds["OFFS"]) / avg(speeds["Dlz4"]),
        "offs_over_naive_cs": avg(speeds["OFFS"])
        / avg([*speeds["RSS"], *speeds["GFS"]]),
        "gfs_minus_rss_cr": avg(ratios["GFS"]) - avg(ratios["RSS"]),
    }
    return rows, shape


# ---------------------------------------------------------------------------
# Figure 6 — decompression, partial decompression, scalability
# ---------------------------------------------------------------------------

def exp_fig6_decompression(
    dataset_names: Sequence[str] = DATASET_NAMES,
    config: BenchConfig = DEFAULT_BENCH,
) -> Tuple[Rows, Shape]:
    """Fig. 6a: full-archive decompression speed per codec.

    Paper shape: all DICT methods decompress at essentially the same speed
    (same Algorithm 1), competitive with Dlz4.
    """
    rows: Rows = [("dataset", "codec", "DS (MB/s)")]
    ds_speeds: Dict[str, List[float]] = {}
    for name in dataset_names:
        dataset = make_dataset(name, config.size, config.seed)
        raw = dataset_raw_bytes(dataset)
        for codec in default_codecs(config):
            codec.fit(dataset)
            tokens = codec.compress_dataset(dataset)
            speed = measure_decompression(codec, tokens, raw)
            rows.append((name, codec.name, round(speed, 3)))
            ds_speeds.setdefault(codec.name, []).append(speed)

    def avg(values: List[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    dict_speeds = [avg(ds_speeds[n]) for n in ("OFFS", "OFFS*", "RSS", "GFS")]
    shape = {
        "offs_ds_avg": avg(ds_speeds["OFFS"]),
        "dict_ds_spread": (max(dict_speeds) - min(dict_speeds)) / max(dict_speeds),
        "offs_over_dlz4_ds": avg(ds_speeds["OFFS"]) / avg(ds_speeds["Dlz4"]),
    }
    return rows, shape


def exp_fig6_partial(
    dataset_name: str = "alibaba",
    fractions: Sequence[float] = (0.01, 0.05, 0.10, 0.25, 0.50, 1.0),
    config: BenchConfig = DEFAULT_BENCH,
) -> Tuple[Rows, Shape]:
    """Fig. 6b: partial decompression speed vs retrieved fraction.

    Paper shape: PDS stays within the same order of magnitude as full DS all
    the way down to 1% retrieval — the per-path granularity at work.
    """
    dataset = make_dataset(dataset_name, config.size, config.seed)
    codec = OFFSCodec(config.offs_config()).fit(dataset)
    store = CompressedPathStore.from_dataset(dataset, codec.table)
    rows: Rows = [("fraction", "PDS (MB/s)", "retrieved MB")]
    speeds: List[float] = []
    for fraction in fractions:
        mbps, out_bytes = measure_partial_decompression(store, fraction, seed=config.seed)
        speeds.append(mbps)
        rows.append((fraction, round(mbps, 3), round(out_bytes / 1e6, 3)))
    shape = {
        "pds_at_1pct_over_full": speeds[0] / speeds[-1] if speeds[-1] else 0.0,
        "pds_min": min(speeds),
    }
    return rows, shape


def exp_fig6_scalability(
    dataset_name: str = "alibaba",
    fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    config: BenchConfig = DEFAULT_BENCH,
) -> Tuple[Rows, Shape]:
    """Fig. 6c: CR when the table is built from a fraction of the paths.

    Paper shape: CR loses < 15% when constructed from a 20% sample and
    stays ≥ 2.5× the Dlz4 reference throughout.
    """
    dataset = make_dataset(dataset_name, config.size, config.seed)
    dlz4 = measure_codec(Dlz4Codec(sample_exponent=config.sample_exponent), dataset)
    # λ is a property of the archive being compressed, not of how many paths
    # had arrived when the table was trained: pin it to the full-data value
    # so the sweep varies exactly one thing (sample representativeness).
    full_lambda = config.offs_config().lambda_for(dataset.node_count())
    rows: Rows = [("table sample", "CR", "CR vs Dlz4")]
    crs: List[float] = []
    base_id = dataset.max_vertex_id() + 1
    for fraction in fractions:
        sample = dataset.sample_fraction(fraction, seed=config.seed)
        # Train on the arrived fraction directly (k=0): the figure studies
        # how representative the *fraction* is, so compounding it with the
        # builder's own 1-in-2^k subsampling would measure two things.
        codec = OFFSCodec(
            config.offs_config(sample_exponent=0, capacity=full_lambda),
            base_id=base_id,
        )
        codec.fit(sample)
        tokens = [codec.compress_path(p) for p in dataset]
        raw = dataset_raw_bytes(dataset)
        cr = raw / tokens_total_bytes(codec, tokens)
        crs.append(cr)
        rows.append((f"{fraction:.0%}", round(cr, 3), round(cr / dlz4.compression_ratio, 2)))
    shape = {
        "relative_loss_at_20pct": (crs[-1] - crs[0]) / crs[-1] if crs[-1] else 1.0,
        "cr_20pct_over_dlz4": crs[0] / dlz4.compression_ratio,
    }
    return rows, shape


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md A1–A3)
# ---------------------------------------------------------------------------

def exp_ablation_matchers(
    dataset_name: str = "alibaba",
    config: BenchConfig = DEFAULT_BENCH,
) -> Tuple[Rows, Shape]:
    """A1: matcher backends — flat hash, two-level hash, trie, rolling.

    All backends produce identical tables and tokens (checked); they differ
    in probe cost (Lemma 3 / §IV-D / the O(1)-per-length rolling hash),
    reported here from the backends' own
    :class:`~repro.core.probestats.ProbeStats` counters over a fixed batch.
    """
    from repro.core.compressor import compress_dataset
    from repro.core.matcher import static_matcher_from_table

    dataset = make_dataset(dataset_name, config.size, config.seed)
    rows: Rows = [
        ("matcher", "CR", "fit (s)", "compress (s)", "probes", "hashed vertices")
    ]
    crs: List[float] = []
    token_sets = []
    probe_batch = list(dataset.head(200))
    for backend in ("hash", "multilevel", "trie", "rolling"):
        codec = OFFSCodec(config.offs_config(matcher=backend))
        m = measure_codec(codec, dataset)
        crs.append(m.compression_ratio)
        token_sets.append(tuple(codec.compress_dataset(dataset.head(50))))
        # Probe-cost accounting over one batch: zero the backend's counters
        # with the public reset() (never by re-instantiating the stats
        # object), compress the batch, read the totals.
        matcher = static_matcher_from_table(codec.table, backend)
        matcher.stats.reset()
        compress_dataset(probe_batch, codec.table, matcher)
        rows.append(
            (
                backend,
                round(m.compression_ratio, 3),
                round(m.fit_seconds, 3),
                round(m.compress_seconds, 3),
                matcher.stats.probes,
                matcher.stats.hashed_vertices,
            )
        )
    shape = {
        "results_identical": float(len(set(token_sets)) == 1 and len(set(round(c, 9) for c in crs)) == 1),
    }
    return rows, shape


def exp_flat_batch(
    dataset_name: str = "alibaba",
    config: BenchConfig = DEFAULT_BENCH,
    rounds: int = 3,
) -> Tuple[Rows, Shape]:
    """A4: the flat-corpus batch pipeline vs the per-path loop.

    One row per (backend, mode): the seed pipeline (per-path loop over
    tuples, flat hash matcher) against :func:`~repro.core.compressor.
    compress_paths_flat` per backend — with ``rolling`` hitting the
    vectorized :class:`~repro.core.rollhash.FlatBatchKernel`.  Output is
    byte-identical everywhere (checked); timings are min-of-*rounds*.
    """
    import time

    from repro.core.compressor import compress_dataset, compress_paths_flat
    from repro.core.matcher import static_matcher_from_table

    dataset = make_dataset(dataset_name, config.size, config.seed)
    codec = OFFSCodec(config.offs_config())
    codec.fit(dataset)
    table = codec.table
    paths = list(dataset)
    corpus = dataset.to_flat()
    total_symbols = corpus.total_symbols

    def min_of(run) -> float:
        best = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - started)
        return best

    baseline_matcher = static_matcher_from_table(table, "hash")
    baseline_tokens = compress_dataset(paths, table, baseline_matcher)
    baseline_seconds = min_of(lambda: compress_dataset(paths, table, baseline_matcher))

    rows: Rows = [("pipeline", "backend", "compress (s)", "Msym/s", "speedup", "identical")]
    rows.append(
        (
            "per-path loop",
            "hash",
            round(baseline_seconds, 4),
            round(total_symbols / baseline_seconds / 1e6, 3),
            1.0,
            1,
        )
    )
    shape: Shape = {}
    for backend in ("hash", "multilevel", "trie", "rolling"):
        matcher = static_matcher_from_table(table, backend)
        tokens = compress_paths_flat(corpus, table, matcher)
        identical = tokens == baseline_tokens
        seconds = min_of(lambda: compress_paths_flat(corpus, table, matcher))
        speedup = baseline_seconds / seconds if seconds else float("inf")
        rows.append(
            (
                "flat batch",
                backend,
                round(seconds, 4),
                round(total_symbols / seconds / 1e6, 3),
                round(speedup, 2),
                int(identical),
            )
        )
        shape[f"{backend}_identical"] = float(identical)
        if backend == "rolling":
            shape["rolling_flat_speedup"] = speedup
    return rows, shape


def exp_ablation_measure(
    config: BenchConfig = DEFAULT_BENCH,
) -> Tuple[Rows, Shape]:
    """A2: practical vs gross frequency on the collision-heavy workload.

    The Example 1 effect in vivo: with a small capacity, GFS fills the table
    with overlapping fragments of the hot subpath while OFFS keeps
    complementary entries, so OFFS wins CR decisively and GFS ≲ RSS.
    """
    dataset = make_dataset("collision", config.size, config.seed)
    capacity = 24  # tight capacity is what makes collisions costly
    offs = measure_codec(
        OFFSCodec(config.offs_config(sample_exponent=0, capacity=capacity)), dataset
    )
    gfs = measure_codec(GFSCodec(capacity=capacity, sample_exponent=0), dataset)
    rss = measure_codec(RSSCodec(capacity=capacity, sample_exponent=0, seed=config.seed), dataset)
    rows: Rows = [
        ("codec", "CR"),
        ("OFFS", round(offs.compression_ratio, 3)),
        ("GFS", round(gfs.compression_ratio, 3)),
        ("RSS", round(rss.compression_ratio, 3)),
    ]
    shape = {
        "offs_over_gfs": offs.compression_ratio / gfs.compression_ratio,
        "gfs_minus_rss": gfs.compression_ratio - rss.compression_ratio,
    }
    return rows, shape


def exp_ablation_params(
    dataset_name: str = "alibaba",
    config: BenchConfig = DEFAULT_BENCH,
) -> Tuple[Rows, Shape]:
    """A3: δ and β sweeps around the deployed defaults (δ=8, β=500).

    Bigger δ lifts the CR ceiling but inflates probe cost; β controls the
    table-size/coverage balance with a CR optimum in the middle.
    """
    dataset = make_dataset(dataset_name, config.size, config.seed)
    rows: Rows = [("param", "value", "CR", "CS (MB/s)")]
    crs_delta: List[float] = []
    for delta in (4, 8, 12):
        codec = OFFSCodec(config.offs_config(delta=delta, alpha=min(5, delta - 1)))
        m = measure_codec(codec, dataset)
        crs_delta.append(m.compression_ratio)
        rows.append(("delta", delta, round(m.compression_ratio, 3), round(m.compression_speed_mbps, 3)))
    crs_beta: List[float] = []
    for beta in (125, 500, 2000):
        codec = OFFSCodec(config.offs_config(beta=beta))
        m = measure_codec(codec, dataset)
        crs_beta.append(m.compression_ratio)
        rows.append(("beta", beta, round(m.compression_ratio, 3), round(m.compression_speed_mbps, 3)))
    shape = {
        "delta8_over_delta4": crs_delta[1] / crs_delta[0] if crs_delta[0] else 0.0,
        "cr_beta_default": crs_beta[1],
    }
    return rows, shape
