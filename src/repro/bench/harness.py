"""Shared configuration and codec roster for the experiment suite.

The paper's comparison setup (Section VI-A): all DICT competitors share the
table capacity, the sample rate for table construction is 1/128, OFFS runs
with δ = 8 and α = 5, and OFFS* is the (i=2, k=7) fast mode.  At
pure-Python, scaled-down dataset sizes the *sample exponent* must scale too
(1/128 of 20k paths trains on almost nothing), so :class:`BenchConfig`
centralizes the scaled equivalents and every bench file reads from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.baselines import Dlz4Codec, GFSCodec, RSSCodec
from repro.core.config import OFFSConfig
from repro.core.offs import OFFSCodec


@dataclass(frozen=True)
class BenchConfig:
    """One benchmark campaign's knobs.

    :param size: dataset size preset (``tiny`` / ``small`` / ``medium``).
    :param sample_exponent: the scaled equivalent of the paper's k=7;
        ``2**k`` paths feed one to table construction.
    :param iterations: OFFS default-mode iterations (paper: 4).
    :param fast_iterations: OFFS* iterations (paper: 2).
    :param beta: λ divisor (paper: 500).
    :param seed: workload seed.
    """

    size: str = "medium"
    sample_exponent: int = 4
    iterations: int = 4
    fast_iterations: int = 2
    beta: float = 500.0
    seed: int = 0

    def offs_config(self, **overrides) -> OFFSConfig:
        """The campaign's OFFS default-mode configuration."""
        base = dict(
            iterations=self.iterations,
            sample_exponent=self.sample_exponent,
            beta=self.beta,
        )
        base.update(overrides)
        return OFFSConfig(**base)

    def offs_fast_config(self, **overrides) -> OFFSConfig:
        """The campaign's OFFS* fast-mode configuration."""
        return self.offs_config(iterations=self.fast_iterations, **overrides)


#: The default campaign used by every ``benchmarks/bench_*.py`` file.  Kept
#: at ``medium`` size — large enough for the paper's λ = nodes/500 capacity
#: rule to land in its intended regime, small enough for pure Python.
DEFAULT_BENCH = BenchConfig()

#: A fast campaign for smoke runs and CI.
QUICK_BENCH = BenchConfig(size="small", sample_exponent=2)


def offs_pair(config: BenchConfig = DEFAULT_BENCH) -> List[OFFSCodec]:
    """The two OFFS modes of Exp-1's trade-off pick: OFFS and OFFS*."""
    default = OFFSCodec(config.offs_config())
    fast = OFFSCodec(config.offs_fast_config())
    fast.name = "OFFS*"
    return [default, fast]


def default_codecs(
    config: BenchConfig = DEFAULT_BENCH,
    dict_capacity: int = 512,
) -> List:
    """The Fig. 5/6 roster: OFFS, OFFS*, Dlz4, RSS, GFS.

    :param dict_capacity: table capacity ``c`` for the naive DICTs; the
        paper gives them the same capacity as OFFS, whose λ at medium scale
        lands near 512.
    """
    roster: List = offs_pair(config)
    roster.append(Dlz4Codec(sample_exponent=config.sample_exponent))
    roster.append(
        RSSCodec(capacity=dict_capacity, sample_exponent=config.sample_exponent, seed=config.seed)
    )
    roster.append(
        GFSCodec(capacity=dict_capacity, sample_exponent=config.sample_exponent)
    )
    return roster


#: Factories keyed by codec name, for single-codec benches.
CODEC_FACTORIES: Dict[str, Callable[[BenchConfig], object]] = {
    "OFFS": lambda cfg: OFFSCodec(cfg.offs_config()),
    "OFFS*": lambda cfg: offs_pair(cfg)[1],
    "Dlz4": lambda cfg: Dlz4Codec(sample_exponent=cfg.sample_exponent),
    "RSS": lambda cfg: RSSCodec(capacity=512, sample_exponent=cfg.sample_exponent),
    "GFS": lambda cfg: GFSCodec(capacity=512, sample_exponent=cfg.sample_exponent),
}
