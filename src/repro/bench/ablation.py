"""Ablation run-matrix harness — which components earn their keep, per workload.

The system has more knobs than anyone can reason about by hand: four matcher
backends, the rolling hash width, table capacity, construction iterations and
sampling, store format v1/v2, the expansion cache, process counts, sharding.
This module switches each one off (or swaps its value) against a fixed
baseline, measures every cell with the Section VI-B metrics (CR / CS / DS /
PDS plus raw compress/decompress latency, min-of-N), and ranks the components
by the marginal metric delta of toggling them — the aumai-ablation pattern:
generate the run matrix, give every cell a stable run id, turn the measured
numbers into a per-component importance report.

The three layers, each usable alone:

* **Knob registry** — :data:`KNOBS`, a tuple of declarative :class:`Knob`
  entries.  Each names its component, its non-baseline values, and *how to
  apply it*: a dotted target (``config.matcher`` mutates the
  :class:`~repro.core.config.OFFSConfig`, ``spec.store_format`` mutates the
  surrounding pipeline :class:`RunSpec`) plus optional ``requires`` settings
  for coupled knobs (``hash_bits`` pins the rolling backend).
* **Run matrix** — :func:`generate_matrix` expands workloads x knobs into
  :class:`Cell` entries with deterministic run ids
  (``<workload>-<knob>=<value>``; ``<workload>-baseline`` anchors each
  workload; pairwise mode adds ``<workload>-<a>=<va>+<b>=<vb>``).  Ids are a
  pure function of the registry — independent of input ordering, hash seeds
  and Python version, which makes them usable as resume keys and artifact
  names.
* **Executor + report** — :func:`run_matrix` measures cells (optionally
  fanned out over worker processes; every cell round-trip-verifies its decode
  against the original paths before any number is reported), resumes from a
  partial-results file keyed by run id, and :func:`build_report` emits the
  ``BENCH_ablation.json`` payload with the ranked importance table that
  :func:`repro.core.autotune.autotune` consumes.

Cell timings are machine numbers; run ids, matrix shape, verification flags
and byte sizes are deterministic.  The importance *ranking* is deterministic
for tied scores (ties break on component then knob name), which keeps the
report diffable across runs of the same machine.
"""

from __future__ import annotations

import json
import os
import random
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.analysis.sizing import dataset_raw_bytes
from repro.core.config import OFFSConfig
from repro.core.errors import InvalidInputError
from repro.obs import catalog
from repro.obs.runtime import active_span, active_timer, get_active

#: Bumped whenever the report or partial-results layout changes shape;
#: consumers (autotune, the nightly diff tooling) refuse unknown versions.
SCHEMA_VERSION = 1

#: The default workload pair the nightly matrix covers: the cloud-trace
#: surrogate and the road-network surrogate stress opposite ends of the
#: overlap spectrum, so a component that matters on neither is safe to doubt.
DEFAULT_WORKLOADS: Tuple[str, ...] = ("alibaba", "rome")

#: Construction sample exponent per size tier — the same scaled equivalents
#: of the paper's k=7 that ``repro.bench.runner`` uses.
_SIZE_SAMPLE_EXPONENT = {"tiny": 0, "small": 2, "medium": 4}

#: Metrics the importance score reads, as (report key, pretty name).
_HEADLINE_METRICS = (
    ("compression_ratio", "CR"),
    ("compression_speed_mbps", "CS"),
    ("decompression_speed_mbps", "DS"),
    ("partial_decompression_speed_mbps", "PDS"),
)


# -- the pipeline a cell runs ----------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """Everything one ablation cell needs to build, compress and decode.

    ``config`` carries the :class:`OFFSConfig` knobs; the remaining fields
    are pipeline choices that live outside the config object — which store
    format serves the decode measurements, whether the expansion cache is
    allowed to persist between timed rounds, how many processes compress,
    and whether the archive is sharded.
    """

    workload: str
    size: str = "small"
    seed: int = 0
    config: OFFSConfig = field(default_factory=lambda: OFFSConfig(matcher="rolling"))
    store_format: str = "v1"
    expansion_cache: bool = True
    processes: int = 1
    shards: int = 0
    partition: str = "range"


def baseline_spec(workload: str, size: str = "small", seed: int = 0) -> RunSpec:
    """The anchor cell every knob's delta is measured against.

    The baseline is the *production batch path*: rolling matcher (the flat
    kernel's default), the size tier's scaled sample exponent, v1 in-memory
    store, expansion cache on, one process, monolithic.
    """
    if size not in _SIZE_SAMPLE_EXPONENT:
        raise InvalidInputError(
            f"unknown size {size!r}; known: {sorted(_SIZE_SAMPLE_EXPONENT)}"
        )
    config = OFFSConfig(
        matcher="rolling",
        sample_exponent=_SIZE_SAMPLE_EXPONENT[size],
        seed=seed,
    )
    return RunSpec(workload=workload, size=size, seed=seed, config=config)


# -- the knob registry -----------------------------------------------------------


@dataclass(frozen=True)
class Knob:
    """One ablatable component: its values and how to apply them.

    :param name: run-id key (``<workload>-<name>=<value>``).
    :param component: human-readable component the knob toggles; the
        importance table ranks components, so several knobs may share one.
    :param target: dotted setting the value lands on — ``config.<field>``
        for :class:`OFFSConfig` fields, ``spec.<field>`` for :class:`RunSpec`
        pipeline fields.
    :param values: the non-baseline values to sweep (the baseline cell
        supplies the default).
    :param requires: extra ``(target, value)`` settings a value only makes
        sense with (e.g. ``hash_bits`` pins ``config.matcher`` to
        ``rolling``).
    :param summary: one line for the report and docs.
    """

    name: str
    component: str
    target: str
    values: Tuple[object, ...]
    requires: Tuple[Tuple[str, object], ...] = ()
    summary: str = ""

    def settings_for(self, value: object) -> Tuple[Tuple[str, object], ...]:
        """The full, ordered ``(target, value)`` list one cell applies."""
        return self.requires + ((self.target, value),)


#: The registry.  Order is meaningful: it fixes pairwise enumeration and the
#: tie-break order of the importance table, so append — don't reorder.
KNOBS: Tuple[Knob, ...] = (
    Knob(
        name="matcher",
        component="matcher backend",
        target="config.matcher",
        values=("hash", "multilevel", "trie"),
        summary="prefix-probe backend swap; output is byte-identical, so "
        "this knob moves only the speed metrics",
    ),
    Knob(
        name="hash_bits",
        component="rolling-hash width",
        target="config.hash_bits",
        values=(12, 32),
        requires=(("config.matcher", "rolling"),),
        summary="narrower stored hashes collide more and pay verify cost",
    ),
    Knob(
        name="iterations",
        component="table construction",
        target="config.iterations",
        values=(0, 2),
        summary="0 switches construction off entirely (identity archive); "
        "2 is the paper's fast mode",
    ),
    Knob(
        name="sample_exponent",
        component="construction sampling",
        target="config.sample_exponent",
        values=(0, 6),
        summary="0 trains on every path, 6 on one in 64",
    ),
    Knob(
        name="capacity",
        component="table capacity",
        target="config.capacity",
        values=(64, 1024),
        summary="overrides the lambda = nodes/beta candidate budget",
    ),
    Knob(
        name="topdown_rounds",
        component="top-down refinement",
        target="config.topdown_rounds",
        values=(1,),
        summary="one hybrid top-down pass after the bottom-up iterations",
    ),
    Knob(
        name="store_format",
        component="store format",
        target="spec.store_format",
        values=("v2",),
        summary="serialize to RPC2 and decode through the mmap store "
        "instead of the in-memory v1 blob",
    ),
    Knob(
        name="expansion_cache",
        component="expansion cache",
        target="spec.expansion_cache",
        values=(False,),
        summary="invalidate the memoized supernode expansions before every "
        "timed decode round (the cold path, every time)",
    ),
    Knob(
        name="processes",
        component="parallel compression",
        target="spec.processes",
        values=(2,),
        summary="compress through repro.core.parallel workers instead of "
        "the in-process flat kernel",
    ),
    Knob(
        name="shards",
        component="sharded store",
        target="spec.shards",
        values=(2,),
        summary="partition into RPC2 shards under an RPSM manifest and "
        "decode through the fan-out query surface",
    ),
    Knob(
        name="reorder",
        component="vertex reordering",
        target="config.reorder",
        values=("frequency", "bfs", "locality"),
        requires=(("spec.store_format", "v2"),),
        summary="fit a compression-aware vertex order before table "
        "construction; hot vertices get small (cheap-varint) ids and the "
        "invertible mapping persists in the archive's order section",
    ),
)


def knob_by_name(name: str, knobs: Sequence[Knob] = KNOBS) -> Knob:
    """Look a knob up by run-id key."""
    for knob in knobs:
        if knob.name == name:
            return knob
    raise InvalidInputError(
        f"unknown knob {name!r}; registered: {[k.name for k in knobs]}"
    )


def format_value(value: object) -> str:
    """Canonical run-id spelling of a knob value (stable across versions).

    Booleans become ``on``/``off``, ``None`` becomes ``none``; everything
    else must already be an int or str — floats are rejected because their
    repr is a portability hazard in an id that must never drift.
    """
    if isinstance(value, bool):
        return "on" if value else "off"
    if value is None:
        return "none"
    if isinstance(value, (int, str)):
        return str(value)
    raise InvalidInputError(f"unsupported knob value type: {value!r}")


def _apply_settings(spec: RunSpec, settings: Iterable[Tuple[str, object]]) -> RunSpec:
    """Apply ``(target, value)`` pairs to *spec*, validating each target."""
    for target, value in settings:
        scope, _, fieldname = target.partition(".")
        if scope == "config" and fieldname in OFFSConfig.__dataclass_fields__:
            spec = replace(spec, config=spec.config.with_(**{fieldname: value}))
        elif scope == "spec" and fieldname in RunSpec.__dataclass_fields__:
            spec = replace(spec, **{fieldname: value})
        else:
            raise InvalidInputError(f"unknown knob target {target!r}")
    return spec


# -- the run matrix --------------------------------------------------------------


@dataclass(frozen=True)
class Cell:
    """One run of the matrix: a stable id plus the settings it applies."""

    run_id: str
    workload: str
    knob: Optional[str]  # None for the baseline anchor
    component: str
    value_label: str
    settings: Tuple[Tuple[str, object], ...]

    def spec(self, size: str = "small", seed: int = 0) -> RunSpec:
        """The fully-applied :class:`RunSpec` this cell measures."""
        return _apply_settings(baseline_spec(self.workload, size, seed), self.settings)


def generate_matrix(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    knobs: Sequence[Knob] = KNOBS,
    mode: str = "single",
) -> List[Cell]:
    """Expand *workloads* x *knobs* into the sorted, deduplicated cell list.

    ``single`` is the off-by-one-component matrix (baseline + one cell per
    knob value); ``pairwise`` additionally crosses every knob pair's values,
    which prices interactions (does the expansion cache still matter under
    the mmap store?) at quadratic cost.  Cells come back sorted by run id —
    input ordering, set iteration and hash seeds cannot influence the
    output, as the stability tests assert.
    """
    if mode not in ("single", "pairwise"):
        raise InvalidInputError(f"mode must be 'single' or 'pairwise', got {mode!r}")
    cells: Dict[str, Cell] = {}
    for workload in sorted(set(workloads)):
        anchor = Cell(
            run_id=f"{workload}-baseline",
            workload=workload,
            knob=None,
            component="baseline",
            value_label="baseline",
            settings=(),
        )
        cells[anchor.run_id] = anchor
        for knob in knobs:
            for value in knob.values:
                label = format_value(value)
                cell = Cell(
                    run_id=f"{workload}-{knob.name}={label}",
                    workload=workload,
                    knob=knob.name,
                    component=knob.component,
                    value_label=label,
                    settings=knob.settings_for(value),
                )
                cells[cell.run_id] = cell
        if mode == "pairwise":
            for i, first in enumerate(knobs):
                for second in knobs[i + 1:]:
                    for v1 in first.values:
                        for v2 in second.values:
                            l1, l2 = format_value(v1), format_value(v2)
                            cell = Cell(
                                run_id=(
                                    f"{workload}-{first.name}={l1}"
                                    f"+{second.name}={l2}"
                                ),
                                workload=workload,
                                knob=f"{first.name}+{second.name}",
                                component=f"{first.component} x {second.component}",
                                value_label=f"{l1}+{l2}",
                                settings=first.settings_for(v1)
                                + second.settings_for(v2),
                            )
                            cells[cell.run_id] = cell
    return [cells[run_id] for run_id in sorted(cells)]


# -- measuring one cell ----------------------------------------------------------


def _min_of(run: Callable[[], object], rounds: int) -> Tuple[object, float]:
    """``(last result, best wall seconds)`` over *rounds* runs."""
    best = float("inf")
    result: object = None
    for _ in range(max(1, rounds)):
        started = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - started)
    return result, best


def _invalidate_expansions(store: object) -> None:
    """Force the cold decode path where the store exposes its table."""
    table = getattr(store, "table", None)
    if table is not None:
        table.invalidate_expansions()


def measure_cell(spec: RunSpec, rounds: int = 2) -> Dict[str, object]:
    """Run one cell's full pipeline and return its metrics dict.

    Build the table (timed once — construction cost is part of CS, the
    paper's Exp-1 shape), compress min-of-*rounds*, serialize per the
    spec's store format, decode min-of-*rounds* through that format's store,
    and retrieve a seeded 10% sample for PDS.  The decode output is
    verified path-for-path against the originals **before** any timing is
    trusted; a lossy cell raises instead of reporting.
    """
    import tempfile

    from repro.core.compressor import compress_paths_flat
    from repro.core.matcher import static_matcher_from_table
    from repro.core.offs import OFFSCodec
    from repro.core.store import CompressedPathStore
    from repro.workloads.registry import make_dataset

    config = spec.config
    dataset = make_dataset(spec.workload, spec.size, spec.seed)
    paths = [tuple(p) for p in dataset]
    corpus = dataset.to_flat()
    raw_bytes = dataset_raw_bytes(paths)

    started = time.perf_counter()
    codec = OFFSCodec(config).fit(corpus)
    fit_seconds = time.perf_counter() - started
    table = codec.table
    # Under a reordering config the table lives in new-id space, so the
    # timed compression must run over the transformed corpus; the stores
    # invert on retrieval, so verification still compares original ids.
    order = codec.order
    work_corpus = corpus if order is None else order.transform_corpus(corpus)

    if spec.processes > 1:
        from repro.core.parallel import parallel_compress

        work_paths = (
            paths if order is None else [order.apply_path(p) for p in paths]
        )

        def compress() -> List[Tuple[int, ...]]:
            return parallel_compress(
                work_paths, table, processes=spec.processes, backend=config.matcher
            )
    else:
        matcher = static_matcher_from_table(
            table, config.matcher, hash_bits=config.hash_bits
        )

        def compress() -> List[Tuple[int, ...]]:
            return compress_paths_flat(work_corpus, table, matcher)

    tokens, compress_seconds = _min_of(compress, rounds)
    store = CompressedPathStore.from_tokens(
        table, tokens, matcher_backend=config.matcher, order=order
    )

    def _timed_decode(reader: object) -> Tuple[bool, float, float, float]:
        """(verified, decompress_s, pds_s, sample_bytes) for one store."""
        restored = reader.retrieve_all()
        verified = [tuple(p) for p in restored] == paths

        def full_decode() -> object:
            if not spec.expansion_cache:
                _invalidate_expansions(reader)
            return reader.retrieve_all()

        _, decompress_s = _min_of(full_decode, rounds)
        count = max(1, min(len(paths) // 10, 256))
        sample_ids = sorted(random.Random(spec.seed).sample(range(len(paths)), count))
        sample_bytes = dataset_raw_bytes([paths[i] for i in sample_ids])

        def partial_decode() -> object:
            if not spec.expansion_cache:
                _invalidate_expansions(reader)
            return [reader.retrieve(i) for i in sample_ids]

        _, pds_s = _min_of(partial_decode, rounds)
        return verified, decompress_s, pds_s, sample_bytes

    if spec.shards > 0:
        from repro.core.sharded import ShardedPathStore, build_sharded_store

        with tempfile.TemporaryDirectory(prefix="ablation-shards-") as tmp:
            manifest = os.path.join(tmp, "store.rpsm")
            build_sharded_store(
                corpus,
                table,
                manifest,
                shards=spec.shards,
                partition=spec.partition,
                backend=config.matcher,
                order=order,
            )
            with ShardedPathStore.open(manifest) as sharded:
                compressed_bytes = sharded.mapped_bytes
                verified, decompress_seconds, pds_seconds, sample_bytes = (
                    _timed_decode(sharded)
                )
    elif spec.store_format == "v2":
        from repro.core.mapped import MappedPathStore
        from repro.core.serialize import dumps_store_v2

        blob = dumps_store_v2(store)
        compressed_bytes = len(blob)
        fd, v2_path = tempfile.mkstemp(suffix=".rpc2")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            with MappedPathStore.open(v2_path) as mapped:
                verified, decompress_seconds, pds_seconds, sample_bytes = (
                    _timed_decode(mapped)
                )
        finally:
            os.unlink(v2_path)
    elif spec.store_format == "v1":
        from repro.core.serialize import dumps_store

        compressed_bytes = len(dumps_store(store))
        verified, decompress_seconds, pds_seconds, sample_bytes = _timed_decode(store)
    else:
        raise InvalidInputError(f"unknown store format {spec.store_format!r}")

    if not verified:
        raise AssertionError(
            f"{spec.workload}: lossy round-trip under {spec!r} — refusing to "
            "report metrics for a corrupt cell"
        )

    compress_total = fit_seconds + compress_seconds
    _mb = 1_000_000.0
    return {
        "raw_bytes": raw_bytes,
        "compressed_bytes": compressed_bytes,
        "table_entries": len(table),
        "paths": len(paths),
        "verified": True,
        "compression_ratio": round(raw_bytes / compressed_bytes, 4)
        if compressed_bytes
        else 0.0,
        "compression_speed_mbps": round(raw_bytes / _mb / compress_total, 4)
        if compress_total > 0
        else 0.0,
        "decompression_speed_mbps": round(raw_bytes / _mb / decompress_seconds, 4)
        if decompress_seconds > 0
        else 0.0,
        "partial_decompression_speed_mbps": round(sample_bytes / _mb / pds_seconds, 4)
        if pds_seconds > 0
        else 0.0,
        "fit_seconds": round(fit_seconds, 4),
        "compress_seconds": round(compress_seconds, 4),
        "decompress_seconds": round(decompress_seconds, 4),
    }


def _run_cell_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Process-pool entry point: pure-data payload in, result dict out."""
    cell = Cell(
        run_id=payload["run_id"],
        workload=payload["workload"],
        knob=payload["knob"],
        component=payload["component"],
        value_label=payload["value_label"],
        settings=tuple((t, v) for t, v in payload["settings"]),
    )
    spec = cell.spec(size=payload["size"], seed=payload["seed"])
    result = measure_cell(spec, rounds=payload["rounds"])
    result.update(
        run_id=cell.run_id,
        workload=cell.workload,
        knob=cell.knob,
        component=cell.component,
        value=cell.value_label,
    )
    return result


def _cell_payload(
    cell: Cell, size: str, seed: int, rounds: int
) -> Dict[str, object]:
    return {
        "run_id": cell.run_id,
        "workload": cell.workload,
        "knob": cell.knob,
        "component": cell.component,
        "value_label": cell.value_label,
        "settings": list(cell.settings),
        "size": size,
        "seed": seed,
        "rounds": rounds,
    }


# -- the executor ----------------------------------------------------------------


def _load_partial(
    path: Optional[str], size: str, seed: int
) -> Dict[str, Dict[str, object]]:
    """Completed results from a resumable partial file, or ``{}``.

    A partial written for a different schema version, size tier or seed is
    ignored wholesale — resuming across incompatible campaigns would splice
    unrelated measurements under matching run ids.
    """
    if not path or not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if (
        data.get("schema_version") != SCHEMA_VERSION
        or data.get("size") != size
        or data.get("seed") != seed
    ):
        return {}
    results = data.get("results", {})
    return {
        run_id: result
        for run_id, result in results.items()
        if result.get("verified") is True
    }


def _write_partial(
    path: str, size: str, seed: int, results: Dict[str, Dict[str, object]]
) -> None:
    """Atomically persist *results* keyed by run id (crash-safe resume)."""
    payload = {
        "schema_version": SCHEMA_VERSION,
        "size": size,
        "seed": seed,
        "results": results,
    }
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    os.replace(tmp, path)


def run_matrix(
    cells: Sequence[Cell],
    size: str = "small",
    seed: int = 0,
    rounds: int = 2,
    processes: int = 1,
    partial_path: Optional[str] = None,
    echo: Optional[Callable[[str], None]] = None,
) -> Dict[str, Dict[str, object]]:
    """Measure every cell, resuming past completed run ids.

    :param processes: > 1 fans cells out over a process pool (each worker
        regenerates its workload from the seeded registry, so nothing but
        pure-data payloads crosses the fork boundary).  Cells whose own spec
        compresses in parallel nest their pool inside the worker.
    :param partial_path: JSON file of completed results; read at start
        (matching cells are skipped and counted on
        ``ablation.cells_skipped``) and rewritten after every completion.
    :returns: run id -> result dict for *all* cells, resumed and fresh.
    """
    say = echo or (lambda message: None)
    results = _load_partial(partial_path, size, seed)
    completed = {r: results[r] for r in results if any(c.run_id == r for c in cells)}
    pending = [cell for cell in cells if cell.run_id not in completed]
    obs = get_active()
    if obs is not None and len(completed):
        obs.registry.counter(catalog.ABLATION_CELLS_SKIPPED).inc(len(completed))
    for run_id in sorted(completed):
        say(f"skip {run_id} (resumed)")

    def record(run_id: str, result: Dict[str, object]) -> None:
        completed[run_id] = result
        if obs is not None:
            obs.registry.counter(catalog.ABLATION_CELLS).inc()
        if partial_path:
            _write_partial(partial_path, size, seed, completed)
        say(
            f"done {run_id}: CR={result['compression_ratio']} "
            f"CS={result['compression_speed_mbps']}MB/s "
            f"DS={result['decompression_speed_mbps']}MB/s"
        )

    with active_timer(catalog.ABLATION_SECONDS):
        if processes > 1 and len(pending) > 1:
            with ProcessPoolExecutor(max_workers=processes) as pool:
                futures = {
                    pool.submit(
                        _run_cell_payload, _cell_payload(cell, size, seed, rounds)
                    ): cell.run_id
                    for cell in pending
                }
                remaining = set(futures)
                while remaining:
                    finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    for future in finished:
                        record(futures[future], future.result())
        else:
            for cell in pending:
                with active_span(catalog.SPAN_ABLATION_CELL, run_id=cell.run_id):
                    with active_timer(catalog.ABLATION_CELL_SECONDS):
                        result = _run_cell_payload(
                            _cell_payload(cell, size, seed, rounds)
                        )
                record(cell.run_id, result)
    return {cell.run_id: completed[cell.run_id] for cell in cells}


# -- the importance report -------------------------------------------------------


def importance_table(
    results: Dict[str, Dict[str, object]],
) -> List[Dict[str, object]]:
    """Rank each workload's knobs by the marginal effect of toggling them.

    A knob's importance is the largest relative headline-metric delta
    (|ΔCR|, |ΔCS|, |ΔDS|, |ΔPDS|, each relative to the workload's baseline
    cell) over all its cells, rounded to 4 decimals.  Rank is per workload;
    exact ties break on component name then knob name, so the ordering is a
    pure function of the scores — re-running on identical numbers can never
    shuffle the table.
    """
    baselines = {
        r["workload"]: r for r in results.values() if r.get("knob") is None
    }
    grouped: Dict[Tuple[str, str], List[Dict[str, object]]] = {}
    for result in results.values():
        knob = result.get("knob")
        if knob is None or "+" in str(knob):
            continue  # baselines anchor; pairwise cells price interactions only
        grouped.setdefault((result["workload"], str(knob)), []).append(result)

    entries: List[Dict[str, object]] = []
    for (workload, knob), cells in sorted(grouped.items()):
        base = baselines.get(workload)
        if base is None:
            raise InvalidInputError(
                f"no baseline cell for workload {workload!r}; importance "
                "deltas are meaningless without the anchor"
            )
        per_value: Dict[str, Dict[str, float]] = {}
        importance = 0.0
        best_value, best_cr = None, float("-inf")
        for cell in sorted(cells, key=lambda c: str(c["value"])):
            deltas: Dict[str, float] = {}
            for key, pretty in _HEADLINE_METRICS:
                base_metric = float(base[key])
                delta = (
                    (float(cell[key]) - base_metric) / base_metric
                    if base_metric
                    else 0.0
                )
                deltas[f"delta_{pretty.lower()}"] = round(delta, 4)
            per_value[str(cell["value"])] = deltas
            importance = max(importance, max(abs(d) for d in deltas.values()))
            if float(cell["compression_ratio"]) > best_cr:
                best_cr = float(cell["compression_ratio"])
                best_value = str(cell["value"])
        entries.append(
            {
                "workload": workload,
                "knob": knob,
                "component": cells[0]["component"],
                "importance": round(importance, 4),
                "best_value": best_value,
                "best_cr": round(best_cr, 4),
                "baseline_cr": round(float(base["compression_ratio"]), 4),
                "values": per_value,
            }
        )

    entries.sort(
        key=lambda e: (
            e["workload"],
            -e["importance"],
            e["component"],
            e["knob"],
        )
    )
    rank = 0
    last_workload = None
    for entry in entries:
        rank = rank + 1 if entry["workload"] == last_workload else 1
        last_workload = entry["workload"]
        entry["rank"] = rank
    return entries


def build_report(
    results: Dict[str, Dict[str, object]],
    workloads: Sequence[str],
    size: str,
    seed: int,
    rounds: int,
    mode: str = "single",
    knobs: Sequence[Knob] = KNOBS,
) -> Dict[str, object]:
    """The ``BENCH_ablation.json`` payload: runs + ranked importance."""
    return {
        "benchmark": "ablation",
        "schema_version": SCHEMA_VERSION,
        "mode": mode,
        "size": size,
        "seed": seed,
        "rounds": rounds,
        "workloads": sorted(set(workloads)),
        "knobs": [
            {
                "name": knob.name,
                "component": knob.component,
                "target": knob.target,
                "values": [format_value(v) for v in knob.values],
                "requires": [[t, format_value(v)] for t, v in knob.requires],
                "summary": knob.summary,
            }
            for knob in knobs
        ],
        "runs": {run_id: results[run_id] for run_id in sorted(results)},
        "importance": importance_table(results),
    }


def run_ablation(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    size: str = "small",
    seed: int = 0,
    rounds: int = 2,
    processes: int = 1,
    mode: str = "single",
    partial_path: Optional[str] = None,
    knobs: Sequence[Knob] = KNOBS,
    echo: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """One call: generate the matrix, execute it, build the report."""
    cells = generate_matrix(workloads, knobs=knobs, mode=mode)
    results = run_matrix(
        cells,
        size=size,
        seed=seed,
        rounds=rounds,
        processes=processes,
        partial_path=partial_path,
        echo=echo,
    )
    return build_report(
        results, workloads, size=size, seed=seed, rounds=rounds, mode=mode, knobs=knobs
    )


def load_report(path: str) -> Dict[str, object]:
    """Read and schema-check a ``BENCH_ablation.json`` report."""
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    if report.get("benchmark") != "ablation":
        raise InvalidInputError(f"{path}: not an ablation report")
    if report.get("schema_version") != SCHEMA_VERSION:
        raise InvalidInputError(
            f"{path}: schema_version {report.get('schema_version')!r} "
            f"(this build reads {SCHEMA_VERSION})"
        )
    return report
