"""Standalone experiment runner — ``python -m repro.bench``.

Runs every paper experiment without pytest and writes one consolidated
report (tables + ASCII figure charts + shape dictionaries).  Useful when
the goal is the reproduced artifacts rather than timing statistics; the
pytest-benchmark route (``pytest benchmarks/ --benchmark-only``) remains
the full harness.

::

    python -m repro.bench                     # medium campaign, full set
    python -m repro.bench --size small        # quick pass
    python -m repro.bench --only fig5 fig6    # subset by prefix
    python -m repro.bench --out report.txt    # also write to a file
    python -m repro.bench --metrics m.json    # run under repro.obs, dump JSON
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.charts import chart_from_rows
from repro.analysis.stats import format_table
from repro.bench.experiments import (
    exp_ablation_matchers,
    exp_ablation_measure,
    exp_ablation_params,
    exp_fig4_iterations,
    exp_fig4_sampling,
    exp_fig5_comparison,
    exp_fig6_decompression,
    exp_fig6_partial,
    exp_fig6_scalability,
    exp_flat_batch,
    exp_table3,
)
from repro.bench.harness import BenchConfig
from repro.workloads.registry import DATASET_NAMES

#: name -> (callable(config) -> (rows, shape), optional chart spec)
EXPERIMENTS: Dict[str, Tuple[Callable, Optional[Tuple]]] = {
    "table3": (exp_table3, None),
    **{
        f"fig4_iterations_{name}": (
            (lambda n: lambda config: exp_fig4_iterations(n, config=config))(name),
            (0, {"CR": 1, "CS": 2}),
        )
        for name in DATASET_NAMES
    },
    **{
        f"fig4_sampling_{name}": (
            (lambda n: lambda config: exp_fig4_sampling(n, config=config))(name),
            (0, {"CR": 2, "CS": 3}),
        )
        for name in DATASET_NAMES
    },
    "fig5_comparison": (exp_fig5_comparison, None),
    "fig6_decompression": (exp_fig6_decompression, None),
    "fig6_partial": (exp_fig6_partial, (0, {"PDS": 1})),
    "fig6_scalability": (exp_fig6_scalability, (0, {"CR": 1})),
    "ablation_matchers": (exp_ablation_matchers, None),
    "ablation_measure": (exp_ablation_measure, None),
    "ablation_params": (exp_ablation_params, None),
    "flat_batch": (exp_flat_batch, None),
}


def run_experiments(
    config: BenchConfig,
    only: Optional[List[str]] = None,
) -> List[str]:
    """Run the (filtered) experiment set; returns the report sections."""
    sections: List[str] = []
    for name, (fn, chart) in EXPERIMENTS.items():
        if only and not any(name.startswith(prefix) for prefix in only):
            continue
        started = time.perf_counter()
        rows, shape = fn(config=config)
        elapsed = time.perf_counter() - started
        text = format_table(rows, title=f"== {name} ==")
        if chart:
            x_column, y_columns = chart
            text += "\n" + chart_from_rows(rows, x_column, y_columns, width=54, height=12)
        shaped = ", ".join(f"{k}={v:.3f}" for k, v in shape.items())
        text += f"\n   shape: {shaped}\n   ({elapsed:.1f}s)"
        sections.append(text)
    return sections


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.bench``."""
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Regenerate the paper's tables and figures (no pytest).",
    )
    parser.add_argument("--size", default="medium",
                        choices=("tiny", "small", "medium"))
    parser.add_argument("--only", nargs="*", default=None, metavar="PREFIX",
                        help="run only experiments whose name starts with a prefix")
    parser.add_argument("--out", default=None, help="also write the report here")
    parser.add_argument("--metrics", default=None, metavar="OUT.json",
                        help="run under repro.obs instrumentation and write "
                             "the metrics/span snapshot to this JSON file")
    parser.add_argument("--list", action="store_true", help="list experiment names")
    args = parser.parse_args(argv)

    if args.list:
        try:
            for name in EXPERIMENTS:
                print(name)
        except BrokenPipeError:  # piped into head & co.
            pass
        return 0

    sample_exponent = {"tiny": 0, "small": 2, "medium": 4}[args.size]
    config = BenchConfig(size=args.size, sample_exponent=sample_exponent)
    if args.metrics:
        from repro.obs import instrumented, write_json

        with instrumented() as obs:
            sections = run_experiments(config, only=args.only)
        write_json(obs, args.metrics)
        print(f"metrics -> {args.metrics}", file=sys.stderr)
    else:
        sections = run_experiments(config, only=args.only)
    if not sections:
        print("no experiments matched", file=sys.stderr)
        return 1
    report = "\n\n".join(sections)
    print(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
