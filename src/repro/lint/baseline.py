"""Baseline files: the checked-in list of deliberately-kept findings.

The repo's policy (docs/static-analysis.md) is fix-first: a finding lands in
``lint_baseline.json`` only when the flagged code is *correct* and the rule
cannot see why — e.g. :meth:`ProbeStats.publish` passing catalog-validated
variable names to ``registry.counter``.  Everything else gets fixed.

Baseline entries match on ``(rule, path, message)`` — no line numbers, so
editing code above a baselined site doesn't resurrect it, while any change
to the finding itself (different message, moved file) surfaces again.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple

from repro.lint.engine import SCHEMA_VERSION, Finding, LintInternalError

DEFAULT_BASELINE = "lint_baseline.json"

_Key = Tuple[str, str, str]


@dataclass
class Baseline:
    """The set of accepted findings, plus bookkeeping for staleness."""

    entries: Set[_Key] = field(default_factory=set)

    def split(self, findings: Sequence[Finding]) -> Tuple[List[Finding], List[Finding]]:
        """Partition into (new, suppressed) against this baseline."""
        new: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in findings:
            (suppressed if finding.key() in self.entries else new).append(finding)
        return new, suppressed

    def stale(self, findings: Sequence[Finding]) -> List[_Key]:
        """Baseline entries no longer produced — candidates for deletion."""
        current = {finding.key() for finding in findings}
        return sorted(self.entries - current)


def load_baseline(path: Path | str) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    target = Path(path)
    if not target.is_file():
        return Baseline()
    try:
        payload = json.loads(target.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise LintInternalError(f"cannot read baseline {target}: {exc}") from exc
    if not isinstance(payload, dict) or "entries" not in payload:
        raise LintInternalError(f"baseline {target} is not a baseline file")
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise LintInternalError(
            f"baseline {target} has schema_version {version!r}; "
            f"this linter writes {SCHEMA_VERSION}"
        )
    baseline = Baseline()
    for row in payload["entries"]:
        if not isinstance(row, dict):
            raise LintInternalError(f"baseline {target} has a malformed entry: {row!r}")
        try:
            baseline.entries.add((str(row["rule"]), str(row["path"]), str(row["message"])))
        except KeyError as exc:
            raise LintInternalError(
                f"baseline {target} entry missing field {exc}: {row!r}"
            ) from exc
    return baseline


def save_baseline(path: Path | str, findings: Sequence[Finding]) -> None:
    """Write *findings* as the new baseline (sorted, stable output)."""
    rows: List[Dict[str, str]] = [
        {"rule": rule, "path": rel, "message": message}
        for rule, rel, message in sorted({f.key() for f in findings})
    ]
    payload = {"schema_version": SCHEMA_VERSION, "entries": rows}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
