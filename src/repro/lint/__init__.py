"""repro.lint — project-specific static analysis enforcing OFFS invariants.

The paper's headline guarantees (per-path random access, byte-identical
output across matcher backends and process counts) rest on conventions the
type system cannot see: no nondeterminism in :mod:`repro.core`, every
matcher backend registered everywhere it must appear, every ``compress_*``
paired with a ``decompress_*``, every observability name drawn from
:mod:`repro.obs.catalog`, every raised exception rooted in
:mod:`repro.core.errors` — and, cross-module, every handle that crosses a
fork boundary protected by the fork-safety protocol, every acquisition
released on all paths, every thread-shared attribute lock-guarded, and
every ``dumps_*``/``loads_*`` pair in byte-layout agreement.  This package
checks those conventions statically over a shared parsed-module cache and
a shared cross-module :class:`~repro.lint.graph.ProjectGraph` —
dependency-free, stdlib ``ast`` only.

Run it as ``python -m repro.lint`` (see :mod:`repro.lint.__main__` for the
CLI, exit codes and the JSON output schema) or programmatically::

    from repro.lint import Project, all_rules, run_rules

    findings = run_rules(Project("/path/to/checkout"), all_rules())

Rules are small classes over the shared cache; docs/static-analysis.md
documents each rule, its rationale, and how to add one.
"""

from repro.lint.baseline import Baseline, load_baseline, save_baseline
from repro.lint.engine import Finding, LintInternalError, Project, Rule, run_rules
from repro.lint.graph import ProjectGraph
from repro.lint.rules import all_rules, rules_by_id

__all__ = [
    "Baseline",
    "Finding",
    "LintInternalError",
    "Project",
    "ProjectGraph",
    "Rule",
    "all_rules",
    "load_baseline",
    "rules_by_id",
    "run_rules",
    "save_baseline",
]
