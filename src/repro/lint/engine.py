"""The rule engine: parsed-module cache, findings, pragma filtering.

The engine owns everything rule-independent.  A :class:`Project` discovers
and lazily parses the repository's Python sources exactly once (rules share
the :class:`ParsedModule` cache, so six rules over ~60 modules still mean
~60 ``ast.parse`` calls, not 360).  Rules subclass :class:`Rule` and yield
:class:`Finding` objects; :func:`run_rules` drives them, sorts the output,
and drops findings suppressed by an inline ``lint: ignore[RXXX]`` pragma
comment.

Nothing here imports outside the stdlib — the linter must run in a bare
checkout with no third-party packages installed.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # circular at runtime: graph builds on top of the engine
    from repro.lint.graph import ProjectGraph

#: Bumped when the JSON output / baseline format changes incompatibly.
SCHEMA_VERSION = 1

#: ``# lint: ignore`` (everything) or ``# lint: ignore[R001,R004]``.
_PRAGMA_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Z0-9,\s]+)\])?")


class LintInternalError(Exception):
    """The linter itself failed (unreadable tree, unparseable config...).

    Distinct from findings: the CLI maps this to exit code 2 so CI can tell
    "the code has problems" (exit 1) from "the linter has problems".
    """


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one location.

    ``path`` is repo-relative with ``/`` separators so findings, baselines
    and CI output are stable across machines and platforms.
    """

    path: str
    line: int
    rule: str
    message: str
    hint: str = ""

    def key(self) -> Tuple[str, str, str]:
        """Identity for baseline matching: deliberately excludes the line
        number so unrelated edits above a baselined finding don't resurrect
        it."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        text = f"{self.path}:{self.line}: {self.rule} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class ParsedModule:
    """One Python source file: text, parsed tree, and pragma lines."""

    relpath: str
    source: str
    tree: ast.Module
    #: line number -> set of suppressed rule ids ("*" means all rules).
    pragmas: Dict[int, frozenset] = field(default_factory=dict)

    @property
    def dotted(self) -> str:
        """``src/repro/core/store.py`` -> ``repro.core.store`` (best effort:
        paths outside ``src/`` keep their slashes-to-dots form)."""
        parts = Path(self.relpath).with_suffix("").parts
        if parts and parts[0] == "src":
            parts = parts[1:]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def suppressed(self, line: int, rule_id: str) -> bool:
        rules = self.pragmas.get(line)
        if rules is None:
            return False
        return "*" in rules or rule_id in rules


def _scan_pragmas(source: str) -> Dict[int, frozenset]:
    pragmas: Dict[int, frozenset] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        if match.group(1) is None:
            pragmas[lineno] = frozenset({"*"})
        else:
            pragmas[lineno] = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
    return pragmas


class Project:
    """The analyzed checkout: module discovery plus a shared parse cache.

    :param root: repository root (the directory holding ``src/`` and
        ``docs/``).  Rules address files by repo-relative POSIX paths, so a
        temporary directory with the same shape works — the fixture tests
        build miniature projects this way.
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root).resolve()
        self._cache: Dict[str, ParsedModule] = {}
        self._text_cache: Dict[str, Optional[str]] = {}
        self._graphs: Dict[str, "ProjectGraph"] = {}

    # -- file access -----------------------------------------------------------

    def exists(self, relpath: str) -> bool:
        return (self.root / relpath).is_file()

    def read_text(self, relpath: str) -> Optional[str]:
        """The raw text of *relpath*, or ``None`` if it does not exist."""
        if relpath not in self._text_cache:
            target = self.root / relpath
            try:
                self._text_cache[relpath] = target.read_text(encoding="utf-8")
            except FileNotFoundError:
                self._text_cache[relpath] = None
            except OSError as exc:
                raise LintInternalError(f"cannot read {relpath}: {exc}") from exc
        return self._text_cache[relpath]

    def module(self, relpath: str) -> Optional[ParsedModule]:
        """Parse *relpath* (cached), or ``None`` if the file is absent."""
        relpath = relpath.replace("\\", "/")
        if relpath not in self._cache:
            source = self.read_text(relpath)
            if source is None:
                return None
            try:
                tree = ast.parse(source, filename=relpath)
            except SyntaxError as exc:
                raise LintInternalError(f"cannot parse {relpath}: {exc}") from exc
            self._cache[relpath] = ParsedModule(
                relpath=relpath,
                source=source,
                tree=tree,
                pragmas=_scan_pragmas(source),
            )
        return self._cache[relpath]

    def iter_modules(self, pattern: str = "src/**/*.py") -> Iterator[ParsedModule]:
        """Parsed modules matching a repo-relative glob, sorted by path."""
        for path in sorted(self.root.glob(pattern)):
            if not path.is_file():
                continue
            rel = path.relative_to(self.root).as_posix()
            module = self.module(rel)
            if module is not None:
                yield module

    def modules_under(self, prefix: str) -> Iterator[ParsedModule]:
        """Parsed modules under a directory prefix like ``src/repro/core``."""
        yield from self.iter_modules(prefix.rstrip("/") + "/**/*.py")

    # -- cross-module index ----------------------------------------------------

    def graph(self, scope: str = "src/repro") -> "ProjectGraph":
        """The cross-module :class:`~repro.lint.graph.ProjectGraph` over
        *scope*, built once and shared across rules exactly like the
        :class:`ParsedModule` cache: four data-flow rules over ~90 modules
        still mean one import-graph/class-index construction, not four."""
        from repro.lint.graph import ProjectGraph

        if scope not in self._graphs:
            self._graphs[scope] = ProjectGraph(self, scope)
        return self._graphs[scope]


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`id` (``"R001"``...) and :attr:`title`, and
    implement :meth:`check` yielding findings.  Use :meth:`finding` so the
    rule id and path normalization stay consistent.
    """

    id: str = ""
    title: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module_or_path: "ParsedModule | str",
        line: int,
        message: str,
        hint: str = "",
    ) -> Finding:
        path = (
            module_or_path.relpath
            if isinstance(module_or_path, ParsedModule)
            else module_or_path
        )
        return Finding(
            path=path.replace("\\", "/"),
            line=line,
            rule=self.id,
            message=message,
            hint=hint,
        )


def run_rules(
    project: Project,
    rules: Sequence[Rule],
    paths: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run *rules* over *project*; returns sorted, pragma-filtered findings.

    :param paths: optional repo-relative path filters (exact paths or glob
        patterns); findings outside them are dropped.  Rules still *analyze*
        the whole project — cross-reference rules like R002 need the full
        picture regardless of which files the caller wants reported.
    """
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(project):
            module = project._cache.get(finding.path)
            if module is not None and module.suppressed(finding.line, finding.rule):
                continue
            findings.append(finding)
    if paths:
        wanted = [p.replace("\\", "/") for p in paths]
        findings = [f for f in findings if _path_selected(f.path, wanted)]
    return sorted(findings)


def unknown_pragmas(
    project: Project, known_ids: Iterable[str]
) -> List[Tuple[str, int, str]]:
    """``(relpath, line, rule_id)`` for every pragma naming a rule that
    does not exist — a typo'd ``lint: ignore[R0007]`` otherwise suppresses
    nothing and *looks* like it suppresses something.

    Only modules already parsed (i.e. analyzed this run) are inspected, so
    call this after :func:`run_rules`.
    """
    known = set(known_ids)
    problems: List[Tuple[str, int, str]] = []
    for relpath in sorted(project._cache):
        module = project._cache[relpath]
        for line in sorted(module.pragmas):
            for rule_id in sorted(module.pragmas[line]):
                if rule_id != "*" and rule_id not in known:
                    problems.append((relpath, line, rule_id))
    return problems


def _path_selected(path: str, patterns: Iterable[str]) -> bool:
    for pattern in patterns:
        if path == pattern or path.startswith(pattern.rstrip("/") + "/"):
            return True
        if fnmatch.fnmatch(path, pattern):
            return True
    return False


# -- shared AST helpers (used by several rules) --------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``ast.Attribute``/``ast.Name`` chains as ``"a.b.c"``, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> imported dotted origin, for module-level imports.

    ``import random`` -> ``{"random": "random"}``; ``from repro.obs import
    catalog as c`` -> ``{"c": "repro.obs.catalog"}``; ``from x import y`` ->
    ``{"y": "x.y"}``.  Relative imports are recorded with leading dots
    preserved (``from . import errors`` -> ``{"errors": ".errors"}``).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = origin
        elif isinstance(node, ast.ImportFrom):
            base = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{base}.{alias.name}" if base else alias.name
    return aliases


def string_constant(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
