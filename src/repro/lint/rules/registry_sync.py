"""R002 — registry completeness: every matcher backend everywhere.

``MATCHER_BACKENDS`` in :mod:`repro.core.config` is the single source of
truth for the four longest-match backends whose byte-identical equivalence
is the paper's §IV claim.  A backend that exists but is missing from the
CLI, the equivalence test, or the performance docs is a silent hole in that
claim — the linter cross-references all four artifacts **by AST/structure**,
not by grepping for the word:

* ``src/repro/core/config.py`` — the ``MATCHER_BACKENDS`` tuple literal;
* ``src/repro/core/matcher.py`` — ``make_candidate_set``'s dispatch chain
  (every key must be handled, and the handled key set must not drift ahead
  of the registry either); the chain also yields the key -> backend-class
  mapping used for the test check;
* ``src/repro/cli.py`` — the ``--backend`` argparse ``choices``: either a
  direct ``Name`` reference to the imported ``MATCHER_BACKENDS`` (complete
  by construction) or a literal that must cover every key;
* ``tests/test_matcher_equivalence.py`` — must reference each backend's
  class name (the test is class-parameterized, not string-parameterized);
* ``docs/performance.md`` — must mention each key in backticks.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import (
    Finding,
    ParsedModule,
    Project,
    Rule,
    import_aliases,
    string_constant,
)

CONFIG_PATH = "src/repro/core/config.py"
MATCHER_PATH = "src/repro/core/matcher.py"
CLI_PATH = "src/repro/cli.py"
TEST_PATH = "tests/test_matcher_equivalence.py"
DOCS_PATH = "docs/performance.md"

REGISTRY_NAME = "MATCHER_BACKENDS"
FACTORY_NAME = "make_candidate_set"


class RegistrySyncRule(Rule):
    id = "R002"
    title = "matcher backend registry must be complete everywhere"

    def check(self, project: Project) -> Iterator[Finding]:
        registry = self._registry(project)
        if registry is None:
            # No registry tuple — nothing to cross-reference (fixture
            # projects without a config module are simply out of scope).
            return
        keys, registry_line = registry
        yield from self._check_factory(project, keys, registry_line)
        yield from self._check_cli(project, keys)
        yield from self._check_test(project, keys)
        yield from self._check_docs(project, keys)

    # -- source of truth -------------------------------------------------------

    def _registry(self, project: Project) -> Optional[Tuple[List[str], int]]:
        module = project.module(CONFIG_PATH)
        if module is None:
            return None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == REGISTRY_NAME for t in node.targets
            ):
                continue
            if isinstance(node.value, (ast.Tuple, ast.List)):
                keys: List[str] = []
                for element in node.value.elts:
                    key = string_constant(element)
                    if key is not None:
                        keys.append(key)
                return keys, node.lineno
        return None

    # -- factory dispatch ------------------------------------------------------

    def _factory_dispatch(self, project: Project) -> Dict[str, str]:
        """Backend key -> returned class name, from the factory's if-chain."""
        module = project.module(MATCHER_PATH)
        if module is None:
            return {}
        mapping: Dict[str, str] = {}
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.FunctionDef) and node.name == FACTORY_NAME):
                continue
            for branch in ast.walk(node):
                if not isinstance(branch, ast.If):
                    continue
                key = self._compared_key(branch.test)
                if key is None:
                    continue
                mapping[key] = self._returned_class(branch.body) or ""
        return mapping

    @staticmethod
    def _compared_key(test: ast.AST) -> Optional[str]:
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            return None
        if not isinstance(test.ops[0], ast.Eq):
            return None
        left = string_constant(test.left)
        right = string_constant(test.comparators[0])
        return left if left is not None else right

    @staticmethod
    def _returned_class(body: List[ast.stmt]) -> Optional[str]:
        for stmt in body:
            if isinstance(stmt, ast.Return) and isinstance(stmt.value, ast.Call):
                func = stmt.value.func
                if isinstance(func, ast.Name):
                    return func.id
                if isinstance(func, ast.Attribute):
                    return func.attr
        return None

    def _check_factory(
        self, project: Project, keys: List[str], registry_line: int
    ) -> Iterator[Finding]:
        if project.module(MATCHER_PATH) is None:
            return
        dispatch = self._factory_dispatch(project)
        for key in keys:
            if key not in dispatch:
                yield self.finding(
                    MATCHER_PATH,
                    1,
                    f"backend {key!r} from {REGISTRY_NAME} is not handled "
                    f"by {FACTORY_NAME}()",
                    hint=f"add an `if backend == \"{key}\":` branch returning "
                    "the backend's CandidateSet class",
                )
        for key in sorted(set(dispatch) - set(keys)):
            yield self.finding(
                CONFIG_PATH,
                registry_line,
                f"{FACTORY_NAME}() handles backend {key!r} that is missing "
                f"from {REGISTRY_NAME}",
                hint=f"add \"{key}\" to the {REGISTRY_NAME} tuple",
            )

    # -- CLI choices -----------------------------------------------------------

    def _check_cli(self, project: Project, keys: List[str]) -> Iterator[Finding]:
        module = project.module(CLI_PATH)
        if module is None:
            return
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
            ):
                continue
            if not any(string_constant(arg) == "--backend" for arg in node.args):
                continue
            choices = next(
                (kw.value for kw in node.keywords if kw.arg == "choices"), None
            )
            if choices is None:
                yield self.finding(
                    module,
                    node.lineno,
                    "--backend has no choices= restriction",
                    hint=f"pass choices={REGISTRY_NAME} so argparse rejects "
                    "unknown backends",
                )
                return
            if isinstance(choices, ast.Name):
                origin = aliases.get(choices.id, "")
                if choices.id == REGISTRY_NAME or origin.endswith(
                    f".{REGISTRY_NAME}"
                ):
                    return  # complete by construction
                yield self.finding(
                    module,
                    node.lineno,
                    f"--backend choices come from {choices.id!r}, not "
                    f"{REGISTRY_NAME}",
                    hint=f"import {REGISTRY_NAME} from repro.core.config and "
                    "use it directly",
                )
                return
            if isinstance(choices, (ast.Tuple, ast.List)):
                literal = {
                    key
                    for key in (string_constant(e) for e in choices.elts)
                    if key is not None
                }
                for key in keys:
                    if key not in literal:
                        yield self.finding(
                            module,
                            node.lineno,
                            f"--backend choices literal is missing backend "
                            f"{key!r}",
                            hint=f"use choices={REGISTRY_NAME} instead of a "
                            "literal that can drift",
                        )
                return
        # No --backend option at all.
        yield self.finding(
            CLI_PATH,
            1,
            "CLI defines no --backend option",
            hint=f"add an argparse option with choices={REGISTRY_NAME}",
        )

    # -- equivalence test ------------------------------------------------------

    def _check_test(self, project: Project, keys: List[str]) -> Iterator[Finding]:
        module = project.module(TEST_PATH)
        if module is None:
            yield self.finding(
                TEST_PATH,
                1,
                "matcher equivalence test module is missing",
                hint="tests/test_matcher_equivalence.py must diff all "
                "backends' outputs byte-for-byte",
            )
            return
        dispatch = self._factory_dispatch(project)
        referenced: Set[str] = {
            node.id for node in ast.walk(module.tree) if isinstance(node, ast.Name)
        }
        referenced |= {
            node.attr for node in ast.walk(module.tree) if isinstance(node, ast.Attribute)
        }
        literals: Set[str] = {
            value
            for value in (
                string_constant(node)
                for node in ast.walk(module.tree)
                if isinstance(node, ast.Constant)
            )
            if value is not None
        }
        for key in keys:
            cls = dispatch.get(key, "")
            if key in literals or (cls and cls in referenced):
                continue
            yield self.finding(
                TEST_PATH,
                1,
                f"equivalence test never exercises backend {key!r}",
                hint=f"reference {cls or key!r} in "
                "tests/test_matcher_equivalence.py so its output is diffed "
                "against the others",
            )

    # -- docs ------------------------------------------------------------------

    def _check_docs(self, project: Project, keys: List[str]) -> Iterator[Finding]:
        text = project.read_text(DOCS_PATH)
        if text is None:
            yield self.finding(
                DOCS_PATH,
                1,
                "docs/performance.md is missing",
                hint="document every matcher backend's cost model there",
            )
            return
        for key in keys:
            if f"`{key}`" not in text:
                yield self.finding(
                    DOCS_PATH,
                    1,
                    f"docs/performance.md does not document backend {key!r}",
                    hint=f"mention `{key}` (in backticks) with its probe-cost "
                    "characteristics",
                )
