"""R008 — resource lifecycle: every handle is released on every path.

A ``PathStore`` that leaks one descriptor per query works fine in tests
and falls over in the pre-forked server after a few thousand requests.
The discipline this rule enforces per function:

* an acquisition (``open``/``mmap.mmap``/``socket.socket``/temp files)
  is safe when it is used as a ``with`` context, closed inside a
  ``finally``/``except`` cleanup region, or has its **ownership
  transferred** — returned/yielded to the caller, stored on an object
  attribute, or passed to another call;
* a handle closed only on the straight-line path leaks when any statement
  between acquisition and ``close()`` raises — flagged as an
  exception-path leak;
* a handle acquired inline (``open(p).read()``) can never be closed —
  always flagged.

Classes that *store* handles in attributes must define a releaser method
(``close``/``stop``/``shutdown``/``release``/``__exit__``) so some owner
can audit the lifetime; the runtime twin of this rule is the fd-leak
fixture in the test suite.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import Finding, ParsedModule, Project, Rule, dotted_name
from repro.lint.graph import ProjectGraph
from repro.lint.rules.fork_safety import (
    HANDLE_FACTORIES,
    _all_functions,
    _handle_attributes,
    _walk_own,
)

#: a class storing handles must expose at least one of these.
RELEASERS = ("close", "stop", "shutdown", "release", "__exit__")


class ResourceLifecycleRule(Rule):
    id = "R008"
    title = "every handle acquisition is released on all paths"

    scope = "src/repro"

    def check(self, project: Project) -> Iterator[Finding]:
        graph = project.graph(self.scope)
        yield from self._check_class_owners(graph)
        for dotted in sorted(graph.modules):
            module = graph.modules[dotted]
            if module.relpath.startswith("src/repro/lint/"):
                continue
            for func in _all_functions(module.tree):
                yield from self._check_function(graph, module, func)

    # -- class-level: stored handles need an audited releaser -------------------

    def _check_class_owners(self, graph: ProjectGraph) -> Iterator[Finding]:
        for dotted in sorted(graph.classes):
            info = graph.classes[dotted]
            if info.module.relpath.startswith("src/repro/lint/"):
                continue
            handle_attrs = _handle_attributes(graph, info)
            if not handle_attrs:
                continue
            if any(releaser in info.members for releaser in RELEASERS):
                continue
            attr, kind = sorted(handle_attrs.items())[0]
            yield self.finding(
                info.module,
                info.node.lineno,
                f"class {info.name} stores a {kind} handle in attribute "
                f"'{attr}' but defines no releaser "
                f"({'/'.join(RELEASERS[:3])}/...)",
                hint="stored handles need an audited owner: add close() "
                "(ideally plus __exit__) so callers can release the "
                "resource deterministically",
            )

    # -- function-level: acquisition/release pairing ----------------------------

    def _check_function(
        self, graph: ProjectGraph, module: ParsedModule, func: ast.AST
    ) -> Iterator[Finding]:
        body = getattr(func, "body", [])
        protected_ids = _with_protected_ids(body)
        cleanup_ids = _cleanup_region_ids(body)
        sinks = _collect_sinks(body, cleanup_ids)

        assigned_call_ids: Set[int] = set()
        acquisitions: List[Tuple[str, str, int]] = []  # (var, kind, line)
        inline: List[Tuple[str, int]] = []  # (kind, line)

        for node in _walk_own(body):
            if not isinstance(node, ast.Call):
                continue
            kind = _factory_kind(graph, module, node)
            if kind is None:
                continue
            if id(node) in protected_ids:
                continue  # with open(...) as f / with closing(open(...))
            owner = _assignment_owner(body, node)
            if owner is not None:
                var, is_attr = owner
                assigned_call_ids.add(id(node))
                if is_attr:
                    continue  # stored on an object: the class check owns it
                acquisitions.append((var, kind, node.lineno))
            elif id(node) in sinks.consumed_ids:
                continue  # returned/yielded directly: caller owns it
            else:
                inline.append((kind, node.lineno))

        for kind, line in inline:
            yield self.finding(
                module,
                line,
                f"{kind} handle acquired inline is never closed",
                hint="bind it in a with statement (or pass through "
                "contextlib.closing) so the handle has an owner",
            )

        for var, kind, line in acquisitions:
            if var in sinks.withs or var in sinks.transfers:
                continue
            if var in sinks.closes_protected:
                continue
            if var in sinks.closes_plain:
                yield self.finding(
                    module,
                    line,
                    f"{kind} handle '{var}' is closed only on the success "
                    "path",
                    hint="an exception between open and close leaks the "
                    "descriptor: use with, or close in try/finally "
                    "(or except handlers on every raising path)",
                )
            else:
                yield self.finding(
                    module,
                    line,
                    f"{kind} handle '{var}' is never closed",
                    hint="use with, close in try/finally, or transfer "
                    "ownership (return it / store it on an object with "
                    "a close())",
                )


# -- collection helpers --------------------------------------------------------


class _Sinks:
    def __init__(self) -> None:
        self.withs: Set[str] = set()  # with v: / with closing(v):
        self.transfers: Set[str] = set()  # returned, stored, passed on
        self.closes_plain: Set[str] = set()
        self.closes_protected: Set[str] = set()  # close inside finally/except
        self.consumed_ids: Set[int] = set()  # call node ids under return/yield


def _factory_kind(
    graph: ProjectGraph, module: ParsedModule, call: ast.Call
) -> Optional[str]:
    resolved = graph.resolve_call(module, call)
    if resolved is None:
        return None
    return HANDLE_FACTORIES.get(resolved)


def _with_protected_ids(body: List[ast.stmt]) -> Set[int]:
    """ids of every node inside a ``with`` item's context expression."""
    protected: Set[int] = set()
    for node in _walk_own(body):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                for sub in ast.walk(item.context_expr):
                    protected.add(id(sub))
    return protected


def _cleanup_region_ids(body: List[ast.stmt]) -> Set[int]:
    """ids of every node inside an ``except`` handler or ``finally`` block."""
    cleanup: Set[int] = set()
    for node in _walk_own(body):
        if not isinstance(node, ast.Try):
            continue
        regions: List[ast.stmt] = list(node.finalbody)
        for handler in node.handlers:
            regions.extend(handler.body)
        for stmt in regions:
            for sub in ast.walk(stmt):
                cleanup.add(id(sub))
    return cleanup


def _assignment_owner(
    body: List[ast.stmt], call: ast.Call
) -> Optional[Tuple[str, bool]]:
    """``("var", False)`` when *call* is the RHS of ``var = call``,
    ``("attr", True)`` for ``obj.attr = call``, else ``None``."""
    for node in _walk_own(body):
        if isinstance(node, ast.Assign) and node.value is call:
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                return (node.targets[0].id, False)
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Attribute):
                return (node.targets[0].attr, True)
        elif isinstance(node, ast.AnnAssign) and node.value is call:
            if isinstance(node.target, ast.Name):
                return (node.target.id, False)
            if isinstance(node.target, ast.Attribute):
                return (node.target.attr, True)
    return None


def _names_within(node: ast.expr) -> Iterator[str]:
    """Names appearing directly or one tuple/list level down."""
    if isinstance(node, ast.Name):
        yield node.id
    elif isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            if isinstance(element, ast.Name):
                yield element.id


def _mark_consumed(value: ast.expr, sinks: _Sinks) -> None:
    """Ownership passes to the caller only when the handle *is* the value
    returned/yielded (directly or one tuple level down) — a handle buried
    inside ``return json.load(open(p))`` is still leaked."""
    sinks.consumed_ids.add(id(value))
    if isinstance(value, (ast.Tuple, ast.List)):
        for element in value.elts:
            sinks.consumed_ids.add(id(element))


def _collect_sinks(body: List[ast.stmt], cleanup_ids: Set[int]) -> _Sinks:
    sinks = _Sinks()
    for node in _walk_own(body):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                sinks.withs.update(_names_within(item.context_expr))
                for sub in ast.walk(item.context_expr):
                    if isinstance(sub, ast.Name):
                        sinks.withs.add(sub.id)
        elif isinstance(node, ast.Return) and node.value is not None:
            sinks.transfers.update(_names_within(node.value))
            _mark_consumed(node.value, sinks)
        elif isinstance(node, (ast.Yield, ast.YieldFrom)) and node.value is not None:
            sinks.transfers.update(_names_within(node.value))
            _mark_consumed(node.value, sinks)
        elif isinstance(node, ast.Assign):
            # obj.attr = v / (a, b) = ... transfers ownership of v
            if any(isinstance(t, (ast.Attribute, ast.Subscript)) for t in node.targets):
                sinks.transfers.update(_names_within(node.value))
        elif isinstance(node, ast.Call):
            callee = node.func
            if (
                isinstance(callee, ast.Attribute)
                and callee.attr in ("close", "release")
                and isinstance(callee.value, ast.Name)
            ):
                var = callee.value.id
                if id(node) in cleanup_ids:
                    sinks.closes_protected.add(var)
                else:
                    sinks.closes_plain.add(var)
                continue
            for arg in node.args:
                sinks.transfers.update(_names_within(arg))
            for keyword in node.keywords:
                sinks.transfers.update(_names_within(keyword.value))
    return sinks
