"""R005 — error hygiene in repro.core.

Three habits that corrupt error reporting in the core layer:

* **bare / broad excepts** — ``except:`` and ``except Exception:`` swallow
  programming errors (including the determinism bugs R001 hunts) and turn
  them into silent wrong output, the worst failure mode for a compressor
  whose whole claim is byte-identical reproducibility;
* **raising builtin exceptions** — callers of :mod:`repro.core` should be
  able to catch :class:`repro.core.errors.ReproError` and know they have
  every library failure.  The errors module provides dual-inheritance
  shims (``InvalidInputError(ReproError, ValueError)`` ...) precisely so
  call sites can move off builtins without breaking existing handlers;
* **shadowed builtins** — a local named ``hash`` or ``id`` in hashing code
  is an incident waiting to happen.

``NotImplementedError`` and ``AssertionError`` stay allowed (abstract
methods and invariant checks are not library failures).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.engine import Finding, ParsedModule, Project, Rule

#: Builtins whose raise should go through repro.core.errors instead.
_BUILTIN_RAISES = {
    "ArithmeticError", "AttributeError", "BaseException", "BufferError",
    "EOFError", "Exception", "IOError", "IndexError", "KeyError",
    "LookupError", "MemoryError", "NameError", "OSError", "OverflowError",
    "RuntimeError", "StopIteration", "TypeError", "ValueError",
    "ZeroDivisionError",
}

#: Builtins worth protecting from shadowing in core code.
_SHADOWABLE = {
    "abs", "all", "any", "bin", "bool", "bytes", "dict", "dir", "filter",
    "format", "hash", "id", "input", "int", "iter", "len", "list", "map",
    "max", "min", "next", "object", "open", "ord", "print", "range", "repr",
    "round", "set", "sorted", "str", "sum", "tuple", "type", "vars", "zip",
}


class ErrorHygieneRule(Rule):
    id = "R005"
    title = "repro.core raises ReproError subclasses, never swallows broadly"

    scope = "src/repro/core"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules_under(self.scope):
            yield from self._check_module(module)

    def _check_module(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(module, node)
            elif isinstance(node, ast.Raise):
                yield from self._check_raise(module, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_arg_shadowing(module, node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.For, ast.withitem)):
                yield from self._check_target_shadowing(module, node)

    # -- except handlers -------------------------------------------------------

    def _check_handler(
        self, module: ParsedModule, node: ast.ExceptHandler
    ) -> Iterator[Finding]:
        if node.type is None:
            yield self.finding(
                module,
                node.lineno,
                "bare except: swallows everything including SystemExit",
                hint="catch the narrowest repro.core.errors class (or "
                "builtin) the block can actually handle",
            )
            return
        for name in self._exception_names(node.type):
            if name in {"Exception", "BaseException"}:
                yield self.finding(
                    module,
                    node.lineno,
                    f"broad except {name}: hides programming errors",
                    hint="catch the specific error classes this block "
                    "recovers from",
                )

    @staticmethod
    def _exception_names(node: ast.AST) -> Iterator[str]:
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr
        elif isinstance(node, ast.Tuple):
            for element in node.elts:
                yield from ErrorHygieneRule._exception_names(element)

    # -- raises ----------------------------------------------------------------

    def _check_raise(self, module: ParsedModule, node: ast.Raise) -> Iterator[Finding]:
        exc = node.exc
        if exc is None:
            return  # bare re-raise is fine
        name = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in _BUILTIN_RAISES:
            yield self.finding(
                module,
                node.lineno,
                f"raises builtin {name} instead of a repro.core.errors class",
                hint="use (or add) a dual-inheritance class in "
                "repro.core.errors — e.g. InvalidInputError(ReproError, "
                "ValueError) — so `except ReproError` catches it",
            )

    # -- shadowing -------------------------------------------------------------

    def _check_arg_shadowing(
        self, module: ParsedModule, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> Iterator[Finding]:
        args = node.args
        all_args = (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
        for arg in all_args:
            if arg.arg in _SHADOWABLE:
                yield self.finding(
                    module,
                    arg.lineno,
                    f"parameter {arg.arg!r} of {node.name}() shadows a builtin",
                    hint=f"rename (e.g. {arg.arg}_ or a descriptive name)",
                )

    def _check_target_shadowing(
        self, module: ParsedModule, node: ast.AST
    ) -> Iterator[Finding]:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        elif isinstance(node, ast.For):
            targets = [node.target]
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            targets = [node.optional_vars]
        for target in targets:
            for name_node in self._names_in_target(target):
                if name_node.id in _SHADOWABLE:
                    yield self.finding(
                        module,
                        name_node.lineno,
                        f"assignment shadows builtin {name_node.id!r}",
                        hint="rename the variable; shadowed builtins in core "
                        "code invite subtle breakage",
                    )

    @staticmethod
    def _names_in_target(node: ast.AST) -> Iterator[ast.Name]:
        if isinstance(node, ast.Name):
            yield node
        elif isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                yield from ErrorHygieneRule._names_in_target(element)
        elif isinstance(node, ast.Starred):
            yield from ErrorHygieneRule._names_in_target(node.value)
