"""R001 — determinism: repro.core must be bit-for-bit reproducible.

The paper's equivalence claims (same compressed output for every matcher
backend, every process count, every run) are the repo's tier-1 contract:
``test_matcher_equivalence.py`` and ``test_parallel.py`` diff outputs
byte-for-byte.  Anything nondeterministic inside :mod:`repro.core` breaks
that silently — wall-clock in a decision path, an unseeded RNG, iterating a
set whose order is hash-randomized between processes.

Flagged in ``src/repro/core``:

* calls to wall-clock / entropy sources (``time.time``, ``os.urandom``,
  ``uuid.uuid4``, ``secrets.*``) — ``time.perf_counter`` is allowed because
  it only ever feeds *reports*, never decisions, and flagging it would bury
  real signal;
* module-level ``random.*`` draws and ``random.Random()`` with no seed
  (``random.Random(seed)`` is fine — that's the paper's sampling setup);
* mutable default arguments (shared state across calls reorders results);
* ``for``/comprehension iteration directly over a set literal, set
  comprehension, or ``set(...)``/``frozenset(...)`` call without an
  enclosing ``sorted(...)`` — hash order is not stable across processes
  with different ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine import (
    Finding,
    ParsedModule,
    Project,
    Rule,
    dotted_name,
    import_aliases,
)

#: Fully-dotted calls that read clocks or entropy.
_BANNED_CALLS = {
    "time.time": "wall-clock reads differ between runs",
    "time.time_ns": "wall-clock reads differ between runs",
    "os.urandom": "os.urandom is entropy, not reproducible randomness",
    "uuid.uuid1": "uuid1 mixes in clock and MAC address",
    "uuid.uuid4": "uuid4 draws from OS entropy",
}

#: Modules that are nondeterministic wholesale.
_BANNED_MODULE_PREFIXES = ("secrets.",)

#: Module-level random functions that draw from the shared unseeded RNG.
_GLOBAL_RANDOM_FNS = {
    "betavariate", "choice", "choices", "expovariate", "gauss", "getrandbits",
    "normalvariate", "randbytes", "randint", "random", "randrange", "sample",
    "shuffle", "triangular", "uniform", "vonmisesvariate",
}


class DeterminismRule(Rule):
    id = "R001"
    title = "repro.core must be deterministic"

    scope = "src/repro/core"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules_under(self.scope):
            yield from self._check_module(module)

    # -- per-module ------------------------------------------------------------

    def _check_module(self, module: ParsedModule) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, aliases, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(module, node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_set_iteration(module, node.iter, node.lineno)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    yield from self._check_set_iteration(module, gen.iter, node.lineno)

    def _check_call(
        self, module: ParsedModule, aliases: dict, node: ast.Call
    ) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name is None:
            return
        root = name.split(".", 1)[0]
        resolved = name
        if root in aliases:
            resolved = aliases[root] + name[len(root):]
        if resolved in _BANNED_CALLS:
            yield self.finding(
                module,
                node.lineno,
                f"nondeterministic call {resolved}()",
                hint=_BANNED_CALLS[resolved]
                + "; use time.perf_counter for durations, seeded "
                "random.Random(seed) for sampling",
            )
            return
        for prefix in _BANNED_MODULE_PREFIXES:
            if resolved.startswith(prefix):
                yield self.finding(
                    module,
                    node.lineno,
                    f"nondeterministic call {resolved}()",
                    hint="the secrets module is entropy by design; "
                    "repro.core output must be reproducible",
                )
                return
        if resolved.startswith("random.") and resolved.count(".") == 1:
            fn = resolved.split(".")[1]
            if fn in _GLOBAL_RANDOM_FNS:
                yield self.finding(
                    module,
                    node.lineno,
                    f"unseeded module-level random.{fn}()",
                    hint="draw from an explicit random.Random(seed) instance "
                    "so results are reproducible",
                )
            elif fn == "Random" and not node.args and not node.keywords:
                yield self.finding(
                    module,
                    node.lineno,
                    "random.Random() constructed without a seed",
                    hint="pass an explicit seed: random.Random(seed)",
                )

    def _check_defaults(
        self, module: ParsedModule, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> Iterator[Finding]:
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            if self._is_mutable_literal(default):
                yield self.finding(
                    module,
                    default.lineno,
                    f"mutable default argument in {node.name}()",
                    hint="default to None and create the container in the "
                    "body; shared defaults leak state across calls",
                )

    @staticmethod
    def _is_mutable_literal(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in {"list", "dict", "set", "bytearray"} and not node.args
        return False

    def _check_set_iteration(
        self, module: ParsedModule, iter_node: ast.AST, lineno: int
    ) -> Iterator[Finding]:
        expr = self._set_valued(iter_node)
        if expr is not None:
            yield self.finding(
                module,
                getattr(iter_node, "lineno", lineno),
                f"iteration over unordered set expression ({expr})",
                hint="wrap in sorted(...) — set order depends on "
                "PYTHONHASHSEED and breaks cross-process equivalence",
            )

    @staticmethod
    def _set_valued(node: ast.AST) -> Optional[str]:
        """A short description if *node* evaluates to a set, else ``None``."""
        if isinstance(node, ast.Set):
            return "set literal"
        if isinstance(node, ast.SetComp):
            return "set comprehension"
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in {"set", "frozenset"}:
                return f"{node.func.id}(...) call"
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)):
            left = DeterminismRule._set_valued(node.left)
            right = DeterminismRule._set_valued(node.right)
            if left or right:
                return "set algebra expression"
        return None
