"""The rule registry.  Adding a rule = new module here + one list entry."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.lint.engine import LintInternalError, Rule
from repro.lint.rules.codec_symmetry import CodecSymmetryRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.doc_drift import DocDriftRule
from repro.lint.rules.error_hygiene import ErrorHygieneRule
from repro.lint.rules.fork_safety import ForkSafetyRule
from repro.lint.rules.format_symmetry import FormatSymmetryRule
from repro.lint.rules.obs_discipline import ObsDisciplineRule
from repro.lint.rules.registry_sync import RegistrySyncRule
from repro.lint.rules.resource_lifecycle import ResourceLifecycleRule
from repro.lint.rules.thread_discipline import ThreadDisciplineRule

_ALL = (
    DeterminismRule,
    RegistrySyncRule,
    CodecSymmetryRule,
    ObsDisciplineRule,
    ErrorHygieneRule,
    DocDriftRule,
    ForkSafetyRule,
    ResourceLifecycleRule,
    ThreadDisciplineRule,
    FormatSymmetryRule,
)


def known_rule_ids() -> frozenset:
    """Ids of every registered rule — the vocabulary valid in pragmas."""
    return frozenset(cls.id for cls in _ALL)


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in id order."""
    return sorted((cls() for cls in _ALL), key=lambda rule: rule.id)


def rules_by_id(ids: Sequence[str]) -> List[Rule]:
    """Instances of the rules named in *ids* (e.g. ``["R001", "R004"]``)."""
    known: Dict[str, Rule] = {rule.id: rule for rule in all_rules()}
    selected: List[Rule] = []
    for rule_id in ids:
        if rule_id not in known:
            raise LintInternalError(
                f"unknown rule {rule_id!r}; known: {', '.join(sorted(known))}"
            )
        selected.append(known[rule_id])
    return selected
