"""R009 — thread-shared-state discipline: cross-thread writes take a lock.

``ShardedIngest`` seals shards on a background ``threading.Thread`` while
the caller keeps appending; ``ShardedPathStore`` serves queries from
whatever thread the HTTP worker happens to run.  The invariant that keeps
those safe is simple and easy to erode in review: **an attribute written
both by a thread target and by caller-thread methods must be guarded by a
shared lock** (or not shared at all — the seal thread deliberately
captures only locals).

For every class that starts a ``threading.Thread`` whose target is one of
its own methods or a nested function, the rule intersects the
``self.X = ...`` write sets of the thread target (plus any ``nonlocal``
rebinds) against the write sets of the class's other methods, and flags
attributes in the intersection unless **every** write happens under
``with self.<lock>`` for a lock-like attribute (assigned
``threading.Lock()``/``RLock()`` or named ``*lock*``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import Finding, Project, Rule, dotted_name
from repro.lint.graph import ClassInfo, ProjectGraph
from repro.lint.rules.fork_safety import _walk_own

_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)

_LOCK_FACTORIES = {"threading.Lock", "threading.RLock", "threading.Condition"}


class ThreadDisciplineRule(Rule):
    id = "R009"
    title = "attributes shared across threads are lock-guarded"

    scope = "src/repro"

    def check(self, project: Project) -> Iterator[Finding]:
        graph = project.graph(self.scope)
        for dotted in sorted(graph.classes):
            info = graph.classes[dotted]
            if info.module.relpath.startswith("src/repro/lint/"):
                continue
            yield from self._check_class(graph, info)

    def _check_class(self, graph: ProjectGraph, info: ClassInfo) -> Iterator[Finding]:
        locks = _lock_attributes(graph, info)
        for method_name, method in sorted(info.methods.items()):
            for call, target in _thread_starts(graph, info, method):
                yield from self._check_thread(
                    graph, info, locks, method_name, call, target
                )

    def _check_thread(
        self,
        graph: ProjectGraph,
        info: ClassInfo,
        locks: Set[str],
        spawning_method: str,
        call: ast.Call,
        target: ast.AST,
    ) -> Iterator[Finding]:
        thread_writes = _self_writes(target, locks)
        # a thread target calling self.helper() inherits the helper's writes
        for helper in _self_calls(target):
            helper_def = info.methods.get(helper)
            if helper_def is not None:
                for attr, guarded in _self_writes(helper_def, locks).items():
                    thread_writes[attr] = thread_writes.get(attr, True) and guarded

        caller_writes: Dict[str, bool] = {}
        target_names = {getattr(target, "name", None)}
        for method_name, method in info.methods.items():
            if method is target or method_name in target_names:
                continue
            if method_name == "__init__":
                continue  # runs before any thread exists
            for attr, guarded in _self_writes(method, locks).items():
                if attr in caller_writes:
                    caller_writes[attr] = caller_writes[attr] and guarded
                else:
                    caller_writes[attr] = guarded

        shared = sorted(set(thread_writes) & set(caller_writes))
        unguarded = [
            attr
            for attr in shared
            if not (thread_writes[attr] and caller_writes[attr])
        ]
        if not unguarded:
            return
        label = getattr(target, "name", "<lambda>")
        yield self.finding(
            info.module,
            call.lineno,
            f"attribute(s) {', '.join(repr(a) for a in unguarded)} of "
            f"{info.name} are written by both the thread target "
            f"'{label}' and caller-thread methods without a shared lock",
            hint="guard every write with `with self._lock:` (a "
            "threading.Lock attribute), or restructure so the thread "
            "only touches locals like the shard seal thread does",
        )


# -- helpers -------------------------------------------------------------------


def _self_calls(func: ast.AST) -> Set[str]:
    """Names of ``self.helper()`` methods invoked inside *func*."""
    names: Set[str] = set()
    raw_body = getattr(func, "body", [])
    body = raw_body if isinstance(raw_body, list) else [raw_body]
    for element in body:
        for node in ast.walk(element):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                names.add(node.func.attr)
    return names


def _lock_attributes(graph: ProjectGraph, info: ClassInfo) -> Set[str]:
    """Attributes that plausibly hold a lock: assigned from
    ``threading.Lock()``-style factories, or named like one."""
    locks: Set[str] = set()
    for attr, value, _line in info.attr_assignments:
        if "lock" in attr.lower():
            locks.add(attr)
            continue
        if isinstance(value, ast.Call):
            callee = dotted_name(value.func)
            if callee is not None:
                resolved = graph.resolve(info.module.dotted, callee)
                if resolved in _LOCK_FACTORIES:
                    locks.add(attr)
    return locks


def _thread_starts(
    graph: ProjectGraph, info: ClassInfo, method: ast.AST
) -> Iterator[Tuple[ast.Call, ast.AST]]:
    """(thread-construction call, resolvable target def) pairs in *method*.

    Targets we can analyze: ``self.method`` and nested functions defined in
    the same method.  Module-level or foreign targets are skipped — their
    writes cannot alias this class's attributes through ``self``.
    """
    nested: Dict[str, ast.AST] = {}
    for node in _walk_own(getattr(method, "body", [])):
        if isinstance(node, _DEFS) and node is not method:
            nested[node.name] = node
    for node in _walk_own(getattr(method, "body", [])):
        if not isinstance(node, ast.Call):
            continue
        callee = dotted_name(node.func)
        if callee is None:
            continue
        if graph.resolve(info.module.dotted, callee) != "threading.Thread":
            continue
        target = _thread_target(node)
        if target is None:
            continue
        if isinstance(target, ast.Name) and target.id in nested:
            yield node, nested[target.id]
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and target.attr in info.methods
        ):
            yield node, info.methods[target.attr]
        elif isinstance(target, ast.Lambda):
            yield node, target


def _thread_target(call: ast.Call) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg == "target":
            return keyword.value
    if call.args:
        return call.args[0]
    return None


def _self_writes(func: ast.AST, locks: Set[str]) -> Dict[str, bool]:
    """attr -> all-writes-guarded?, for ``self.X = ...``/``self.X += ...``
    and ``nonlocal``-style rebinds inside *func* (descending into nested
    defs: a closure's writes still run on this thread)."""
    writes: Dict[str, bool] = {}
    guarded_ids = _lock_guarded_ids(func, locks)
    raw_body = getattr(func, "body", [])
    body = raw_body if isinstance(raw_body, list) else [raw_body]
    for element in body:
        for node in ast.walk(element):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attr = target.attr
                    guarded = id(node) in guarded_ids
                    writes[attr] = writes.get(attr, True) and guarded
    return writes


def _lock_guarded_ids(func: ast.AST, locks: Set[str]) -> Set[int]:
    """ids of nodes lexically inside ``with self.<lock>`` blocks."""
    guarded: Set[int] = set()
    raw_body = getattr(func, "body", [])
    body = raw_body if isinstance(raw_body, list) else [raw_body]
    for element in body:
        for node in ast.walk(element):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if not any(
                _is_lock_expr(item.context_expr, locks) for item in node.items
            ):
                continue
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    guarded.add(id(sub))
    return guarded


def _is_lock_expr(expr: ast.expr, locks: Set[str]) -> bool:
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr in locks or "lock" in expr.attr.lower()
    return False
