"""R004 — obs discipline: metric/span names come from the catalog.

:mod:`repro.obs.catalog` is the single registry of observability names; the
conservation tests (symbols_in == symbols_out) and dashboards key on them.
A name minted inline at a call site — a raw string literal nobody
registered, or a dynamically-built value the linter cannot see through —
drifts silently when renamed.  Scope is ``src/repro`` minus
``repro.obs`` itself (the registry/tracer internals necessarily handle
names as variables) and ``repro.lint``.

Checked call shapes, all taking a name as first argument:

* ``<registry>.counter/gauge/timer/timeit/set_gauge/observe(name, ...)``;
* ``<tracer>.span(name, ...)``;
* bare ``active_span(name, ...)`` / ``active_timer(name, ...)`` when
  imported from :mod:`repro.obs` (or its ``runtime`` submodule).

A first argument passes when it is (a) a ``catalog.X`` attribute or an
``X`` imported from the catalog module, or (b) a string literal that is
registered in the catalog.  Anything else — unregistered literal, local
variable, f-string, concatenation — is flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.lint.engine import (
    Finding,
    ParsedModule,
    Project,
    Rule,
    import_aliases,
    string_constant,
)

CATALOG_PATH = "src/repro/obs/catalog.py"
CATALOG_MODULE = "repro.obs.catalog"

#: method attr -> True when the name argument is mandatory at position 0.
_NAME_METHODS = {"counter", "gauge", "timer", "timeit", "set_gauge", "observe", "span"}
_NAME_FUNCTIONS = {"active_span", "active_timer"}
_REGISTRAR_CALLS = {"_counter", "_gauge", "_timer", "_span", "_register"}


class ObsDisciplineRule(Rule):
    id = "R004"
    title = "metric/span names must come from repro.obs.catalog"

    scope = "src/repro"
    excluded_prefixes = ("src/repro/obs/", "src/repro/lint/")

    def check(self, project: Project) -> Iterator[Finding]:
        catalog = self._catalog(project)
        if catalog is None:
            return  # no catalog module in this project: rule out of scope
        constants, registered = catalog
        for module in project.modules_under(self.scope):
            if module.relpath.startswith(self.excluded_prefixes):
                continue
            yield from self._check_module(module, constants, registered)

    # -- the catalog's contents ------------------------------------------------

    def _catalog(
        self, project: Project
    ) -> "Optional[tuple[Set[str], Set[str]]]":
        """(constant names defined in the catalog, registered name strings)."""
        module = project.module(CATALOG_PATH)
        if module is None:
            return None
        constants: Set[str] = set()
        registered: Set[str] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and not target.id.startswith("_"):
                    constants.add(target.id)
            if isinstance(node.value, ast.Call):
                func = node.value.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _REGISTRAR_CALLS
                    and node.value.args
                ):
                    name = string_constant(node.value.args[0])
                    if name is not None:
                        registered.add(name)
        return constants, registered

    # -- per-module ------------------------------------------------------------

    def _check_module(
        self, module: ParsedModule, constants: Set[str], registered: Set[str]
    ) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        catalog_locals = {
            local
            for local, origin in aliases.items()
            if origin.startswith(CATALOG_MODULE + ".")
        }
        catalog_module_locals = {
            local for local, origin in aliases.items() if origin == CATALOG_MODULE
        }
        obs_functions = {
            local
            for local, origin in aliases.items()
            if local in _NAME_FUNCTIONS
            or origin.rsplit(".", 1)[-1] in _NAME_FUNCTIONS
        }

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            called = self._called_name_method(node, obs_functions)
            if called is None:
                continue
            problem = self._argument_problem(
                node.args[0], constants, registered, catalog_locals,
                catalog_module_locals,
            )
            if problem is not None:
                yield self.finding(
                    module,
                    node.lineno,
                    f"{called}() name argument {problem}",
                    hint="register the name in repro.obs.catalog and pass "
                    "the catalog constant",
                )

    def _called_name_method(
        self, node: ast.Call, obs_functions: Set[str]
    ) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _NAME_METHODS:
            # Guard against unrelated .span()/.observe() on non-obs objects:
            # require the name argument to even be plausible (a string
            # constant or a Name/Attribute) — numeric first args are not
            # metric names.
            first = node.args[0]
            if isinstance(first, ast.Constant) and not isinstance(first.value, str):
                return None
            return func.attr
        if isinstance(func, ast.Name) and func.id in obs_functions:
            return func.id
        return None

    def _argument_problem(
        self,
        arg: ast.AST,
        constants: Set[str],
        registered: Set[str],
        catalog_locals: Set[str],
        catalog_module_locals: Set[str],
    ) -> Optional[str]:
        literal = string_constant(arg)
        if literal is not None:
            if literal in registered:
                return None
            return (
                f"is the literal {literal!r}, which is not registered in "
                "the catalog"
            )
        if isinstance(arg, ast.Name):
            if arg.id in catalog_locals:
                return None
            return f"is the local name {arg.id!r}, not a catalog constant"
        if isinstance(arg, ast.Attribute) and isinstance(arg.value, ast.Name):
            if arg.value.id in catalog_module_locals:
                if arg.attr in constants:
                    return None
                return (
                    f"references catalog.{arg.attr}, which the catalog does "
                    "not define"
                )
            return f"is {arg.value.id}.{arg.attr}, not a catalog constant"
        return "is dynamic (not a literal or catalog constant)"
