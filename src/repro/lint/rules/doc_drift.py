"""R006 — API/doc drift: every ``__all__`` export appears in docs/api.md.

``docs/api.md`` is the repo's public-surface contract.  Each package's
``__all__`` is parsed from its ``__init__.py`` (string-literal lists only —
computed ``__all__`` would itself be a determinism smell) and every export
must be mentioned in the doc, as a word in backticks or a heading.  The
inverse direction (documented names that no longer exist) is deliberately
out of scope: prose legitimately mentions parameters and concepts that are
not exports.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Tuple

from repro.lint.engine import Finding, ParsedModule, Project, Rule, string_constant

DOC_PATH = "docs/api.md"


class DocDriftRule(Rule):
    id = "R006"
    title = "__all__ exports must be documented in docs/api.md"

    scope = "src/repro"

    def check(self, project: Project) -> Iterator[Finding]:
        doc = project.read_text(DOC_PATH)
        if doc is None:
            return  # fixture projects without docs are out of scope
        for module in project.iter_modules(self.scope + "/**/__init__.py"):
            exports = self._exports(module)
            if exports is None:
                continue
            names, lineno = exports
            for name in names:
                if not re.search(rf"\b{re.escape(name)}\b", doc):
                    yield self.finding(
                        module,
                        lineno,
                        f"export {name!r} ({module.dotted}) is not mentioned "
                        f"in {DOC_PATH}",
                        hint=f"document `{name}` in {DOC_PATH} (or stop "
                        "exporting it)",
                    )

    @staticmethod
    def _exports(module: ParsedModule) -> Optional[Tuple[List[str], int]]:
        for node in module.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
            ):
                continue
            if isinstance(node.value, (ast.List, ast.Tuple)):
                names = [
                    name
                    for name in (string_constant(e) for e in node.value.elts)
                    if name is not None
                ]
                return names, node.lineno
        return None
