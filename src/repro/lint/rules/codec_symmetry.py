"""R003 — codec symmetry: every forward transform has an inverse.

OFFS compression is lossless by contract — ``f^T(f(P)) = P`` (Lemma 1) —
so a public ``compress_*``/``encode_*``/``dumps_*`` with no matching
``decompress_*``/``decode_*``/``loads_*`` **in the same scope** is either
dead weight or a trap: callers can produce artifacts nothing can read back.
The rule checks module-level functions and each class's methods as separate
scopes (a class may rely on a module-level inverse only when the forward is
module-level too).

Prefix matching is word-based: ``compress_path`` pairs with
``decompress_path``; ``compression_ratio`` is not a forward transform (the
word is "compression") and ``compressed_size_bytes`` is an accessor, so
neither is flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List

from repro.lint.engine import Finding, ParsedModule, Project, Rule

#: forward word -> inverse word; matches ``word`` exactly or ``word_*``.
PAIRS = {
    "encode": "decode",
    "compress": "decompress",
    "dumps": "loads",
    "serialize": "deserialize",
    "pack": "unpack",
}


def _expected_inverse(name: str) -> str:
    """The inverse name for a forward transform name, or ``""``."""
    if name.startswith("_"):
        return ""
    for forward, inverse in PAIRS.items():
        if name == forward:
            return inverse
        if name.startswith(forward + "_"):
            return inverse + name[len(forward):]
    return ""


class CodecSymmetryRule(Rule):
    id = "R003"
    title = "every public encode/compress has a matching decode/decompress"

    scope = "src/repro"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules_under(self.scope):
            if module.relpath.startswith("src/repro/lint/"):
                continue  # the linter's own sources are not codec code
            yield from self._check_module(module)

    def _check_module(self, module: ParsedModule) -> Iterator[Finding]:
        yield from self._check_scope(module, "module", module.tree.body)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_scope(
                    module, f"class {node.name}", node.body
                )

    def _check_scope(
        self, module: ParsedModule, scope: str, body: List[ast.stmt]
    ) -> Iterator[Finding]:
        functions: Dict[str, int] = {}
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions.setdefault(stmt.name, stmt.lineno)
        names = set(functions)
        for name, lineno in sorted(functions.items(), key=lambda kv: kv[1]):
            inverse = _expected_inverse(name)
            if inverse and inverse not in names:
                yield self.finding(
                    module,
                    lineno,
                    f"{scope} defines {name}() but no {inverse}()",
                    hint="lossless round-trip is the contract (Lemma 1): "
                    f"add {inverse}() beside it, or rename if this is not "
                    "a forward transform",
                )
