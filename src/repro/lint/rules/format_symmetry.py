"""R010 — format-invariant symmetry: writers and readers agree on bytes.

R003 checks that every ``dumps_*`` has a ``loads_*`` **by name**; this
rule checks that the pair agrees **by byte layout**.  For each forward /
inverse pair in a module it extracts *format facts* transitively over the
project call graph (a reader that delegates to ``MappedPathStore`` pulls
in the whole class's facts — the RPC2 meta CRC is verified inside the
lazy ``table`` property, not in ``loads_store_v2`` itself):

* **struct layouts** — format strings from ``struct.pack``/``unpack``
  (including ``struct.Struct`` module constants and
  ``memoryview.cast("Q")``), normalized to sets of field type characters;
* **magic/constant bytes** — ``bytes`` literals referenced directly or
  through module-level constants, resolved across imports;
* **CRC coverage** — the number of ``zlib.crc32`` call sites.

The checks are one-directional (writer -> reader) to stay low-noise:
every field type the writer packs must be unpacked somewhere in the
reader's closure, every magic the writer emits must be referenced by the
reader, and the reader must compute at least as many CRCs as the writer.
Pairs with no byte-layout facts at all (plain codec functions) are
skipped — R003 already owns their naming symmetry.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.lint.engine import Finding, ParsedModule, Project, Rule, dotted_name
from repro.lint.graph import ProjectGraph
from repro.lint.rules.codec_symmetry import _expected_inverse

_PACK_CALLS = {"struct.pack", "struct.pack_into"}
_UNPACK_CALLS = {"struct.unpack", "struct.unpack_from", "struct.iter_unpack"}
_CRC_CALLS = {"zlib.crc32", "binascii.crc32"}

_PACK_METHODS = {"pack", "pack_into"}
_UNPACK_METHODS = {"unpack", "unpack_from", "iter_unpack"}


class _Facts:
    """Byte-layout facts of one function/class, transitively collected."""

    def __init__(self) -> None:
        self.pack_chars: Set[str] = set()
        self.unpack_chars: Set[str] = set()
        self.bytes_refs: Set[bytes] = set()
        self.crc_sites: int = 0

    def merge(self, other: "_Facts") -> None:
        self.pack_chars |= other.pack_chars
        self.unpack_chars |= other.unpack_chars
        self.bytes_refs |= other.bytes_refs
        self.crc_sites += other.crc_sites

    @property
    def empty(self) -> bool:
        return not (self.pack_chars or self.bytes_refs or self.crc_sites)


def _format_chars(fmt: str) -> Set[str]:
    """Field type characters of a struct format: byte-order prefixes,
    repeat counts and pad bytes (``x``) stripped."""
    return {c for c in fmt if c.isalpha() and c != "x"}


class FormatSymmetryRule(Rule):
    id = "R010"
    title = "dumps/loads pairs agree on magic, CRC coverage and struct layout"

    scope = "src/repro"

    def check(self, project: Project) -> Iterator[Finding]:
        graph = project.graph(self.scope)
        memo: Dict[str, _Facts] = {}
        for dotted in sorted(graph.modules):
            module = graph.modules[dotted]
            if module.relpath.startswith("src/repro/lint/"):
                continue
            yield from self._check_module(graph, module, memo)

    def _check_module(
        self, graph: ProjectGraph, module: ParsedModule, memo: Dict[str, _Facts]
    ) -> Iterator[Finding]:
        functions: Dict[str, ast.AST] = {}
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions.setdefault(stmt.name, stmt)
        for name in sorted(functions):
            inverse = _expected_inverse(name)
            if not inverse or inverse not in functions:
                continue
            forward = _entity_facts(graph, f"{module.dotted}.{name}", memo)
            if forward is None or forward.empty:
                continue
            backward = _entity_facts(graph, f"{module.dotted}.{inverse}", memo)
            if backward is None:
                continue
            lineno = functions[name].lineno
            missing_chars = forward.pack_chars - backward.unpack_chars
            if missing_chars:
                yield self.finding(
                    module,
                    lineno,
                    f"{name}() packs struct field type(s) "
                    f"{''.join(sorted(missing_chars))!r} that {inverse}() "
                    "never unpacks",
                    hint="writer and reader must agree on the byte "
                    "layout; update the unpack format (or the reader's "
                    "memoryview cast) to cover every packed field",
                )
            for magic in sorted(forward.bytes_refs - backward.bytes_refs):
                yield self.finding(
                    module,
                    lineno,
                    f"{name}() writes constant bytes {magic!r} that "
                    f"{inverse}() never references",
                    hint="a reader that does not check the magic will "
                    "happily parse garbage; verify it (and reject with "
                    "CorruptDataError) on the load path",
                )
            if forward.crc_sites > backward.crc_sites:
                yield self.finding(
                    module,
                    lineno,
                    f"{name}() computes {forward.crc_sites} CRC32 "
                    f"checksum(s) but {inverse}() checks only "
                    f"{backward.crc_sites}",
                    hint="every checksum the writer emits must be "
                    "recomputed and compared by the reader, or "
                    "corruption passes silently",
                )


# -- transitive fact extraction ------------------------------------------------


def _entity_facts(
    graph: ProjectGraph, dotted: str, memo: Dict[str, _Facts]
) -> Optional[_Facts]:
    """Facts of a fully-dotted project function or class, memoized and
    cycle-safe (in-progress entities contribute nothing extra)."""
    if dotted in memo:
        return memo[dotted]
    if dotted in graph.functions:
        owner, node = graph.functions[dotted]
        memo[dotted] = facts = _Facts()  # pre-seed: cycle guard
        facts.merge(_body_facts(graph, owner, node, memo))
        return facts
    if dotted in graph.classes:
        info = graph.classes[dotted]
        memo[dotted] = facts = _Facts()
        for method in info.methods.values():
            facts.merge(_body_facts(graph, info.module, method, memo))
        return facts
    return None


def _body_facts(
    graph: ProjectGraph,
    module: ParsedModule,
    func: ast.AST,
    memo: Dict[str, _Facts],
) -> _Facts:
    facts = _Facts()
    for element in getattr(func, "body", []):
        for node in ast.walk(element):
            if isinstance(node, ast.Constant) and isinstance(node.value, bytes):
                if node.value:
                    facts.bytes_refs.add(node.value)
            elif isinstance(node, (ast.Name, ast.Attribute)):
                name = dotted_name(node)
                if name is not None:
                    value = graph.bytes_constant(module.dotted, name)
                    if value:
                        facts.bytes_refs.add(value)
            elif isinstance(node, ast.Call):
                _call_facts(graph, module, node, facts, memo)
    return facts


def _call_facts(
    graph: ProjectGraph,
    module: ParsedModule,
    call: ast.Call,
    facts: _Facts,
    memo: Dict[str, _Facts],
) -> None:
    name = dotted_name(call.func)
    resolved = graph.resolve(module.dotted, name) if name else None

    if resolved in _CRC_CALLS:
        facts.crc_sites += 1
        return
    if resolved in _PACK_CALLS or resolved in _UNPACK_CALLS:
        fmt = _format_argument(graph, module, call)
        if fmt is not None:
            chars = _format_chars(fmt)
            if resolved in _PACK_CALLS:
                facts.pack_chars |= chars
            else:
                facts.unpack_chars |= chars
        return

    # STRUCT_CONST.pack(...) / .unpack_from(...) on a struct.Struct constant
    if isinstance(call.func, ast.Attribute):
        method = call.func.attr
        if method in _PACK_METHODS | _UNPACK_METHODS:
            owner = dotted_name(call.func.value)
            if owner is not None:
                fmt = graph.struct_format(module.dotted, owner)
                if fmt is not None:
                    chars = _format_chars(fmt)
                    if method in _PACK_METHODS:
                        facts.pack_chars |= chars
                    else:
                        facts.unpack_chars |= chars
                    return
        if method == "cast" and call.args:
            cast_fmt = call.args[0]
            if isinstance(cast_fmt, ast.Constant) and isinstance(
                cast_fmt.value, str
            ):
                facts.unpack_chars |= _format_chars(cast_fmt.value)
                return

    # project-internal call: fold in the callee's facts transitively
    if resolved is not None:
        target = resolved
        if target not in graph.functions and target not in graph.classes:
            head = target.rsplit(".", 1)[0] if "." in target else target
            target = head if head in graph.classes else target
        callee_facts = _entity_facts(graph, target, memo)
        if callee_facts is not None:
            facts.merge(callee_facts)


def _format_argument(
    graph: ProjectGraph, module: ParsedModule, call: ast.Call
) -> Optional[str]:
    """The format string of a ``struct.pack``-family call: a literal, or a
    module-level string constant resolved through imports."""
    if not call.args:
        return None
    fmt = call.args[0]
    if isinstance(fmt, ast.Constant) and isinstance(fmt.value, str):
        return fmt.value
    name = dotted_name(fmt)
    if name is None:
        return None
    entry = graph.constants.get(graph.resolve(module.dotted, name))
    if entry is None:
        return None
    _, value = entry
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return value.value
    return None
