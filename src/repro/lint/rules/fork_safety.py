"""R007 — fork safety: OS handles must not cross a fork boundary raw.

The serving and parallel-build layers fork: ``repro.core.parallel`` uses
fork-start pools with copy-on-write table inheritance, and
``repro.serve`` pre-forks HTTP workers.  File descriptors, sockets and
``mmap`` views are process-local — a child that inherits one shares
kernel state (file offsets, socket buffers) with the parent, which is how
silent corruption happens.  The codebase's answer is the fork-safety
protocol implemented by ``MappedPathStore``/``ShardedPathStore``:

* ``owner_pid`` — records the opening process;
* ``reopen()`` — a fresh handle from the stored *path*;
* ``process_local()`` — returns ``self`` or a reopened copy after a fork;
* path-based ``__getstate__`` — pickling ships the path, never the handle.

This rule enforces the protocol cross-module via the
:class:`~repro.lint.graph.ProjectGraph`:

* a class that implements only part of the protocol is flagged (half a
  protocol silently does nothing);
* an instance of a handle-holding class that crosses a process boundary
  (``Process(...)`` args, ``pool.map``-style submission, ``pickle.dumps``)
  must implement all four members;
* a raw handle local, or a worker closure capturing one, crossing a
  boundary is always flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from repro.lint.engine import Finding, ParsedModule, Project, Rule, dotted_name
from repro.lint.graph import ClassInfo, ProjectGraph

#: dotted acquisition call -> human-readable handle kind.
HANDLE_FACTORIES: Dict[str, str] = {
    "open": "file",
    "io.open": "file",
    "os.fdopen": "file",
    "gzip.open": "file",
    "tempfile.NamedTemporaryFile": "temp-file",
    "tempfile.TemporaryFile": "temp-file",
    "mmap.mmap": "mmap",
    "socket.socket": "socket",
    "socket.create_connection": "socket",
    "socket.socketpair": "socket",
}

#: annotation dotted names that mark an attribute as handle-typed.
HANDLE_ANNOTATIONS: Dict[str, str] = {
    "mmap.mmap": "mmap",
    "socket.socket": "socket",
    "io.BufferedReader": "file",
    "io.BufferedWriter": "file",
    "BinaryIO": "file",
}

#: the four members every fork-crossing handle owner must define.
PROTOCOL = ("owner_pid", "reopen", "process_local", "__getstate__")

_POOL_SUBMIT = {"map", "imap", "imap_unordered", "starmap", "apply", "apply_async"}

_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


class _Env:
    """Per-function locals classified by what they were assigned from."""

    def __init__(self) -> None:
        self.handles: Dict[str, str] = {}  # var -> handle kind
        self.instances: Dict[str, str] = {}  # var -> project class dotted
        self.contexts: Dict[str, str] = {}  # var -> "mp-context" / "pool"
        self.nested: Dict[str, ast.AST] = {}  # var -> nested def node


class ForkSafetyRule(Rule):
    id = "R007"
    title = "handles crossing a fork boundary use the fork-safety protocol"

    scope = "src/repro"

    def check(self, project: Project) -> Iterator[Finding]:
        graph = project.graph(self.scope)
        yield from self._check_protocol_completeness(graph)
        for dotted in sorted(graph.modules):
            module = graph.modules[dotted]
            if module.relpath.startswith("src/repro/lint/"):
                continue
            for func in _all_functions(module.tree):
                yield from self._check_function(graph, module, func)

    # -- protocol completeness -------------------------------------------------

    def _check_protocol_completeness(
        self, graph: ProjectGraph
    ) -> Iterator[Finding]:
        for dotted in sorted(graph.classes):
            info = graph.classes[dotted]
            if info.module.relpath.startswith("src/repro/lint/"):
                continue
            implemented = [m for m in PROTOCOL if m in info.members]
            if len(implemented) in (0, len(PROTOCOL)):
                continue
            # A lone __getstate__ on a handle-free class is ordinary pickle
            # customization, not a botched protocol attempt.
            if len(implemented) < 2 and not _handle_attributes(graph, info):
                continue
            missing = [m for m in PROTOCOL if m not in info.members]
            yield self.finding(
                info.module,
                info.node.lineno,
                f"class {info.name} implements only "
                f"{len(implemented)}/{len(PROTOCOL)} of the fork-safety "
                f"protocol (missing: {', '.join(missing)})",
                hint="a partial protocol silently does nothing after a "
                "fork; implement owner_pid, reopen(), process_local() and "
                "a path-based __getstate__ together (see MappedPathStore)",
            )

    # -- per-function boundary analysis ----------------------------------------

    def _check_function(
        self, graph: ProjectGraph, module: ParsedModule, func: ast.AST
    ) -> Iterator[Finding]:
        env = _scan_locals(graph, module, func)
        for node in _walk_own(getattr(func, "body", [])):
            if not isinstance(node, ast.Call):
                continue
            boundary = _boundary_kind(graph, module, env, node)
            if boundary is None:
                continue
            for arg in _boundary_payload(node):
                yield from self._check_payload(
                    graph, module, env, node, boundary, arg
                )

    def _check_payload(
        self,
        graph: ProjectGraph,
        module: ParsedModule,
        env: _Env,
        call: ast.Call,
        boundary: str,
        arg: ast.expr,
    ) -> Iterator[Finding]:
        if isinstance(arg, (ast.Tuple, ast.List)):
            for element in arg.elts:
                yield from self._check_payload(
                    graph, module, env, call, boundary, element
                )
            return
        if isinstance(arg, ast.Lambda) or (
            isinstance(arg, ast.Name) and arg.id in env.nested
        ):
            target = env.nested[arg.id] if isinstance(arg, ast.Name) else arg
            for captured, kind in sorted(_captured_handles(target, env).items()):
                yield self.finding(
                    module,
                    call.lineno,
                    f"worker closure passed to {boundary} captures raw "
                    f"{kind} handle '{captured}'",
                    hint="fork workers must open their own handles: pass "
                    "a path/key and reopen inside the worker",
                )
            return
        if not isinstance(arg, ast.Name):
            return
        if arg.id in env.handles:
            yield self.finding(
                module,
                call.lineno,
                f"raw {env.handles[arg.id]} handle '{arg.id}' crosses a "
                f"process boundary via {boundary}",
                hint="children share kernel state with the parent through "
                "inherited descriptors; ship a path and reopen, or adopt "
                "the fork-safety protocol",
            )
            return
        cls = env.instances.get(arg.id)
        info = graph.classes.get(cls) if cls is not None else None
        if info is None:
            return
        handle_attrs = _handle_attributes(graph, info)
        if not handle_attrs:
            return
        missing = [m for m in PROTOCOL if m not in info.members]
        if not missing:
            return
        attr, kind = sorted(handle_attrs.items())[0]
        yield self.finding(
            module,
            call.lineno,
            f"instance of {info.name} (holds {kind} handle attribute "
            f"'{attr}') crosses a process boundary via {boundary} but "
            f"{info.name} lacks the fork-safety protocol "
            f"(missing: {', '.join(missing)})",
            hint="implement owner_pid, reopen(), process_local() and a "
            "path-based __getstate__ so children reopen instead of "
            "sharing the parent's handle",
        )


# -- helpers -------------------------------------------------------------------


def _all_functions(tree: ast.Module) -> Iterator[ast.AST]:
    """Every def in the module: module level, methods, and nested defs.

    Nested defs are analyzed in their own right *and* as closures of their
    parent (via ``_captured_handles``); each gets its own local env.
    """
    for node in ast.walk(tree):
        if isinstance(node, _DEFS):
            yield node


def _walk_own(body: List[ast.stmt]) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/lambdas.

    Nested def statements themselves *are* yielded (so callers can index
    them); only their bodies are skipped — a nested function's internals
    belong to its own analysis pass.
    """
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _DEFS) or isinstance(node, ast.Lambda):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _scan_locals(graph: ProjectGraph, module: ParsedModule, func: ast.AST) -> _Env:
    env = _Env()
    for stmt in _walk_own(getattr(func, "body", [])):
        if isinstance(stmt, _DEFS):
            env.nested[stmt.name] = stmt
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if isinstance(item.optional_vars, ast.Name) and isinstance(
                    item.context_expr, ast.Call
                ):
                    _classify(
                        graph, module, env, item.optional_vars.id, item.context_expr
                    )
        elif (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
        ):
            target = stmt.targets[0]
            assert isinstance(target, ast.Name)
            _classify(graph, module, env, target.id, stmt.value)
    return env


def _classify(
    graph: ProjectGraph, module: ParsedModule, env: _Env, var: str, call: ast.Call
) -> None:
    resolved = graph.resolve_call(module, call)
    if resolved is None:
        return
    head = resolved.rsplit(".", 1)[0] if "." in resolved else resolved
    if resolved in HANDLE_FACTORIES:
        env.handles[var] = HANDLE_FACTORIES[resolved]
    elif resolved in graph.classes:
        env.instances[var] = resolved
    elif head in graph.classes:
        # alternate constructors: Store.open(...), Store.from_path(...)
        env.instances[var] = head
    elif resolved == "multiprocessing.get_context":
        env.contexts[var] = "mp-context"
    elif resolved.endswith(".Pool"):
        env.contexts[var] = "pool"
    else:
        name = dotted_name(call.func)
        if name and "." in name:
            root, _, tail = name.partition(".")
            if env.contexts.get(root) == "mp-context" and tail == "Pool":
                env.contexts[var] = "pool"


def _boundary_kind(
    graph: ProjectGraph, module: ParsedModule, env: _Env, call: ast.Call
) -> Optional[str]:
    """``"Process(...)"`` / ``"pool.map(...)"`` / ``"pickle.dumps(...)"``
    when *call* hands its payload to another process, else ``None``."""
    resolved = graph.resolve_call(module, call)
    if resolved in ("pickle.dumps", "pickle.dump"):
        return "pickle.dumps(...)"
    name = dotted_name(call.func)
    if name is None:
        return None
    root = name.partition(".")[0]
    last = name.rsplit(".", 1)[-1]
    if last == "Process":
        if resolved is not None and resolved.startswith("multiprocessing"):
            return "Process(...)"
        if env.contexts.get(root) == "mp-context":
            return "Process(...)"
    if last in _POOL_SUBMIT and "." in name:
        receiver = name.rsplit(".", 2)[-2]
        if env.contexts.get(receiver) == "pool" or receiver == "pool":
            return f"pool.{last}(...)"
    return None


def _boundary_payload(call: ast.Call) -> List[ast.expr]:
    """The expressions shipped to the other process: positional args plus
    ``target=``/``args=`` keywords."""
    payload: List[ast.expr] = list(call.args)
    for keyword in call.keywords:
        if keyword.arg in ("target", "args", "func", "iterable"):
            payload.append(keyword.value)
    return payload


def _captured_handles(target: ast.AST, env: _Env) -> Dict[str, str]:
    """Free variables of a lambda/nested def that are handle locals of the
    enclosing function."""
    bound = set()
    args = getattr(target, "args", None)
    if args is not None:
        for group in (args.posonlyargs, args.args, args.kwonlyargs):
            bound.update(a.arg for a in group)
        for special in (args.vararg, args.kwarg):
            if special is not None:
                bound.add(special.arg)
    raw_body = getattr(target, "body", [])
    elements = raw_body if isinstance(raw_body, list) else [raw_body]
    captured: Dict[str, str] = {}
    for element in elements:
        for node in ast.walk(element):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in env.handles and node.id not in bound:
                    captured[node.id] = env.handles[node.id]
    return captured


def _handle_attributes(graph: ProjectGraph, info: ClassInfo) -> Dict[str, str]:
    """Attr name -> handle kind, for attributes assigned from a handle
    factory (directly or via a one-step local) or annotated handle-typed."""
    attrs: Dict[str, str] = {}
    module_dotted = info.module.dotted
    # one-step local flow inside each method: v = open(...); self.x = v
    for method in info.methods.values():
        local_handles: Dict[str, str] = {}
        for node in _walk_own(getattr(method, "body", [])):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                callee = dotted_name(node.value.func)
                if callee is not None:
                    resolved = graph.resolve(module_dotted, callee)
                    if resolved in HANDLE_FACTORIES:
                        target = node.targets[0]
                        assert isinstance(target, ast.Name)
                        local_handles[target.id] = HANDLE_FACTORIES[resolved]
        for attr, value, _line in info.attr_assignments:
            if isinstance(value, ast.Name) and value.id in local_handles:
                attrs[attr] = local_handles[value.id]
    for attr, value, _line in info.attr_assignments:
        if isinstance(value, ast.Call):
            callee = dotted_name(value.func)
            if callee is not None:
                resolved = graph.resolve(module_dotted, callee)
                if resolved in HANDLE_FACTORIES:
                    attrs[attr] = HANDLE_FACTORIES[resolved]
    for attr, annotation, _line in info.attr_annotations:
        kind = _annotated_handle_kind(graph, module_dotted, annotation)
        if kind is not None:
            attrs[attr] = kind
    return attrs


def _annotated_handle_kind(
    graph: ProjectGraph, module_dotted: str, annotation: ast.expr
) -> Optional[str]:
    for node in ast.walk(annotation):
        name = dotted_name(node)
        if name is None:
            continue
        resolved = graph.resolve(module_dotted, name)
        if resolved in HANDLE_ANNOTATIONS:
            return HANDLE_ANNOTATIONS[resolved]
    return None
