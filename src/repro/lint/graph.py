"""Cross-module project model shared by the data-flow rules (R007-R010).

Where the engine's :class:`~repro.lint.engine.ParsedModule` cache answers
"what does this file parse to", the :class:`ProjectGraph` answers the
cross-module questions the concurrency and format rules need:

* **import graph** — which project modules does each module import, with
  relative imports (``from . import errors``) resolved to absolute dotted
  names;
* **class/attribute index** — every class definition with its methods,
  ``self.X = ...`` assignments, and ``self.X: T`` annotations, keyed by
  fully-dotted name (``repro.core.mapped.MappedPathStore``);
* **call-site resolution** — a best-effort mapping from the dotted name at
  a call site, through the module's import aliases, to the project entity
  (function / class / module-level constant) it denotes.

The graph is deliberately *syntactic*: it never imports analyzed code, so
it stays safe to run over broken or side-effectful modules, and it stays
dependency-free like the rest of ``repro.lint``.  One graph is built per
scope and cached on the :class:`~repro.lint.engine.Project`
(``project.graph()``), so four rules share a single construction pass.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.engine import ParsedModule, Project, dotted_name

FunctionNode = ast.FunctionDef  # async defs are indexed too; see _index_module


class ClassInfo:
    """One class definition plus the indexes rules keep asking for."""

    def __init__(self, dotted: str, module: ParsedModule, node: ast.ClassDef) -> None:
        self.dotted = dotted
        self.module = module
        self.node = node
        #: method / property name -> def node (class-body level only).
        self.methods: Dict[str, ast.AST] = {}
        #: names bound at class-body level (methods, class attrs, ...).
        self.members: Set[str] = set()
        #: ``self.X = value`` sites anywhere in the class: (attr, value, line).
        self.attr_assignments: List[Tuple[str, ast.expr, int]] = []
        #: ``self.X: T [= ...]`` sites: (attr, annotation, line).
        self.attr_annotations: List[Tuple[str, ast.expr, int]] = []
        self.bases: List[str] = [
            name for name in (dotted_name(base) for base in node.bases) if name
        ]

    @property
    def name(self) -> str:
        return self.node.name

    def _index(self) -> None:
        for stmt in self.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[stmt.name] = stmt
                self.members.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.members.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                self.members.add(stmt.target.id)
        for node in ast.walk(self.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if _is_self_attr(target):
                    assert isinstance(target, ast.Attribute)
                    self.attr_assignments.append(
                        (target.attr, node.value, node.lineno)
                    )
            elif isinstance(node, ast.AnnAssign) and _is_self_attr(node.target):
                target = node.target
                assert isinstance(target, ast.Attribute)
                self.attr_annotations.append(
                    (target.attr, node.annotation, node.lineno)
                )
                if node.value is not None:
                    self.attr_assignments.append(
                        (target.attr, node.value, node.lineno)
                    )


def _is_self_attr(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


class ProjectGraph:
    """Import graph + class index + call resolution over one scope."""

    def __init__(self, project: Project, scope: str = "src/repro") -> None:
        self.project = project
        self.scope = scope
        #: dotted module name -> parsed module.
        self.modules: Dict[str, ParsedModule] = {}
        #: module -> local name -> absolute dotted origin.
        self.aliases: Dict[str, Dict[str, str]] = {}
        #: module -> set of project modules it imports (absolute dotted).
        self.imports: Dict[str, Set[str]] = {}
        #: fully-dotted class name -> info.
        self.classes: Dict[str, ClassInfo] = {}
        #: fully-dotted function name -> (module, def node); module level only.
        self.functions: Dict[str, Tuple[ParsedModule, ast.AST]] = {}
        #: fully-dotted constant name -> (module, value node); simple
        #: module-level ``NAME = <expr>`` assignments only.
        self.constants: Dict[str, Tuple[ParsedModule, ast.expr]] = {}
        for module in project.modules_under(scope):
            self._index_module(module)
        for dotted in self.modules:
            self.imports[dotted] = {
                target
                for origin in self.aliases[dotted].values()
                for target in (self.module_of(origin),)
                if target is not None and target != dotted
            }

    # -- construction ----------------------------------------------------------

    def _index_module(self, module: ParsedModule) -> None:
        dotted = module.dotted
        self.modules[dotted] = module
        is_package = module.relpath.endswith("__init__.py")
        package = dotted.split(".") if is_package else dotted.split(".")[:-1]
        self.aliases[dotted] = _module_aliases(module.tree, package)
        for stmt in module.tree.body:
            if isinstance(stmt, ast.ClassDef):
                info = ClassInfo(f"{dotted}.{stmt.name}", module, stmt)
                info._index()
                self.classes[info.dotted] = info
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[f"{dotted}.{stmt.name}"] = (module, stmt)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    self.constants[f"{dotted}.{target.id}"] = (module, stmt.value)
            elif (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.value is not None
            ):
                self.constants[f"{dotted}.{stmt.target.id}"] = (module, stmt.value)

    # -- resolution ------------------------------------------------------------

    def module_of(self, dotted: str) -> Optional[str]:
        """The longest prefix of *dotted* that names a project module."""
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            candidate = ".".join(parts[:i])
            if candidate in self.modules:
                return candidate
        return None

    def resolve(self, module_dotted: str, name: str) -> str:
        """A name as written in *module_dotted* -> absolute dotted origin.

        Follows the module's import aliases for the first component and
        falls back to same-module definitions; names that resolve to
        nothing known come back unchanged (callers treat the result as a
        plain stdlib/builtin dotted name).
        """
        root, _, rest = name.partition(".")
        origin = self.aliases.get(module_dotted, {}).get(root)
        if origin is None:
            local = f"{module_dotted}.{root}"
            if (
                local in self.functions
                or local in self.classes
                or local in self.constants
            ):
                origin = local
            else:
                return name
        return f"{origin}.{rest}" if rest else origin

    def resolve_call(self, module: ParsedModule, call: ast.Call) -> Optional[str]:
        """Absolute dotted target of a call site, or ``None`` for dynamic
        callees (subscripts, calls-of-calls, ...)."""
        name = dotted_name(call.func)
        if name is None:
            return None
        return self.resolve(module.dotted, name)

    # -- constant value lookups ------------------------------------------------

    def bytes_constant(self, module_dotted: str, name: str) -> Optional[bytes]:
        """The value of *name* when it resolves to a module-level ``bytes``
        literal constant (e.g. a format magic)."""
        entry = self.constants.get(self.resolve(module_dotted, name))
        if entry is None:
            return None
        _, value = entry
        if isinstance(value, ast.Constant) and isinstance(value.value, bytes):
            return value.value
        return None

    def struct_format(self, module_dotted: str, name: str) -> Optional[str]:
        """The format string when *name* resolves to a module-level
        ``struct.Struct("...")`` constant."""
        entry = self.constants.get(self.resolve(module_dotted, name))
        if entry is None:
            return None
        owner, value = entry
        if not isinstance(value, ast.Call) or not value.args:
            return None
        callee = dotted_name(value.func)
        if callee is None or self.resolve(owner.dotted, callee) != "struct.Struct":
            return None
        fmt = value.args[0]
        if isinstance(fmt, ast.Constant) and isinstance(fmt.value, str):
            return fmt.value
        return None


def _module_aliases(tree: ast.Module, package: List[str]) -> Dict[str, str]:
    """Local name -> *absolute* dotted origin, resolving relative imports
    against *package* (the module's parent package parts).

    Unlike :func:`repro.lint.engine.import_aliases`, which preserves the
    leading dots, this resolver is what cross-module lookups need:
    ``from . import serialize`` inside ``repro.core.mapped`` maps to
    ``repro.core.serialize``.  Function-level imports are included — the
    codebase defers several imports into function bodies to break cycles.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                aliases[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package[: len(package) - (node.level - 1)]
                if node.module:
                    base_parts = base_parts + node.module.split(".")
                base = ".".join(base_parts)
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{base}.{alias.name}" if base else alias.name
    return aliases
