"""``python -m repro.lint`` — the command-line entry point.

Exit codes (stable contract for CI):

* ``0`` — no findings beyond the baseline;
* ``1`` — at least one non-baselined finding;
* ``2`` — the linter itself failed (bad arguments, unreadable baseline,
  unparseable source).

JSON output (``--format json``) carries ``schema_version`` (currently 1)
so downstream tooling can detect incompatible changes::

    {
      "schema_version": 1,
      "findings": [{"rule", "path", "line", "message", "hint"}, ...],
      "suppressed": <count matched by the baseline>,
      "stale_baseline": [{"rule", "path", "message"}, ...]
    }

Stale baseline entries (accepted findings the code no longer produces) are
reported but do not affect the exit code — delete them at leisure.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import traceback
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.baseline import DEFAULT_BASELINE, load_baseline, save_baseline
from repro.lint.engine import (
    SCHEMA_VERSION,
    LintInternalError,
    Project,
    run_rules,
    unknown_pragmas,
)
from repro.lint.rules import all_rules, known_rule_ids, rules_by_id


def _default_root() -> Path:
    """The checkout root: this file lives at ``<root>/src/repro/lint/``."""
    candidate = Path(__file__).resolve().parents[3]
    if (candidate / "src" / "repro").is_dir():
        return candidate
    return Path.cwd()


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Project-specific static analysis enforcing OFFS "
        "invariants (see docs/static-analysis.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="restrict *reported* findings to these repo-relative paths or "
        "globs (analysis still covers the whole project)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root (default: auto-detected from this file)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "gha"),
        default="text",
        help="output format (json includes schema_version; gha emits "
        "GitHub Actions ::error annotations)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="report only files changed in git (diff against --base plus "
        "untracked); falls back to a full scan outside a git checkout",
    )
    parser.add_argument(
        "--base",
        default=None,
        help="git base ref for --changed (default: HEAD)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 2 on linter hygiene problems (e.g. pragmas naming "
        "unknown rule ids) instead of just warning",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    try:
        return _run(args)
    except LintInternalError as exc:
        print(f"repro.lint: internal error: {exc}", file=sys.stderr)
        return 2
    except Exception:  # pragma: no cover - last-resort guard  # lint: ignore[R005]
        traceback.print_exc()
        return 2


def _run(args: argparse.Namespace) -> int:
    rules = all_rules()
    if args.rules:
        rules = rules_by_id([part.strip() for part in args.rules.split(",") if part.strip()])

    if args.list_rules:
        for rule in rules:
            print(f"{rule.id}  {rule.title}")
        return 0

    root = (args.root or _default_root()).resolve()
    if not (root / "src").is_dir():
        raise LintInternalError(f"{root} does not look like a checkout (no src/)")

    paths = list(args.paths)
    if args.changed:
        changed = _changed_python_paths(root, args.base)
        if changed is None:
            print(
                "repro.lint: --changed: not a usable git checkout; "
                "falling back to a full scan",
                file=sys.stderr,
            )
        else:
            paths.extend(changed)
            if not paths:
                print("repro.lint: --changed: no changed python files")
                return 0

    project = Project(root)
    findings = run_rules(project, rules, paths=paths or None)
    pragma_problems = unknown_pragmas(project, known_rule_ids())

    baseline_path = args.baseline or (root / DEFAULT_BASELINE)
    if args.write_baseline:
        save_baseline(baseline_path, findings)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    if args.no_baseline:
        new, suppressed, stale = findings, [], []
    else:
        baseline = load_baseline(baseline_path)
        new, suppressed = baseline.split(findings)
        # A path filter hides findings the baseline still matches; stale
        # detection is only meaningful against a full scan.
        stale = baseline.stale(findings) if not paths else []

    if args.format == "json":
        payload = {
            "schema_version": SCHEMA_VERSION,
            "findings": [finding.to_dict() for finding in new],
            "suppressed": len(suppressed),
            "stale_baseline": [
                {"rule": rule, "path": path, "message": message}
                for rule, path, message in stale
            ],
            "unknown_pragmas": [
                {"path": path, "line": line, "rule": rule_id}
                for path, line, rule_id in pragma_problems
            ],
        }
        print(json.dumps(payload, indent=2))
    elif args.format == "gha":
        for finding in new:
            message = finding.message
            if finding.hint:
                message += f" (hint: {finding.hint})"
            print(
                f"::error file={finding.path},line={finding.line},"
                f"title=repro.lint {finding.rule}::{_gha_escape(message)}"
            )
        for path, line, rule_id in pragma_problems:
            print(
                f"::warning file={path},line={line},title=repro.lint::"
                + _gha_escape(f"pragma names unknown rule {rule_id}")
            )
    else:
        for finding in new:
            print(finding.render())
        summary: List[str] = [f"{len(new)} finding(s)"]
        if suppressed:
            summary.append(f"{len(suppressed)} baselined")
        if stale:
            summary.append(f"{len(stale)} stale baseline entr(y/ies)")
        print("repro.lint: " + ", ".join(summary))
        for rule, path, message in stale:
            print(f"  stale: {rule} {path}: {message}")

    for path, line, rule_id in pragma_problems:
        print(
            f"repro.lint: warning: {path}:{line}: pragma names unknown "
            f"rule {rule_id} (see --list-rules); it suppresses nothing",
            file=sys.stderr,
        )
    if pragma_problems and args.strict:
        return 2
    return 1 if new else 0


def _gha_escape(text: str) -> str:
    """GitHub Actions workflow-command escaping for message data."""
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def _changed_python_paths(root: Path, base: Optional[str]) -> Optional[List[str]]:
    """Repo-relative ``.py`` files changed vs *base* (default HEAD) plus
    untracked ones, or ``None`` when git is unavailable — the caller falls
    back to a full scan so the flag is safe in exported tarballs."""
    commands = [
        ["git", "diff", "--name-only", base or "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ]
    changed: List[str] = []
    for command in commands:
        try:
            result = subprocess.run(
                command, cwd=root, capture_output=True, text=True, timeout=30
            )
        except (OSError, subprocess.SubprocessError):
            return None
        if result.returncode != 0:
            return None
        changed.extend(line.strip() for line in result.stdout.splitlines())
    return sorted({path for path in changed if path.endswith(".py")})


if __name__ == "__main__":
    sys.exit(main())
