"""repro — Overlap-Free Frequent Subpath (OFFS) path compression.

A complete reproduction of *"Efficient and Effective Path Compression in
Large Graphs"* (Huang, Wen, Lai, Qian, Qin, Zhang — ICDE 2023): the OFFS
compressor, every baseline it is compared against, the preprocessing
pipeline, workload surrogates for the paper's datasets, the retrieval
use-cases, and a benchmark harness regenerating every table and figure of
the evaluation.

Quickstart::

    from repro import OFFSCodec, CompressedPathStore, PathDataset

    dataset = PathDataset([[1, 2, 3, 4, 9], [0, 1, 2, 3, 4], [1, 2, 3, 4, 7]])
    codec = OFFSCodec.default().fit(dataset)
    store = CompressedPathStore.from_dataset(dataset, codec.table)
    assert store.retrieve(1) == (0, 1, 2, 3, 4)
    print(store.compression_ratio())

See ``examples/`` for realistic scenarios and ``benchmarks/`` for the
paper's experiments.
"""

from repro.core import (
    CompressedPathStore,
    OFFSCodec,
    OFFSConfig,
    PathCodec,
    ReproError,
    SupernodeTable,
    TableBuilder,
    TableCodec,
    build_supernode_table,
    compress_path,
    decompress_path,
)
from repro.paths import Path, PathDataset, preprocess_paths
from repro.queries import PathQueryEngine, VertexIndex

__version__ = "1.0.0"

__all__ = [
    "CompressedPathStore",
    "OFFSCodec",
    "OFFSConfig",
    "PathCodec",
    "ReproError",
    "SupernodeTable",
    "TableBuilder",
    "TableCodec",
    "build_supernode_table",
    "compress_path",
    "decompress_path",
    "Path",
    "PathDataset",
    "preprocess_paths",
    "PathQueryEngine",
    "VertexIndex",
    "__version__",
]
