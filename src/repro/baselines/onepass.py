"""The one-pass table construction skeleton — ``TConstruct`` (Algorithm 4).

Both naive DICT baselines share this recipe:

1. traverse the (sampled) paths and count the frequency of **every** subpath
   up to the maximum supernode size;
2. if the candidate hash outgrows a threshold, keep only the top candidates
   under the baseline's rule (the paper speeds RSS/GFS up with a threshold
   of ``5 × c``);
3. pick the final ``c`` candidates by the rule and build the lookup table.

Subclasses provide the rule by overriding :meth:`select`:
:class:`~repro.baselines.rss.RSSCodec` samples at random,
:class:`~repro.baselines.gfs.GFSCodec` ranks by gross weighted frequency.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Dict, List, Sequence, Tuple

from repro.core.codec import TableCodec
from repro.core.supernode_table import SupernodeTable

Subpath = Tuple[int, ...]

DEFAULT_CAPACITY = 4096
PRUNE_FACTOR = 5  # the paper's "threshold 5·c" mid-collection filter


def collect_subpath_counts(
    paths: Sequence[Sequence[int]],
    max_len: int,
    prune_threshold: int = 0,
    prune_keep: int = 0,
    prune_rank=None,
) -> Dict[Subpath, int]:
    """Count every subpath of length 2..*max_len* across *paths*.

    This is lines 1–2 of Algorithm 4: gross frequencies, counting an
    occurrence at every position regardless of overlaps — exactly the
    behaviour that invites match collisions.

    :param prune_threshold: when > 0 and the hash exceeds it, prune down to
        *prune_keep* entries ranked by *prune_rank* (a key function over
        ``(subpath, count)`` items, higher first).  This is the paper's
        mid-collection speed-up; it makes counts approximate, which is
        acceptable for the baselines it serves.
    """
    counts: Dict[Subpath, int] = {}
    for path in paths:
        n = len(path)
        for length in range(2, max_len + 1):
            for start in range(n - length + 1):
                seq = tuple(path[start : start + length])
                counts[seq] = counts.get(seq, 0) + 1
        if prune_threshold and len(counts) > prune_threshold:
            ranked = sorted(counts.items(), key=prune_rank)
            counts = dict(ranked[:prune_keep])
    return counts


class OnePassTableCodec(TableCodec):
    """Base class for the Algorithm 4 baselines (RSS, GFS).

    :param capacity: table capacity ``c`` (final number of supernodes).
    :param max_len: maximum candidate length ``l`` (paper: same δ as OFFS).
    :param sample_exponent: use one path in every ``2**k`` for construction,
        matching the comparison setup ("the sample rate for table
        construction is set to 128").
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        max_len: int = 8,
        sample_exponent: int = 7,
        seed: int = 0,
        base_id: int = None,
    ) -> None:
        super().__init__(base_id=base_id)
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if max_len < 2:
            raise ValueError("max_len must be >= 2")
        self.capacity = capacity
        self.max_len = max_len
        self.sample_exponent = sample_exponent
        self.seed = seed

    @abstractmethod
    def select(self, counts: Dict[Subpath, int], capacity: int) -> List[Subpath]:
        """Pick at most *capacity* candidates from *counts* (the rule)."""

    def _prune_rank(self, item: Tuple[Subpath, int]):
        """Default mid-collection ranking: gross weighted frequency."""
        seq, count = item
        return (-count * len(seq), -len(seq), seq)

    def build_table(self, dataset) -> SupernodeTable:
        paths = list(dataset)
        if self.base_id is not None:
            base_id = self.base_id
        else:
            max_id = -1
            for p in paths:
                if p:
                    m = max(p)
                    if m > max_id:
                        max_id = m
            base_id = max_id + 1 if max_id >= 0 else 1

        stride = 1 << self.sample_exponent
        sampled = paths[::stride] if stride > 1 else paths
        counts = collect_subpath_counts(
            sampled,
            self.max_len,
            prune_threshold=PRUNE_FACTOR * self.capacity,
            prune_keep=PRUNE_FACTOR * self.capacity,
            prune_rank=self._prune_rank,
        )
        chosen = self.select(counts, self.capacity)
        return SupernodeTable(base_id, chosen)
