"""Dlz4 — per-path generic LZ compression with a trained dictionary.

The paper's representative generic baseline (Section II-C): interpret each
path's 32-bit vertex ids as a byte array, compress it as an independent block
with an LZ codec whose stream is seeded by a dictionary trained from samples
(lz4's stream mode + zstd's ``zdict``).  The stream state is refreshed per
path so blocks stay independent — the price of random access the paper calls
out as drawback (1).

Two interchangeable byte-level backends:

* ``"zlib"`` (default) — stdlib DEFLATE with its native preset-dictionary
  support (``zdict=``); fast, battle-tested.
* ``"lz77"`` — this repository's from-scratch LZ77
  (:mod:`repro.generic.lz77`), closer to lz4's actual format (no entropy
  stage) and fully inspectable.

Substitution note (DESIGN.md §2): lz4/zstd are unavailable offline; both
backends preserve the Dlz4 recipe — per-block LZ with shared trained
dictionary — which is what the comparison depends on.
"""

from __future__ import annotations

import zlib
from typing import List, Sequence, Tuple

from repro.core.codec import PathCodec
from repro.core.errors import NotFittedError
from repro.generic.dictionary import train_dictionary_from_paths
from repro.generic.lz77 import lz77_compress, lz77_decompress
from repro.paths.encoding import DEFAULT_ENCODING, Encoding, FixedWidthEncoding

_BACKENDS = ("zlib", "lz77")


class Dlz4Codec(PathCodec):
    """Per-path generic LZ codec with a trained preset dictionary.

    :param backend: ``"zlib"`` or ``"lz77"``.
    :param dict_size: dictionary budget in bytes (zdict-style).
    :param sample_exponent: train from one path in every ``2**k``
        (paper: k=7, i.e. 1/128).
    :param level: zlib compression level (ignored by the lz77 backend).
    :param width: bytes per vertex id when reinterpreting paths as bytes
        (paper: 4, i.e. 32-bit integers).
    """

    name = "Dlz4"

    def __init__(
        self,
        backend: str = "zlib",
        dict_size: int = 4096,
        sample_exponent: int = 7,
        level: int = 6,
        width: int = 4,
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        self.backend = backend
        self.dict_size = dict_size
        self.sample_exponent = sample_exponent
        self.level = level
        self._bytes_encoding = FixedWidthEncoding(width)
        self._zdict: bytes = b""
        self._fitted = False

    # -- PathCodec implementation ---------------------------------------------------

    def fit(self, dataset) -> "Dlz4Codec":
        stride = 1 << self.sample_exponent
        paths = list(dataset)
        sampled = paths[::stride] if stride > 1 else paths
        encoded = [self._bytes_encoding.encode(p) for p in sampled]
        self._zdict = train_dictionary_from_paths(encoded, dict_size=self.dict_size)
        self._fitted = True
        return self

    def compress_path(self, path: Sequence[int]) -> bytes:
        self._require_fitted()
        raw = self._bytes_encoding.encode(path)
        if self.backend == "zlib":
            # A fresh stream per path keeps blocks independent (the paper's
            # mandatory refresh); the dictionary provides the cross-path
            # redundancy a lone small block lacks.
            compressor = zlib.compressobj(self.level, zlib.DEFLATED, zlib.MAX_WBITS, 9, 0, self._zdict)
            return compressor.compress(raw) + compressor.flush()
        return lz77_compress(raw, self._zdict)

    def decompress_path(self, token: bytes) -> Tuple[int, ...]:
        self._require_fitted()
        if self.backend == "zlib":
            decompressor = zlib.decompressobj(zlib.MAX_WBITS, self._zdict)
            raw = decompressor.decompress(token) + decompressor.flush()
        else:
            raw = lz77_decompress(token, self._zdict)
        return tuple(self._bytes_encoding.decode(raw))

    def rule_size_bytes(self, encoding: Encoding = DEFAULT_ENCODING) -> int:
        """The rule is the shared dictionary blob."""
        self._require_fitted()
        return len(self._zdict)

    def compressed_size_bytes(self, token: bytes, encoding: Encoding = DEFAULT_ENCODING) -> int:
        """Token bytes plus a length marker (blocks need framing on disk)."""
        return encoding.size_of_value(len(token)) + len(token)

    # -- internals ------------------------------------------------------------------

    @property
    def dictionary(self) -> bytes:
        """The trained dictionary blob (after :meth:`fit`)."""
        self._require_fitted()
        return self._zdict

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("Dlz4Codec: call fit() before (de)compressing")


def compress_paths_dlz4(
    dataset, backend: str = "zlib", **kwargs
) -> Tuple[Dlz4Codec, List[bytes]]:
    """Fit a :class:`Dlz4Codec` on *dataset* and compress all of it."""
    codec = Dlz4Codec(backend=backend, **kwargs).fit(dataset)
    return codec, codec.compress_dataset(dataset)


def decompress_paths_dlz4(
    codec: Dlz4Codec, tokens: Sequence[bytes]
) -> List[Tuple[int, ...]]:
    """Inverse of :func:`compress_paths_dlz4` given its fitted codec."""
    return [codec.decompress_path(token) for token in tokens]
