"""Every baseline the paper compares OFFS against.

* :mod:`repro.baselines.onepass` — the shared ``TConstruct`` skeleton
  (Algorithm 4): collect subpath frequencies in one pass, pick top
  candidates by some rule.
* :mod:`repro.baselines.rss` — **RSS**: random sampling of candidates,
  "the most naive solution".
* :mod:`repro.baselines.gfs` — **GFS**: top candidates by *gross* weighted
  frequency, the measure that suffers match collisions (Section IV-A).
* :mod:`repro.baselines.afs` — **AFS** (Algorithm 3): Apriori for Frequent
  Subpaths, the prior state of the art the paper rules out on cost.
* :mod:`repro.baselines.dlz4` — **Dlz4**: per-path generic LZ compression
  seeded by a trained dictionary (Section II-C).
* :mod:`repro.baselines.blockwise` — block-mode generic compression, the
  strawman whose lack of partial decompression motivates the problem.
* :mod:`repro.baselines.repair` — **Re-Pair**, the grammar-compression
  relative OFFS is best understood against (see the comparison bench).
"""

from repro.baselines.afs import AFSCodec, afs_frequent_subpaths
from repro.baselines.blockwise import BlockwiseZlibStore
from repro.baselines.dlz4 import Dlz4Codec
from repro.baselines.gfs import GFSCodec
from repro.baselines.onepass import OnePassTableCodec, collect_subpath_counts
from repro.baselines.repair import RePairCodec
from repro.baselines.rss import RSSCodec

__all__ = [
    "AFSCodec",
    "afs_frequent_subpaths",
    "BlockwiseZlibStore",
    "Dlz4Codec",
    "GFSCodec",
    "OnePassTableCodec",
    "RePairCodec",
    "collect_subpath_counts",
    "RSSCodec",
]
