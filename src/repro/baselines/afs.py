"""AFS — Apriori for Frequent Subpaths (Algorithm 3).

The prior state of the art for mining frequent subpaths, reproduced faithfully
so the paper's cost argument can be demonstrated rather than taken on faith.
AFS grows length-``i`` candidates by joining length-``(i-1)`` results with
graph out-edges (``JoinWithCheck``), then counts candidate gains over the data
(``CountGain``) and keeps those at or above a threshold ``k``.

The paper's three criticisms, all observable here:

1. each iteration re-validates joins against ``L_{i-1}``, giving the
   ``O(l² · n · λ)`` blow-up;
2. joined candidates are not guaranteed to occur in the data at all, so a
   full counting pass is needed per iteration anyway;
3. the output is riddled with overlaps (every prefix/suffix of a frequent
   subpath is itself frequent), i.e. maximal match-collision exposure.

:class:`AFSCodec` wraps the miner as a table codec for head-to-head
comparison on small inputs; the A2 ablation bench and the unit tests use it —
the main figure benches do not, matching the paper, which dropped AFS from
the evaluation for being impractically slow.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Sequence, Set, Tuple

from repro.core.codec import TableCodec
from repro.core.supernode_table import SupernodeTable

Subpath = Tuple[int, ...]


def _edges_of(paths: Sequence[Sequence[int]]) -> Dict[int, Set[int]]:
    """Adjacency (out-neighbours) observed in the path set.

    AFS assumes "there is a graph as ground truth"; the recorded paths are
    the only ground truth available, so the graph is their edge union.
    """
    adjacency: Dict[int, Set[int]] = defaultdict(set)
    for path in paths:
        for i in range(len(path) - 1):
            adjacency[path[i]].add(path[i + 1])
    return adjacency


def _join_with_check(level: Set[Subpath], adjacency: Dict[int, Set[int]]) -> Set[Subpath]:
    """``JoinWithCheck``: extend by out-edges, prune by the Apriori property."""
    joined: Set[Subpath] = set()
    for subpath in level:
        last = subpath[-1]
        for neighbour in adjacency.get(last, ()):
            extended = subpath + (neighbour,)
            if extended[1:] in level or len(extended) == 2:
                joined.add(extended)
    return joined


def _count_gain(
    candidates: Set[Subpath],
    paths: Sequence[Sequence[int]],
    threshold: int,
    length: int,
) -> Dict[Subpath, int]:
    """``CountGain``: count candidate occurrences, keep gain ≥ *threshold*.

    Gain is the product of frequency and length (the paper's definition).
    """
    counts: Dict[Subpath, int] = defaultdict(int)
    for path in paths:
        for start in range(len(path) - length + 1):
            seq = tuple(path[start : start + length])
            if seq in candidates:
                counts[seq] += 1
    return {
        seq: count for seq, count in counts.items() if count * length >= threshold
    }


def afs_frequent_subpaths(
    paths: Sequence[Sequence[int]],
    max_length: int,
    threshold: int,
) -> Dict[Subpath, int]:
    """Run AFS (Algorithm 3) and return ``{frequent subpath: frequency}``.

    :param max_length: the maximum subpath length ``l``.
    :param threshold: the gain threshold ``k`` (frequency × length ≥ k).
    """
    adjacency = _edges_of(paths)
    results: Dict[Subpath, int] = {}
    # L_1 is the vertex set; it seeds the joins but single vertices are not
    # useful supernodes, so they are not reported.
    level: Set[Subpath] = {(v,) for p in paths for v in p}
    length = 2
    while length <= max_length and level:
        candidates = _join_with_check(level, adjacency)
        counted = _count_gain(candidates, paths, threshold, length)
        results.update(counted)
        level = set(counted)
        length += 1
    return results


class AFSCodec(TableCodec):
    """Table codec whose supernodes are AFS's frequent subpaths.

    :param max_length: AFS's ``l`` (default 8, OFFS's δ).
    :param threshold: AFS's gain threshold ``k``.
    :param capacity: keep at most this many mined subpaths, best gain first.
    """

    name = "AFS"

    def __init__(
        self,
        max_length: int = 8,
        threshold: int = 8,
        capacity: int = 4096,
        base_id: int = None,
    ) -> None:
        super().__init__(base_id=base_id)
        self.max_length = max_length
        self.threshold = threshold
        self.capacity = capacity

    def build_table(self, dataset) -> SupernodeTable:
        paths = list(dataset)
        if self.base_id is not None:
            base_id = self.base_id
        else:
            max_id = max((max(p) for p in paths if p), default=-1)
            base_id = max_id + 1 if max_id >= 0 else 1
        mined = afs_frequent_subpaths(paths, self.max_length, self.threshold)
        ranked = sorted(
            mined.items(), key=lambda e: (-e[1] * len(e[0]), -len(e[0]), e[0])
        )
        chosen = [seq for seq, _ in ranked[: self.capacity]]
        return SupernodeTable(base_id, chosen)
