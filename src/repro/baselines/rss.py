"""RSS — randomly sampled subpaths (the naive DICT baseline).

"RSS is a naive solution that randomly samples c out of candidates without
considering any measure" (Section III-B).  Surprisingly, the paper finds its
average compression ratio *beats* GFS on some data: random picks are at least
uncorrelated, while gross-frequency picks pile up overlapping subpaths that
collide during matching.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.baselines.onepass import OnePassTableCodec, Subpath


class RSSCodec(OnePassTableCodec):
    """One-pass DICT baseline with uniformly random candidate selection."""

    name = "RSS"

    def select(self, counts: Dict[Subpath, int], capacity: int) -> List[Subpath]:
        candidates = sorted(counts)  # sort for seed-stable sampling
        if len(candidates) <= capacity:
            return candidates
        rng = random.Random(self.seed)
        return rng.sample(candidates, capacity)
