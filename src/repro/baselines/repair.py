"""Re-Pair — the grammar-compression relative of OFFS.

OFFS is best understood next to Re-Pair (Larsson & Moffat, 1999; the engine
behind the BRPFC string dictionaries the paper cites): both replace repeated
sequences by fresh symbols from a learned table.  The differences are
instructive, so this module implements a faithful per-path-decodable
Re-Pair variant as an additional comparator:

* **rule shape** — Re-Pair rules are strictly *pairs*; long repeats emerge
  as hierarchies of pairs (a rule's symbols may themselves be rules).
  OFFS entries are flat subpaths up to δ, expanded in one step.
* **selection** — Re-Pair greedily replaces the globally most frequent
  adjacent pair, recounting after every replacement round; there is no
  match-collision issue because replacement happens *during* counting.
  OFFS approximates that effect with practical weighted frequency at far
  lower construction cost.
* **decompression** — Re-Pair expansion is recursive (depth = rule
  hierarchy); OFFS is a single table lookup per symbol — the property that
  keeps Algorithm 1 at one cheap pass.

The implementation trains on a sample (like every codec here), caps the
grammar size, and compresses unseen paths by replaying rules in creation
order — deterministic, lossless, per-path decodable.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.codec import PathCodec
from repro.core.errors import NotFittedError, TableError
from repro.paths.encoding import DEFAULT_ENCODING, Encoding

Pair = Tuple[int, int]


def _replace_pair(sequence: List[int], pair: Pair, symbol: int) -> List[int]:
    """Replace non-overlapping left-to-right occurrences of *pair*."""
    out: List[int] = []
    i = 0
    n = len(sequence)
    first, second = pair
    while i < n:
        if i + 1 < n and sequence[i] == first and sequence[i + 1] == second:
            out.append(symbol)
            i += 2
        else:
            out.append(sequence[i])
            i += 1
    return out


class RePairCodec(PathCodec):
    """Per-path-decodable Re-Pair grammar compression.

    :param max_rules: grammar size cap (table capacity analogue).
    :param min_frequency: stop once no pair occurs this often (classic
        Re-Pair stops at 2).
    :param sample_exponent: train on one path in every ``2**k``.
    :param base_id: first grammar-symbol id; defaults to one past the
        training data's maximum vertex id (pass explicitly when compressing
        ids the training sample never saw).
    """

    name = "RePair"

    def __init__(
        self,
        max_rules: int = 512,
        min_frequency: int = 2,
        sample_exponent: int = 0,
        base_id: Optional[int] = None,
    ) -> None:
        if max_rules < 1:
            raise ValueError("max_rules must be >= 1")
        if min_frequency < 2:
            raise ValueError("min_frequency must be >= 2")
        self.max_rules = max_rules
        self.min_frequency = min_frequency
        self.sample_exponent = sample_exponent
        self._explicit_base_id = base_id
        self._rules: List[Pair] = []          # rule i defines symbol base_id + i
        self._rule_ids: Dict[Pair, int] = {}
        self._base_id: Optional[int] = None

    # -- training ------------------------------------------------------------------

    def fit(self, dataset) -> "RePairCodec":
        paths = [list(p) for p in dataset]
        stride = 1 << self.sample_exponent
        sampled = paths[::stride] if stride > 1 else paths
        if self._explicit_base_id is not None:
            base = self._explicit_base_id
        else:
            max_id = max((max(p) for p in paths if p), default=0)
            base = max_id + 1
        self._base_id = base
        self._rules = []
        self._rule_ids = {}

        working = [list(p) for p in sampled]
        while len(self._rules) < self.max_rules:
            counts: Counter = Counter()
            for seq in working:
                for i in range(len(seq) - 1):
                    counts[(seq[i], seq[i + 1])] += 1
            if not counts:
                break
            # Deterministic winner: highest count, then smallest pair.
            pair, frequency = min(
                counts.items(), key=lambda e: (-e[1], e[0])
            )
            if frequency < self.min_frequency:
                break
            symbol = base + len(self._rules)
            self._rules.append(pair)
            self._rule_ids[pair] = symbol
            working = [_replace_pair(seq, pair, symbol) for seq in working]
        return self

    # -- codec interface ---------------------------------------------------------------

    @property
    def base_id(self) -> int:
        if self._base_id is None:
            raise NotFittedError("RePairCodec: call fit() first")
        return self._base_id

    @property
    def rules(self) -> List[Pair]:
        """The grammar, in creation order (symbol ``base_id + index``)."""
        return list(self._rules)

    def compress_path(self, path: Sequence[int]) -> Tuple[int, ...]:
        base = self.base_id
        seq = list(path)
        for v in seq:
            if v >= base:
                raise TableError(
                    f"vertex id {v} collides with the grammar symbol space "
                    f"(base_id={base}); fit with an explicit base_id"
                )
        for index, pair in enumerate(self._rules):
            seq = _replace_pair(seq, pair, base + index)
        return tuple(seq)

    def decompress_path(self, token: Sequence[int]) -> Tuple[int, ...]:
        base = self.base_id
        out: List[int] = []
        # Iterative expansion with an explicit stack (rule hierarchies can
        # be deep on highly repetitive data).
        stack: List[int] = list(reversed(token))
        while stack:
            symbol = stack.pop()
            if symbol >= base:
                first, second = self._rules[symbol - base]
                stack.append(second)
                stack.append(first)
            else:
                out.append(symbol)
        return tuple(out)

    def rule_size_bytes(self, encoding: Encoding = DEFAULT_ENCODING) -> int:
        """Grammar cost: two symbols per rule (ids implicit by order)."""
        if self._base_id is None:
            raise NotFittedError("RePairCodec: call fit() first")
        total = encoding.size_of_value(self.base_id)
        for first, second in self._rules:
            total += encoding.size_of_value(first) + encoding.size_of_value(second)
        return total

    def compressed_size_bytes(
        self, token: Sequence[int], encoding: Encoding = DEFAULT_ENCODING
    ) -> int:
        return encoding.size_of_value(len(token)) + encoding.size_of(token)

    # -- introspection -------------------------------------------------------------------

    def expansion_depth(self, symbol: int) -> int:
        """Hierarchy depth below *symbol* (0 for plain vertices).

        Quantifies the recursive-decompression cost OFFS avoids; reported
        by the comparison benchmark.
        """
        base = self.base_id
        if symbol < base:
            return 0
        first, second = self._rules[symbol - base]
        return 1 + max(self.expansion_depth(first), self.expansion_depth(second))

    def max_expansion_depth(self) -> int:
        """The deepest rule hierarchy in the grammar."""
        if not self._rules:
            return 0
        return max(
            self.expansion_depth(self.base_id + i) for i in range(len(self._rules))
        )
