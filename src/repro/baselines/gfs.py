"""GFS — gross frequent subpaths (the measure the paper argues against).

GFS picks the top-``c`` candidates by *gross weighted frequency*, the product
of raw occurrence count and length, counting an occurrence "at any position"
(Section IV-A).  That is the natural frequent-pattern-mining measure — and a
poor compression measure: the top of the ranking fills up with overlapping
variants of the same hot subpath (Table I's ``u_1..u_4`` are all fragments of
``u_0``), and once the longest one is matched greedily, the rest never match
anything.  Example 1 and the A2 ablation benchmark demonstrate the effect.

Ties follow the paper's stated rule: prefer the longer candidate unless its
frequency is 1.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.onepass import OnePassTableCodec, Subpath


def gross_weighted_frequency(subpath: Subpath, count: int) -> int:
    """The GFS measure: occurrences × length."""
    return count * len(subpath)


class GFSCodec(OnePassTableCodec):
    """One-pass DICT baseline ranked by gross weighted frequency."""

    name = "GFS"

    def select(self, counts: Dict[Subpath, int], capacity: int) -> List[Subpath]:
        def key(item):
            seq, count = item
            tie_len = len(seq) if count > 1 else 0
            return (-gross_weighted_frequency(seq, count), -tie_len, -count, seq)

        ranked = sorted(counts.items(), key=key)
        return [seq for seq, _ in ranked[:capacity]]
