"""Block-wise generic compression — the strawman of Section II-C.

"A naive and straightforward idea is to divide all paths into a set of blocks
and compress each block individually."  This store does exactly that with
stdlib zlib, so its three documented shortcomings can be *measured*:

1. duplication across blocks goes undetected (CR falls as blocks shrink);
2. retrieving one path decompresses its whole block (PDS tanks for big
   blocks);
3. no global dictionary means small blocks barely compress at all — the
   paper observed quality "drops dramatically as we allocate a block for
   each path".

It is intentionally *not* a :class:`~repro.core.codec.PathCodec`: per-path
compression is the very capability it lacks.  The Fig. 5/6 benches use it as
the generic-compression reference point alongside Dlz4.
"""

from __future__ import annotations

import zlib
from typing import List, Tuple

from repro.core.errors import PathIdError
from repro.paths.encoding import DEFAULT_ENCODING, Encoding, FixedWidthEncoding


class BlockwiseZlibStore:
    """Paths packed into fixed-count blocks, each block zlib-compressed.

    :param paths_per_block: how many paths share one compressed block.
        ``1`` reproduces the degenerate one-path-per-block configuration.
    :param level: zlib compression level.
    :param width: bytes per vertex id in the raw representation.
    """

    def __init__(self, paths_per_block: int = 64, level: int = 6, width: int = 4) -> None:
        if paths_per_block < 1:
            raise ValueError("paths_per_block must be >= 1")
        self.paths_per_block = paths_per_block
        self.level = level
        self._bytes_encoding = FixedWidthEncoding(width)
        self._blocks: List[bytes] = []
        self._lengths: List[List[int]] = []  # per block, the path lengths
        self._count = 0

    # -- ingest -----------------------------------------------------------------

    def compress_dataset(self, dataset) -> "BlockwiseZlibStore":
        """Compress all of *dataset* into blocks; returns ``self``."""
        paths = list(dataset)
        self._blocks = []
        self._lengths = []
        self._count = len(paths)
        for start in range(0, len(paths), self.paths_per_block):
            block_paths = paths[start : start + self.paths_per_block]
            raw = bytearray()
            lengths = []
            for p in block_paths:
                raw += self._bytes_encoding.encode(p)
                lengths.append(len(p))
            self._blocks.append(zlib.compress(bytes(raw), self.level))
            self._lengths.append(lengths)
        return self

    # -- retrieval ---------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def retrieve(self, path_id: int) -> Tuple[int, ...]:
        """Fetch one path — decompressing its **entire** block (the cost
        this baseline exists to demonstrate)."""
        if not 0 <= path_id < self._count:
            raise PathIdError(f"path id {path_id} not in store of {self._count} paths")
        block_index, offset = divmod(path_id, self.paths_per_block)
        raw = zlib.decompress(self._blocks[block_index])
        values = self._bytes_encoding.decode(raw)
        lengths = self._lengths[block_index]
        start = sum(lengths[:offset])
        return tuple(values[start : start + lengths[offset]])

    def decompress_dataset(self) -> List[Tuple[int, ...]]:
        """Inverse of :meth:`compress_dataset`: every path, in ingest order."""
        return self.retrieve_all()

    def retrieve_all(self) -> List[Tuple[int, ...]]:
        """Decompress every block and return all paths in order."""
        out: List[Tuple[int, ...]] = []
        for block, lengths in zip(self._blocks, self._lengths):
            values = self._bytes_encoding.decode(zlib.decompress(block))
            pos = 0
            for length in lengths:
                out.append(tuple(values[pos : pos + length]))
                pos += length
        return out

    # -- size accounting -------------------------------------------------------------

    def compressed_size_bytes(self, encoding: Encoding = DEFAULT_ENCODING) -> int:
        """Blocks plus the per-block path-length framing metadata."""
        total = 0
        for block, lengths in zip(self._blocks, self._lengths):
            total += encoding.size_of_value(len(block)) + len(block)
            total += encoding.size_of_value(len(lengths))
            total += sum(encoding.size_of_value(n) for n in lengths)
        return total

    def raw_size_bytes(self, encoding: Encoding = DEFAULT_ENCODING) -> int:
        """What the uncompressed paths cost under the paper's size model."""
        total = 0
        width = self._bytes_encoding.width
        for lengths in self._lengths:
            for n in lengths:
                total += encoding.size_of_value(n) + n * width
        return total

    def compression_ratio(self, encoding: Encoding = DEFAULT_ENCODING) -> float:
        """``CR = |P| / compressed`` for the whole store."""
        compressed = self.compressed_size_bytes(encoding)
        return self.raw_size_bytes(encoding) / compressed if compressed else 0.0

    def __repr__(self) -> str:
        return (
            f"BlockwiseZlibStore(paths={self._count}, "
            f"paths_per_block={self.paths_per_block}, blocks={len(self._blocks)})"
        )
