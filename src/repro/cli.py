"""Command-line interface: compress, decompress, inspect and query archives.

The operational surface a deployment needs, over the text/binary formats of
:mod:`repro.paths.io` and the archive format of :mod:`repro.core.serialize`:

* ``python -m repro compress IN.paths OUT.offs`` — build a table and
  compress a path file (one space-separated path per line);
  ``--format v2`` writes the mmap-friendly single-file layout instead of
  the v1 blob; ``--shards N`` writes a *sharded* store instead (an
  ``RPSM`` manifest plus N self-contained v2 shard files, compressed in
  parallel across ``--processes`` workers; see docs/formats.md).
  ``--auto`` tunes the config on a pilot sample first and compresses with
  the pick; add ``--ablation-report BENCH_ablation.json`` to prune the
  search with measured component importance (see docs/ablation.md).
  ``--reorder frequency|bfs|locality`` fits a compression-aware vertex
  order first; the invertible mapping persists inside the v2/sharded
  archive and every reader keeps answering in original ids.
* ``python -m repro decompress IN.offs OUT.paths`` — restore the text file.
* ``python -m repro stats IN.offs`` — archive health without decompression.
* ``python -m repro retrieve IN.offs --id 42`` — fetch single paths;
  ``--slice X Y`` fetches ``path[X:Y]`` of each id without materializing
  the rest (arithmetic over the expansion cache).
* ``python -m repro query IN.offs --contains V`` / ``--between S D`` /
  ``--subpath V...`` / ``--via SRC W... DST`` — the paper's Case 1 / Case 2
  queries plus subpath and waypoint search.

Every archive-reading command sniffs the file magic: v1 blobs (``RPCS``)
are parsed in full, v2 files (``RPC2``) open as a
:class:`~repro.core.mapped.MappedPathStore` — header-only open, per-path
mmap seeks — so ``retrieve``/``query`` against a v2 archive touch only the
paths they return.  Shard manifests (``RPSM``) open as a
:class:`~repro.core.sharded.ShardedPathStore`, whose queries fan out over
the shards and return exactly what the monolithic archive would.
* ``python -m repro serve --store X.rpc2 --workers N --port P`` — long-lived
  JSON-over-HTTP query server (pre-forked workers over one mapped v2
  store or sharded manifest; see docs/serving.md).
* ``python -m repro verify IN.offs`` — integrity + sampled round-trip.
* ``python -m repro generate NAME OUT.paths`` — synthetic workloads.
* ``python -m repro tune IN.paths`` — Exp-1-style (i, k) selection;
  ``--ablation-report`` switches to the guarded ablation-guided mode.
* ``python -m repro compare IN.paths`` — Fig. 5-style codec comparison.

``compress``, ``decompress`` and ``compare`` accept ``--metrics OUT.json``:
the run executes under :mod:`repro.obs` instrumentation and its snapshot —
span tree (builder iterations, ingest phases), counters (matcher probes,
symbols in/out) and gauges (store byte totals) — is written as JSON.
Without the flag instrumentation stays inactive and costs nothing.

Every command prints plain text suitable for shell pipelines; errors exit
non-zero with a one-line message on stderr.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from contextlib import nullcontext
from typing import List, Optional

from repro.analysis.stats import format_table
from repro.core.config import MATCHER_BACKENDS, OFFSConfig
from repro.core.offs import OFFSCodec
from repro.core.serialize import dumps_store
from repro.core.store import CompressedPathStore
from repro.paths.io import load_text, save_text
from repro.paths.reorder import ORDER_STRATEGIES
from repro.paths.dataset import PathDataset
from repro.queries.analytics import compression_summary, hot_subpaths
from repro.queries.retrieval import PathQueryEngine


def _add_metrics_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--metrics", metavar="OUT.json", default=None,
                        help="run instrumented and write the obs snapshot "
                             "(spans + counters + gauges) to this JSON file")


def _metrics_scope(args: argparse.Namespace):
    """An instrumentation scope honouring ``--metrics`` (no-op without it)."""
    if getattr(args, "metrics", None) is None:
        return nullcontext(None)
    from repro.obs import instrumented

    return instrumented()


def _write_metrics(args: argparse.Namespace, obs) -> None:
    if obs is None:
        return
    from repro.obs import write_json

    write_json(obs, args.metrics)
    print(f"metrics -> {args.metrics}", file=sys.stderr)


def _add_offs_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--iterations", type=int, default=4,
                        help="merge/expansion iterations (paper default: 4)")
    parser.add_argument("--sample-exponent", type=int, default=2,
                        help="train on 1 path in 2^k (paper default k=7 at full scale)")
    parser.add_argument("--delta", type=int, default=8,
                        help="maximum supernode length (paper default: 8)")
    parser.add_argument("--beta", type=float, default=500.0,
                        help="candidate capacity divisor lambda = nodes/beta")
    parser.add_argument("--topdown-rounds", type=int, default=0,
                        help="hybrid top-down refinement rounds (0 = off)")
    parser.add_argument("--backend", choices=MATCHER_BACKENDS, default="hash",
                        help="longest-match backend; output is identical, "
                             "only probe cost differs ('rolling' batches "
                             "whole corpora through vectorized kernels)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OFFS path compression (ICDE 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compress", help="compress a text path file into an archive")
    p.add_argument("input", help="text file, one space-separated path per line")
    p.add_argument("output", help="archive file to write")
    p.add_argument("--format", choices=("v1", "v2"), default="v1", dest="fmt",
                   help="archive layout: v1 in-memory blob (default) or v2 "
                        "mmap-friendly single file (O(1)-seek retrievals)")
    p.add_argument("--shards", type=int, default=0, metavar="N",
                   help="write a sharded store: RPSM manifest + N v2 shard "
                        "files compressed in parallel (0 = monolithic)")
    p.add_argument("--processes", type=int, default=1, metavar="M",
                   help="worker processes for the sharded build (with --shards)")
    p.add_argument("--partition", choices=("range", "hash"), default="range",
                   help="shard placement: contiguous id ranges (default) or "
                        "modulo interleaving (with --shards)")
    p.add_argument("--reorder", choices=ORDER_STRATEGIES, default="identity",
                   help="compression-aware vertex reordering; non-identity "
                        "orders persist in the archive (v2/sharded only) and "
                        "queries still speak original ids (see docs/tuning.md)")
    p.add_argument("--auto", action="store_true",
                   help="autotune (i, k) on a pilot sample of the input and "
                        "compress with the pick (explicit knob flags become "
                        "the tuning base)")
    p.add_argument("--ablation-report", metavar="JSON", default=None,
                   help="with --auto: a BENCH_ablation.json report; prunes "
                        "the search to components that measured as important "
                        "and applies their best values (guard-verified)")
    p.add_argument("--auto-pilot", type=int, default=2000, metavar="N",
                   help="paths measured per tuning grid point (with --auto)")
    _add_offs_options(p)
    _add_metrics_option(p)

    p = sub.add_parser("decompress", help="restore a text path file from an archive")
    p.add_argument("input", help="archive file")
    p.add_argument("output", help="text file to write")
    _add_metrics_option(p)

    p = sub.add_parser("stats", help="archive statistics (no decompression)")
    p.add_argument("input", help="archive file")
    p.add_argument("--hot", type=int, default=5,
                   help="show the N most valuable table entries")

    p = sub.add_parser("retrieve", help="fetch individual paths by id")
    p.add_argument("input", help="archive file")
    p.add_argument("--id", type=int, action="append", required=True,
                   dest="ids", help="path id (repeatable)")
    p.add_argument("--slice", type=int, nargs=2, metavar=("X", "Y"),
                   dest="window",
                   help="print path[X:Y] of each id instead of the full "
                        "path (no full-path materialization)")

    p = sub.add_parser("query", help="Case 1/2 retrieval queries")
    p.add_argument("input", help="archive file")
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--contains", type=int, metavar="VERTEX",
                       help="Case 1: all paths through VERTEX")
    group.add_argument("--between", type=int, nargs=2, metavar=("SRC", "DST"),
                       help="Case 2: all paths from SRC to DST")
    group.add_argument("--subpath", type=int, nargs="+", metavar="V",
                       help="paths containing this exact vertex sequence")
    group.add_argument("--via", type=int, nargs="+", metavar="V",
                       help="SRC [WAYPOINT...] DST: paths from SRC to DST "
                            "through the waypoints in order")

    p = sub.add_parser("serve", help="serve a v2 archive over HTTP (JSON API)")
    p.add_argument("--store", required=True, metavar="X.rpc2",
                   help="v2 (RPC2) store file or sharded (RPSM) manifest to "
                        "serve, validated at startup")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8080,
                   help="TCP port; 0 picks an ephemeral port (default 8080)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes sharing one listening socket")
    p.add_argument("--metrics-dir", default=None, metavar="DIR",
                   help="each worker writes its obs snapshot here at shutdown")

    p = sub.add_parser("generate", help="write a synthetic workload to a text file")
    p.add_argument("workload", help="alibaba | rome | porto | sanfrancisco | "
                                    "web | collision | noise")
    p.add_argument("output", help="text file to write")
    p.add_argument("--paths", type=int, default=1000, help="number of paths")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("tune", help="pick (i, k) for a workload (Exp-1 style)")
    p.add_argument("input", help="text file, one space-separated path per line")
    p.add_argument("--pilot", type=int, default=2000,
                   help="paths measured per grid point")
    p.add_argument("--ablation-report", metavar="JSON", default=None,
                   help="BENCH_ablation.json report; prunes the sweep to "
                        "important components and emits a guard-verified "
                        "recommended config")

    p = sub.add_parser("verify", help="validate an archive's integrity")
    p.add_argument("input", help="archive file")
    p.add_argument("--sample", type=int, default=256,
                   help="paths to round-trip check")

    p = sub.add_parser("compare", help="compare codecs on a path file (Fig 5 style)")
    p.add_argument("input", help="text file, one space-separated path per line")
    p.add_argument("--no-repair", action="store_true",
                   help="skip the (slow) Re-Pair comparator")
    p.add_argument("--sample-exponent", type=int, default=2,
                   help="construction sampling for the DICT codecs")
    _add_metrics_option(p)
    return parser


def _load_store(path: str):
    """Open an archive by magic sniff: v1 blob, v2 mmap, or shard manifest."""
    from repro.core.sharded import open_store

    return open_store(path)


def _load_ablation_report(path: Optional[str]):
    if path is None:
        return None
    from repro.bench.ablation import load_report

    return load_report(path)


def _cmd_compress(args: argparse.Namespace) -> int:
    dataset = load_text(args.input, name=args.input)
    config = OFFSConfig(
        iterations=args.iterations,
        sample_exponent=args.sample_exponent,
        delta=args.delta,
        alpha=min(5, args.delta - 1),
        beta=args.beta,
        topdown_rounds=args.topdown_rounds,
        matcher=args.backend,
        reorder=args.reorder,
    )
    if args.reorder != "identity" and args.fmt == "v1" and args.shards == 0:
        print("error: --reorder requires --format v2 or --shards "
              "(the v1 blob cannot persist an order table)", file=sys.stderr)
        return 1
    if args.ablation_report and not args.auto:
        print("error: --ablation-report requires --auto", file=sys.stderr)
        return 1
    if args.auto:
        from repro.core.autotune import autotune

        result = autotune(
            dataset,
            base=config,
            pilot_paths=args.auto_pilot,
            ablation_report=_load_ablation_report(args.ablation_report),
        )
        config = result.best_config(base=config)
        if config.reorder != "identity" and args.fmt == "v1" and args.shards == 0:
            # An autotuned pick (unlike an explicit flag) degrades gracefully:
            # the v1 blob cannot persist an order table, so drop the order.
            print(f"note: dropping autotuned reorder={config.reorder} "
                  f"(v1 format cannot persist an order table)", file=sys.stderr)
            config = dataclasses.replace(config, reorder="identity")
        note = ""
        if result.used_ablation:
            note = " (ablation-guided"
            note += ", guard fell back to default)" if result.fallback_to_default else ")"
        print(f"autotuned: i={config.iterations} k={config.sample_exponent} "
              f"matcher={config.matcher} reorder={config.reorder}{note}",
              file=sys.stderr)
    corpus = dataset.to_flat()
    with _metrics_scope(args) as obs:
        codec = OFFSCodec(config).fit(corpus)
        if args.shards > 0:
            from repro.core.sharded import ShardedPathStore, build_sharded_store

            build_sharded_store(
                corpus,
                codec.table,
                args.output,
                shards=args.shards,
                processes=args.processes,
                partition=args.partition,
                backend=args.backend,
                order=codec.order,
            )
            sharded = ShardedPathStore.open(args.output)
            print(f"{len(sharded):,} paths -> {args.output} "
                  f"({sharded.mapped_bytes:,} bytes in {args.shards} "
                  f"{args.partition} shard(s), "
                  f"CR={sharded.compression_ratio():.2f}, "
                  f"table={len(codec.table)} entries)")
            sharded.close()
            _write_metrics(args, obs)
            return 0
        store = CompressedPathStore.from_corpus(
            corpus, codec.table, matcher_backend=args.backend, order=codec.order
        )
        ratio = store.compression_ratio()
        if args.fmt == "v2":
            from repro.core.serialize import dumps_store_v2

            blob = dumps_store_v2(store)
        else:
            blob = dumps_store(store)
    with open(args.output, "wb") as fh:
        fh.write(blob)
    print(f"{len(store):,} paths -> {args.output} "
          f"({len(blob):,} bytes, {args.fmt}, CR={ratio:.2f}, "
          f"table={len(codec.table)} entries)")
    _write_metrics(args, obs)
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    store = _load_store(args.input)
    with _metrics_scope(args) as obs:
        dataset = PathDataset(store.retrieve_all(), name=args.input)
    save_text(dataset, args.output)
    print(f"{len(dataset):,} paths restored to {args.output}")
    _write_metrics(args, obs)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    store = _load_store(args.input)
    summary = compression_summary(store)
    rows = [("metric", "value")] + [
        (key, round(value, 3)) for key, value in summary.items()
    ]
    print(format_table(rows, title=f"archive {args.input}"))
    if args.hot > 0:
        hot_rows = [("subpath", "uses", "vertices saved")]
        for subpath, uses, saved in hot_subpaths(store, top=args.hot):
            hot_rows.append((str(list(subpath)), uses, saved))
        print()
        print(format_table(hot_rows, title="hottest table entries"))
    return 0


def _cmd_retrieve(args: argparse.Namespace) -> int:
    store = _load_store(args.input)
    for path_id in args.ids:
        if args.window is not None:
            path = store.retrieve_slice(path_id, args.window[0], args.window[1])
        else:
            path = store.retrieve(path_id)
        print(" ".join(str(v) for v in path))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    store = _load_store(args.input)
    from repro.core.sharded import ShardedPathStore

    if isinstance(store, ShardedPathStore):
        # Native fan-out: per-shard indexes (correct even when a streaming
        # refit left shards with different tables), global-id answers.
        if args.contains is not None:
            paths = store.affected_paths(args.contains)
        elif args.between is not None:
            paths = store.paths_between(args.between[0], args.between[1])
        elif args.via is not None:
            from repro.queries.pattern import PathPattern, PatternSearcher

            if len(args.via) < 2:
                print("error: --via needs at least SRC and DST", file=sys.stderr)
                return 1
            searcher = PatternSearcher(store, store.vertex_index())
            paths = searcher.search(
                PathPattern.via(args.via[0], args.via[1:-1], args.via[-1])
            )
        else:
            paths = store.subpath_search(args.subpath)
        for path in paths:
            print(" ".join(str(v) for v in path))
        print(f"# {len(paths)} path(s)", file=sys.stderr)
        return 0
    engine = PathQueryEngine(store)
    if args.contains is not None:
        paths = engine.affected_paths(args.contains)
    elif args.between is not None:
        src, dst = args.between
        paths = engine.paths_between(src, dst)
    elif args.via is not None:
        from repro.queries.pattern import PathPattern, PatternSearcher

        if len(args.via) < 2:
            print("error: --via needs at least SRC and DST", file=sys.stderr)
            return 1
        searcher = PatternSearcher(store, engine.index)
        paths = searcher.search(
            PathPattern.via(args.via[0], args.via[1:-1], args.via[-1])
        )
    else:
        from repro.queries.subpath_search import SubpathSearcher

        paths = SubpathSearcher(store, engine.index).search(args.subpath)
    for path in paths:
        print(" ".join(str(v) for v in path))
    print(f"# {len(paths)} path(s)", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import PathServer, ServeConfig

    config = ServeConfig(
        args.store,
        host=args.host,
        port=args.port,
        workers=args.workers,
        metrics_dir=args.metrics_dir,
    )
    server = PathServer(config)
    server.start()   # a truncated/corrupt store fails here with one clean line
    print(f"serving {server.path_count:,} paths from {args.store} "
          f"on {server.address} with {config.workers} worker(s)", flush=True)
    try:
        server.join()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.stop()
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.workloads.registry import _FACTORIES

    if args.workload not in _FACTORIES:
        print(f"error: unknown workload {args.workload!r}; "
              f"known: {', '.join(sorted(_FACTORIES))}", file=sys.stderr)
        return 1
    dataset = _FACTORIES[args.workload](args.paths, seed=args.seed)
    save_text(dataset, args.output)
    stats = dataset.stats()
    print(f"{stats.path_number:,} paths (avg length {stats.avg_length:.1f}, "
          f"{stats.id_number:,} ids) -> {args.output}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.core.autotune import autotune

    dataset = load_text(args.input, name=args.input)
    result = autotune(
        dataset,
        pilot_paths=args.pilot,
        ablation_report=_load_ablation_report(args.ablation_report),
    )
    rows = [("i", "k", "CR", "CS (MB/s)")] + [p.as_row() for p in result.points]
    print(format_table(rows, title=f"tuning sweep ({result.pilot_paths} pilot paths)"))
    d, f = result.default_mode, result.fast_mode
    print(f"\ndefault mode: i={d.iterations} k={d.sample_exponent} "
          f"(CR {d.compression_ratio:.2f}, CS {d.compression_speed_mbps:.2f} MB/s)")
    print(f"fast mode:    i={f.iterations} k={f.sample_exponent} "
          f"(CR {f.compression_ratio:.2f}, CS {f.compression_speed_mbps:.2f} MB/s)")
    if result.used_ablation:
        rec = result.best_config()
        print(f"\nrecommended (ablation-guided): i={rec.iterations} "
              f"k={rec.sample_exponent} matcher={rec.matcher} "
              f"capacity={rec.capacity} topdown_rounds={rec.topdown_rounds}")
        if result.pruned_components:
            print("pruned components: " + ", ".join(result.pruned_components))
        if result.fallback_to_default:
            print("guard: recommendation lost CR to the default -> kept default")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.validate import validate_store

    store = _load_store(args.input)
    report = validate_store(store, sample=args.sample)
    print(report.summary())
    for error in report.errors:
        print(f"  {error}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.compare import compare_codecs, comparison_rows, default_roster

    dataset = load_text(args.input, name=args.input)
    roster = default_roster(
        sample_exponent=args.sample_exponent,
        include_repair=not args.no_repair,
    )
    with _metrics_scope(args) as obs:
        results = compare_codecs(dataset, roster)
    print(format_table(comparison_rows(results), title=f"codecs on {args.input}"))
    _write_metrics(args, obs)
    return 0


_COMMANDS = {
    "compress": _cmd_compress,
    "decompress": _cmd_decompress,
    "stats": _cmd_stats,
    "retrieve": _cmd_retrieve,
    "query": _cmd_query,
    "serve": _cmd_serve,
    "generate": _cmd_generate,
    "tune": _cmd_tune,
    "verify": _cmd_verify,
    "compare": _cmd_compare,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
