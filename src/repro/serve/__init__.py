"""repro.serve — the path-query serving layer over mapped v2 stores.

The paper's central claim is that compressed paths stay *queryable*;
this package is that claim as a long-lived service.  A
:class:`PathServer` pre-forks N worker processes over one read-only
:class:`~repro.core.mapped.MappedPathStore` file (the OS shares the
mapped pages between workers) and exposes the full query surface as
JSON-over-HTTP, pure stdlib:

========================  =======  =========================================
endpoint                  method   answers
========================  =======  =========================================
``/v1/retrieve``          GET      one path, fully decompressed
``/v1/retrieve_slice``    GET      ``path[start:stop]`` without the rest
``/v1/retrieve_many``     GET/POST batch retrieval via the flat decode kernel
``/v1/expanded_length``   GET      decompressed length, nothing expanded
``/v1/paths_between``     GET      Case 2: paths from source to destination
``/v1/subpath_search``    GET/POST exact contiguous-subpath containment
``/healthz`` ``/v1/stats`` ``/metrics``  GET   liveness / archive shape / obs
========================  =======  =========================================

Quick start::

    from repro.serve import PathServer, ServeConfig

    with PathServer(ServeConfig("archive.rpc2", workers=4)) as server:
        print(server.address)          # e.g. http://127.0.0.1:40123
        server.join()                  # serve until the workers exit

or from the shell: ``python -m repro serve --store archive.rpc2
--workers 4 --port 8080``.  Endpoints, JSON shapes, the error schema and
the worker model are documented in docs/serving.md.
"""

from repro.serve.app import StoreApp
from repro.serve.protocol import (
    MethodNotAllowedError,
    UnknownEndpointError,
    decode_body,
    encode_body,
    error_body,
    status_for,
)
from repro.serve.server import PathServer, ServeConfig, check_store

__all__ = [
    "PathServer",
    "ServeConfig",
    "StoreApp",
    "check_store",
    "status_for",
    "error_body",
    "encode_body",
    "decode_body",
    "UnknownEndpointError",
    "MethodNotAllowedError",
]
