"""The wire protocol of the serving layer: JSON shapes and error mapping.

Every response body is a JSON object.  Successes carry the endpoint's
payload directly (``{"id": 3, "path": [...]}``); failures carry a single
``error`` object::

    {"error": {"type": "PathIdError", "status": 404,
               "message": "path id 999 not in store of 18 paths"}}

``type`` is the :mod:`repro.core.errors` class name, so a client can
dispatch on the same taxonomy the library raises.  When a corruption
message carries a byte offset (the :class:`TruncatedDataError` contract),
the offset is surfaced as a structured ``byte_offset`` field as well.

The status mapping follows the error hierarchy, most specific first:

==============================  ======  =====================================
error                           status  meaning over HTTP
==============================  ======  =====================================
``PathIdError``                 404     unknown path id
``InvalidInputError``           400     malformed parameter or body
``BoundsError``                 400     out-of-range positional argument
``TruncatedDataError``          500     the *store* is damaged, not the request
``CorruptDataError``            500     checksum / structural corruption
any other ``ReproError``        500     library failure
==============================  ======  =====================================

(``TruncatedDataError`` inherits both ``CorruptDataError`` and
``BoundsError``; it is checked before the 400 branch because a truncated
archive is a server-side fault whatever access pattern exposed it.)
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.core.errors import (
    BoundsError,
    CorruptDataError,
    InvalidInputError,
    PathIdError,
    ReproError,
    TruncatedDataError,
)

#: HTTP status codes, named so handler code reads as intent.
HTTP_OK = 200
HTTP_BAD_REQUEST = 400
HTTP_NOT_FOUND = 404
HTTP_METHOD_NOT_ALLOWED = 405
HTTP_INTERNAL_ERROR = 500

_BYTE_OFFSET = re.compile(r"byte offset (\d+)")


class UnknownEndpointError(PathIdError):
    """404 — the request path is outside the route table."""

    def __init__(self, route: str) -> None:
        super().__init__(f"unknown endpoint {route!r}")


class MethodNotAllowedError(InvalidInputError):
    """405 — the route exists but not for this HTTP method."""

    def __init__(self, method: str, route: str) -> None:
        super().__init__(f"method {method} not allowed for {route!r}")


def status_for(exc: BaseException) -> int:
    """The HTTP status code an exception maps to (see the module table)."""
    if isinstance(exc, PathIdError):
        return HTTP_NOT_FOUND
    if isinstance(exc, TruncatedDataError):
        return HTTP_INTERNAL_ERROR
    if isinstance(exc, (InvalidInputError, BoundsError)):
        return HTTP_BAD_REQUEST
    if isinstance(exc, CorruptDataError):
        return HTTP_INTERNAL_ERROR
    if isinstance(exc, ReproError):
        return HTTP_INTERNAL_ERROR
    if isinstance(exc, (ValueError, KeyError)):
        return HTTP_BAD_REQUEST
    return HTTP_INTERNAL_ERROR


def error_body(exc: BaseException, status: Optional[int] = None) -> Dict[str, Any]:
    """The structured ``{"error": {...}}`` body for an exception.

    ``KeyError`` reprs its argument (so ``str(exc)`` is quoted); every other
    message passes through verbatim.  A ``byte offset N`` phrase in the
    message (the truncation-error contract) becomes a ``byte_offset`` field.
    """
    message = str(exc)
    if isinstance(exc, KeyError) and exc.args:
        message = str(exc.args[0])
    error: Dict[str, Any] = {
        "type": type(exc).__name__,
        "status": status if status is not None else status_for(exc),
        "message": message,
    }
    match = _BYTE_OFFSET.search(message)
    if match is not None:
        error["byte_offset"] = int(match.group(1))
    return {"error": error}


def encode_body(payload: Mapping[str, Any]) -> bytes:
    """Serialize a response payload (compact separators, sorted keys)."""
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")


def decode_body(raw: bytes) -> Dict[str, Any]:
    """Parse a JSON request body into a dict.

    :raises InvalidInputError: for undecodable bytes, malformed JSON, or a
        body whose top level is not an object — all client faults (400).
    """
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise InvalidInputError(f"request body is not valid UTF-8: {exc}") from exc
    try:
        payload = json.loads(text) if text.strip() else {}
    except json.JSONDecodeError as exc:
        raise InvalidInputError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise InvalidInputError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


# -- parameter coercion -----------------------------------------------------------


def require_int(params: Mapping[str, Any], name: str) -> int:
    """The integer parameter *name*, or :class:`InvalidInputError` (400)."""
    if name not in params:
        raise InvalidInputError(f"missing required parameter {name!r}")
    return coerce_int(params[name], name)


def optional_int(params: Mapping[str, Any], name: str) -> Optional[int]:
    """The integer parameter *name* when present and non-null, else None."""
    value = params.get(name)
    if value is None or value == "":
        return None
    return coerce_int(value, name)


def coerce_int(value: Any, name: str) -> int:
    """*value* as an int; booleans and non-numeric strings are rejected."""
    if isinstance(value, bool):
        raise InvalidInputError(f"parameter {name!r} must be an integer, got bool")
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        try:
            return int(value, 10)
        except ValueError:
            pass
    raise InvalidInputError(f"parameter {name!r} must be an integer, got {value!r}")


def int_list(value: Any, name: str) -> Tuple[int, ...]:
    """*value* as a tuple of ints — accepts a JSON array or a "1,2,3" string."""
    if isinstance(value, str):
        parts: Sequence[Any] = [p for p in value.split(",") if p.strip() != ""]
    elif isinstance(value, (list, tuple)):
        parts = value
    else:
        raise InvalidInputError(
            f"parameter {name!r} must be a list of integers, got {value!r}"
        )
    return tuple(coerce_int(part, name) for part in parts)
