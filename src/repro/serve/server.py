"""The HTTP serving layer: pre-forked workers over one mapped store file.

The worker model is the classic pre-fork accept-sharing design (the shape
nginx and gunicorn use, here in pure stdlib):

* the **parent** validates the store file up front (header, table CRC — a
  truncated archive fails *here*, with a clean
  :class:`~repro.core.errors.TruncatedDataError`, not mid-request), binds
  one listening socket, then forks N workers;
* each **worker** inherits the listening socket, opens its *own* store
  over the file — a :class:`~repro.core.mapped.MappedPathStore` for a v2
  archive, a :class:`~repro.core.sharded.ShardedPathStore` for an ``RPSM``
  manifest (O(1) open either way — the mmap'd pages are shared read-only
  between all workers by the OS),
  activates its own :mod:`repro.obs` registry (counters only, same policy
  as the :mod:`repro.core.parallel` pool workers) and runs a threading
  HTTP server whose ``accept`` competes on the shared socket — the kernel
  load-balances connections across workers;
* on ``stop()`` the parent signals SIGTERM; each worker drains in-flight
  requests, writes its metrics snapshot to ``metrics_dir`` (when given)
  and exits.  The per-worker snapshots are how the differential tests
  assert request-count conservation across the fleet.

Because the parent binds (and starts listening on) the socket *before*
forking, a client may connect the instant :meth:`PathServer.start`
returns: connections queue in the listen backlog until a worker accepts,
so there is no readiness race to poll for.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.core.errors import InvalidInputError, ReproError, StateError
from repro.core.mapped import MappedPathStore
from repro.core.sharded import ShardedPathStore, open_store
from repro.serve.app import StoreApp
from repro.serve.protocol import (
    HTTP_METHOD_NOT_ALLOWED,
    HTTP_NOT_FOUND,
    HTTP_OK,
    MethodNotAllowedError,
    UnknownEndpointError,
    decode_body,
    encode_body,
    error_body,
    int_list,
    optional_int,
    require_int,
    status_for,
)

#: Endpoints reachable by GET; values are (endpoint key, needs body).
_GET_ROUTES = frozenset((
    "/healthz", "/metrics", "/v1/stats", "/v1/retrieve", "/v1/retrieve_slice",
    "/v1/retrieve_many", "/v1/expanded_length", "/v1/paths_between",
    "/v1/subpath_search",
))
_POST_ROUTES = frozenset(("/v1/retrieve_many", "/v1/subpath_search"))


class ServeConfig:
    """Configuration for :class:`PathServer`.

    :param store_path: a v2 (``RPC2``) store file.
    :param host: bind address (default loopback).
    :param port: TCP port; 0 picks an ephemeral port, published on
        :attr:`PathServer.port` after :meth:`~PathServer.start`.
    :param workers: worker-process count (>= 1).
    :param metrics_dir: when set, each worker writes
        ``serve-worker-<index>.json`` (its obs snapshot) here at shutdown.
    :param backlog: listen backlog shared by the worker fleet.
    """

    def __init__(
        self,
        store_path: str,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        metrics_dir: Optional[str] = None,
        backlog: int = 128,
    ) -> None:
        if workers < 1:
            raise InvalidInputError(f"workers must be >= 1, got {workers}")
        if not 0 <= port <= 65535:
            raise InvalidInputError(f"port must be in [0, 65535], got {port}")
        self.store_path = store_path
        self.host = host
        self.port = port
        self.workers = workers
        self.metrics_dir = metrics_dir
        self.backlog = backlog


def check_store(store_path: str) -> int:
    """Validate the store file a server is about to serve; returns path count.

    Opens the file, parses the header (magic, CRC) and force-decodes the
    table (metadata CRC) so a truncated or corrupt archive fails at
    *startup* with a typed, offset-carrying error instead of surfacing as a
    500 on some unlucky request.  A sharded manifest (``RPSM``) validates
    *every* shard the same way — headers, table CRCs and the manifest's
    table fingerprints.
    """
    store = open_store(store_path)
    if isinstance(store, ShardedPathStore):
        with store:
            return store.check()
    if not isinstance(store, MappedPathStore):
        raise InvalidInputError(
            f"{store_path!r} is a v1 in-memory blob; repro.serve requires a "
            "v2 (RPC2) store file or a sharded (RPSM) manifest"
        )
    with store:
        _ = store.table
        return len(store)


class _RequestHandler(BaseHTTPRequestHandler):
    """Parses requests, dispatches to the worker's :class:`StoreApp`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro.serve/1.0"

    # -- plumbing ------------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging would swamp test output; metrics cover it

    @property
    def app(self) -> StoreApp:
        return self.server.app  # type: ignore[attr-defined]

    def _reply(self, status: int, payload: Dict[str, Any]) -> None:
        body = encode_body(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- request entry points ------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("POST")

    def _handle(self, method: str) -> None:
        started = time.perf_counter()
        split = urlsplit(self.path)
        route = split.path.rstrip("/") or "/"
        endpoint: Optional[str] = None
        batch = 0
        try:
            if route not in _GET_ROUTES and route not in _POST_ROUTES:
                raise UnknownEndpointError(route)
            if method == "POST" and route not in _POST_ROUTES:
                raise MethodNotAllowedError(method, route)
            params = self._params(method, split.query)
            endpoint, status, payload = self._dispatch(route, params)
            if endpoint == "retrieve_many":
                batch = payload.get("count", 0)
        except UnknownEndpointError as exc:
            status, payload = HTTP_NOT_FOUND, error_body(exc, HTTP_NOT_FOUND)
        except MethodNotAllowedError as exc:
            status = HTTP_METHOD_NOT_ALLOWED
            payload = error_body(exc, HTTP_METHOD_NOT_ALLOWED)
        except ReproError as exc:
            status = status_for(exc)
            payload = error_body(exc, status)
        except Exception as exc:  # noqa: BLE001 - a handler bug must surface
            # as a structured 500, never kill the worker or drop the
            # connection (repro.serve sits outside repro.core's R005 scope).
            status = status_for(exc)
            payload = error_body(exc, status)
        # Metrics are recorded before the response bytes go out: once the
        # client has read N responses, all N requests are counted.
        elapsed = time.perf_counter() - started
        self.app.record_request(
            endpoint, elapsed, batch=batch, failed=endpoint is None
        )
        self._reply(status, payload)

    # -- parameter handling --------------------------------------------------------

    def _params(self, method: str, query: str) -> Dict[str, Any]:
        """Merged parameters: query string, plus JSON body for POSTs.

        Query values arrive as strings (last occurrence wins); body values
        keep their JSON types.  Body keys shadow query keys.
        """
        params: Dict[str, Any] = {
            key: values[-1] for key, values in parse_qs(query).items()
        }
        if method == "POST":
            length_header = self.headers.get("Content-Length")
            try:
                length = int(length_header) if length_header else 0
            except ValueError:
                raise InvalidInputError(
                    f"Content-Length header is not an integer: {length_header!r}"
                ) from None
            params.update(decode_body(self.rfile.read(length) if length else b""))
        return params

    # -- routing -------------------------------------------------------------------

    def _dispatch(
        self, route: str, params: Dict[str, Any]
    ) -> Tuple[Optional[str], int, Dict[str, Any]]:
        """(endpoint key or None for operational routes, status, payload)."""
        app = self.app
        if route == "/healthz":
            return "healthz", HTTP_OK, app.healthz()
        if route == "/v1/stats":
            return "stats", HTTP_OK, app.stats()
        if route == "/metrics":
            return "metrics", HTTP_OK, app.metrics()
        if route == "/v1/retrieve":
            return "retrieve", HTTP_OK, app.retrieve(require_int(params, "id"))
        if route == "/v1/retrieve_slice":
            return "retrieve_slice", HTTP_OK, app.retrieve_slice(
                require_int(params, "id"),
                optional_int(params, "start"),
                optional_int(params, "stop"),
            )
        if route == "/v1/retrieve_many":
            if "ids" not in params:
                raise InvalidInputError("missing required parameter 'ids'")
            ids = int_list(params["ids"], "ids")
            return "retrieve_many", HTTP_OK, app.retrieve_many(ids)
        if route == "/v1/expanded_length":
            return "expanded_length", HTTP_OK, app.expanded_length(
                require_int(params, "id")
            )
        if route == "/v1/paths_between":
            return "paths_between", HTTP_OK, app.paths_between(
                require_int(params, "source"), require_int(params, "destination")
            )
        # /v1/subpath_search — the route sets are closed, so this is the rest.
        if "query" not in params:
            raise InvalidInputError("missing required parameter 'query'")
        vertices = int_list(params["query"], "query")
        return "subpath_search", HTTP_OK, app.subpath_search(vertices)


class _WorkerHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server over an *inherited, already-listening* socket."""

    daemon_threads = False   # server_close() drains in-flight handler threads
    block_on_close = True

    def __init__(self, shared_socket: socket.socket, app: StoreApp) -> None:
        host, port = shared_socket.getsockname()[:2]
        super().__init__((host, port), _RequestHandler, bind_and_activate=False)
        self.socket.close()           # replace the fresh unbound socket
        self.socket = shared_socket
        self.server_name = host
        self.server_port = port
        self.app = app


def _worker_main(
    shared_socket: socket.socket,
    store_path: str,
    worker_index: int,
    metrics_path: Optional[str],
) -> None:
    """Worker-process entry point (runs on the child side of the fork)."""
    from repro.obs.runtime import Instrumentation, activate
    from repro.obs.spans import SpanTracer

    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent coordinates Ctrl-C

    # Own registry, counters only — identical policy to the parallel-pool
    # workers: a fork-inherited parent scope would silently drop counts.
    activate(Instrumentation(tracer=SpanTracer(enabled=False)))
    store = open_store(store_path)
    app = StoreApp(store, worker_index=worker_index)
    httpd = _WorkerHTTPServer(shared_socket, app)
    loop = threading.Thread(target=httpd.serve_forever, daemon=True)
    loop.start()
    while not stop.is_set():   # short waits: robust to signal/wait races
        stop.wait(0.2)
    httpd.shutdown()          # stop accepting
    loop.join()
    httpd.server_close()      # drain in-flight handler threads
    if metrics_path is not None:
        snapshot = app.snapshot()
        tmp = f"{metrics_path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
        os.replace(tmp, metrics_path)
    store.close()


class PathServer:
    """A pre-forked HTTP path-query server over one v2 store file.

    Lifecycle::

        server = PathServer(ServeConfig("archive.rpc2", workers=4))
        server.start()                 # validates, binds, forks
        print(server.port)             # actual port (ephemeral resolved)
        ...
        server.stop()                  # graceful: drains, dumps metrics

    Also a context manager (``with PathServer(cfg) as server:``).
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.path_count: Optional[int] = None
        self._socket: Optional[socket.socket] = None
        self._workers: List[multiprocessing.process.BaseProcess] = []

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> "PathServer":
        """Validate the store, bind the socket, fork the workers."""
        if self._socket is not None:
            raise StateError("server already started")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise StateError(
                "repro.serve needs the 'fork' start method (POSIX); "
                "not available on this platform"
            )
        # Fail fast on a bad archive — before any socket or child exists.
        self.path_count = check_store(self.config.store_path)
        if self.config.metrics_dir is not None:
            os.makedirs(self.config.metrics_dir, exist_ok=True)

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.config.host, self.config.port))
            listener.listen(self.config.backlog)
            context = multiprocessing.get_context("fork")
            for index in range(self.config.workers):
                # The shared listener *is* the pre-fork design: every
                # worker accepts on the same bound socket and the kernel
                # load-balances.  The store is reopened per worker, so the
                # listener is the only handle that deliberately crosses.
                worker = context.Process(  # lint: ignore[R007]
                    target=_worker_main,
                    args=(
                        listener,
                        self.config.store_path,
                        index,
                        self.metrics_file(index),
                    ),
                    name=f"repro-serve-worker-{index}",
                    daemon=True,
                )
                worker.start()
                self._workers.append(worker)
        except BaseException:
            listener.close()
            self._terminate_workers(timeout=1.0)
            raise
        self._socket = listener
        return self

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        """The bound port (resolves port 0 to the kernel's pick)."""
        if self._socket is None:
            raise StateError("server not started")
        return self._socket.getsockname()[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def workers_alive(self) -> int:
        """How many worker processes are currently running."""
        return sum(1 for worker in self._workers if worker.is_alive())

    def metrics_file(self, worker_index: int) -> Optional[str]:
        """Where worker *worker_index* dumps its shutdown snapshot."""
        if self.config.metrics_dir is None:
            return None
        return os.path.join(
            self.config.metrics_dir, f"serve-worker-{worker_index}.json"
        )

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful shutdown: signal workers, drain, reap, close the socket."""
        self._terminate_workers(timeout)
        if self._socket is not None:
            self._socket.close()
            self._socket = None

    def _terminate_workers(self, timeout: float) -> None:
        for worker in self._workers:
            if worker.is_alive():
                worker.terminate()          # SIGTERM → graceful drain
        deadline = time.monotonic() + timeout
        for worker in self._workers:
            worker.join(max(0.0, deadline - time.monotonic()))
            if worker.is_alive():           # refused to drain: hard stop
                worker.kill()
                worker.join(1.0)
        self._workers = []

    def join(self) -> None:
        """Block until every worker exits (the CLI's serve loop)."""
        for worker in self._workers:
            worker.join()

    def __enter__(self) -> "PathServer":
        if self._socket is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "down" if self._socket is None else self.address
        return (
            f"PathServer(store={self.config.store_path!r}, "
            f"workers={self.config.workers}, {state})"
        )
