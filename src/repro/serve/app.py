"""The endpoint logic of the serving layer, independent of HTTP plumbing.

:class:`StoreApp` owns one read-only store — a
:class:`~repro.core.mapped.MappedPathStore` or a
:class:`~repro.core.sharded.ShardedPathStore` — and answers the six query
endpoints as plain dict payloads; the HTTP layer
(:mod:`repro.serve.server`) only parses requests, calls these methods and
maps raised :mod:`repro.core.errors` onto the JSON error schema of
:mod:`repro.serve.protocol`.  Keeping the app free of sockets makes the
endpoint semantics unit-testable without a running server, and the
integration tests hold every endpoint byte/value-identical to direct store
calls.

Thread safety: a worker process serves requests from a small thread pool
(one thread per connection), so the app guards its two pieces of shared
mutable state — the lazily built :class:`~repro.queries.index.VertexIndex`
and the metrics instruments (``Counter.inc`` is a read-modify-write) —
with one lock each.  The store itself is read-only and safe to share.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.obs import catalog
from repro.obs.runtime import get_active


class StoreApp:
    """Query endpoints over one mapped store, for one worker process.

    :param store: the read-only archive; re-opened process-locally so a
        fork-inherited instance never shares OS state with the parent.
    :param worker_index: this worker's position in the fleet (diagnostics).
    """

    def __init__(self, store, worker_index: int = 0) -> None:
        self.store = store.process_local()
        self.worker_index = worker_index
        self._engine = None
        self._searcher = None
        self._index_lock = threading.Lock()
        self._metrics_lock = threading.Lock()

    # -- lazily built query machinery ---------------------------------------------

    def _query_engines(self):
        """The (PathQueryEngine, SubpathSearcher) pair, built once.

        Both share one :class:`~repro.queries.index.VertexIndex`; the first
        ``paths_between`` / ``subpath_search`` request pays the build, every
        later one reuses it (the store is immutable, so no refresh is ever
        needed).  Not used for sharded stores, which carry their own
        fan-out query machinery (per-shard indexes with per-shard tables).
        """
        with self._index_lock:
            if self._engine is None:
                from repro.queries.retrieval import PathQueryEngine
                from repro.queries.subpath_search import SubpathSearcher

                engine = PathQueryEngine(self.store)
                self._engine = engine
                self._searcher = SubpathSearcher(self.store, engine.index)
            return self._engine, self._searcher

    # -- endpoints ----------------------------------------------------------------

    def retrieve(self, path_id: int) -> Dict[str, Any]:
        """``GET /v1/retrieve`` — one path, fully decompressed."""
        return {"id": path_id, "path": list(self.store.retrieve(path_id))}

    def retrieve_slice(
        self, path_id: int, start: Optional[int], stop: Optional[int]
    ) -> Dict[str, Any]:
        """``GET /v1/retrieve_slice`` — ``path[start:stop]``, Python slice
        semantics, nothing else materialized."""
        window = self.store.retrieve_slice(path_id, start, stop)
        return {"id": path_id, "start": start, "stop": stop, "path": list(window)}

    def retrieve_many(self, path_ids: Sequence[int]) -> Dict[str, Any]:
        """``POST /v1/retrieve_many`` — batch retrieval via the flat kernel."""
        ids = list(path_ids)
        paths = self.store.retrieve_batch(ids)
        return {
            "ids": ids,
            "paths": [list(p) for p in paths],
            "count": len(paths),
        }

    def expanded_length(self, path_id: int) -> Dict[str, Any]:
        """``GET /v1/expanded_length`` — decompressed length, no expansion."""
        return {"id": path_id, "length": self.store.expanded_length(path_id)}

    def paths_between(self, source: int, destination: int) -> Dict[str, Any]:
        """``GET /v1/paths_between`` — the paper's Case 2 terminal query.

        A sharded store answers natively (per-shard index fan-out, results
        value-identical to the monolithic engine); otherwise the lazily
        built :class:`~repro.queries.retrieval.PathQueryEngine` does.
        """
        if hasattr(self.store, "paths_between"):
            paths = self.store.paths_between(source, destination)
        else:
            engine, _ = self._query_engines()
            paths = engine.paths_between(source, destination)
        return {
            "source": source,
            "destination": destination,
            "paths": [list(p) for p in paths],
            "count": len(paths),
        }

    def subpath_search(self, query: Sequence[int]) -> Dict[str, Any]:
        """``POST /v1/subpath_search`` — exact contiguous-subpath search."""
        if hasattr(self.store, "subpath_search_ids"):
            ids = self.store.subpath_search_ids(tuple(query))
        else:
            _, searcher = self._query_engines()
            ids = searcher.search_ids(tuple(query))
        paths = self.store.retrieve_batch(ids) if ids else []
        return {
            "query": list(query),
            "ids": list(ids),
            "paths": [list(p) for p in paths],
            "count": len(ids),
        }

    # -- operational endpoints ----------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz`` — liveness plus which worker answered."""
        return {
            "status": "ok",
            "paths": len(self.store),
            "worker": {"index": self.worker_index, "pid": os.getpid()},
        }

    def stats(self) -> Dict[str, Any]:
        """``GET /v1/stats`` — cheap archive shape (never decompresses).

        For a sharded store the payload adds shard shape and reports the
        shard-0 table (all shards share it unless a streaming refit split
        the fingerprints, in which case the freshest tables differ and the
        payload says how many there are).
        """
        store = self.store
        order = getattr(store, "order", None)
        payload: Dict[str, Any] = {
            "name": store.name,
            "paths": len(store),
            "reorder": order.strategy if order is not None else "identity",
            "worker": {"index": self.worker_index, "pid": os.getpid()},
        }
        if hasattr(store, "manifest"):
            fingerprints = store.table_fingerprints
            reference = store.shard(0).table if store.shard_count else None
            payload.update({
                "shards": store.shard_count,
                "partition": store.manifest.partition,
                "distinct_tables": len(fingerprints),
                "table_entries": len(reference) if reference else 0,
                "table_base_id": reference.base_id if reference else 0,
                "mapped_bytes": store.mapped_bytes,
            })
        else:
            payload.update({
                "table_entries": len(store.table),
                "table_base_id": store.table.base_id,
                "mapped_bytes": len(store._buf),
            })
        return payload

    def metrics(self) -> Dict[str, Any]:
        """``GET /metrics`` — this worker's live obs snapshot (or ``{}``)."""
        obs = get_active()
        return {
            "worker": {"index": self.worker_index, "pid": os.getpid()},
            "metrics": obs.registry.as_dict() if obs is not None else {},
        }

    # -- per-endpoint observability -----------------------------------------------

    def record_request(
        self, endpoint: Optional[str], elapsed: float, batch: int = 0,
        failed: bool = False,
    ) -> None:
        """Fold one handled request into this worker's metrics.

        Called by the HTTP layer *before* the response bytes are written, so
        a client that has received N responses knows all N requests are
        already counted — the invariant the metric-conservation test leans
        on.  ``serve.requests`` counts every handled request (any endpoint,
        success or failure); the per-endpoint pairs count successful
        completions only.  All updates happen under one lock because the
        registry instruments are plain read-modify-write objects shared by
        the handler threads.
        """
        obs = get_active()
        if obs is None:
            return
        reg = obs.registry
        with self._metrics_lock:
            reg.inc(catalog.SERVE_REQUESTS)
            reg.observe(catalog.SERVE_REQUEST_SECONDS, elapsed)
            if failed:
                reg.inc(catalog.SERVE_ERRORS)
                return
            if endpoint == "retrieve":
                reg.inc(catalog.SERVE_RETRIEVE_REQUESTS)
                reg.observe(catalog.SERVE_RETRIEVE_SECONDS, elapsed)
            elif endpoint == "retrieve_slice":
                reg.inc(catalog.SERVE_RETRIEVE_SLICE_REQUESTS)
                reg.observe(catalog.SERVE_RETRIEVE_SLICE_SECONDS, elapsed)
            elif endpoint == "retrieve_many":
                reg.inc(catalog.SERVE_RETRIEVE_MANY_REQUESTS)
                reg.observe(catalog.SERVE_RETRIEVE_MANY_SECONDS, elapsed)
                reg.inc(catalog.SERVE_BATCHES)
                reg.counter(catalog.SERVE_BATCH_PATHS).inc(batch)
            elif endpoint == "expanded_length":
                reg.inc(catalog.SERVE_EXPANDED_LENGTH_REQUESTS)
                reg.observe(catalog.SERVE_EXPANDED_LENGTH_SECONDS, elapsed)
            elif endpoint == "paths_between":
                reg.inc(catalog.SERVE_PATHS_BETWEEN_REQUESTS)
                reg.observe(catalog.SERVE_PATHS_BETWEEN_SECONDS, elapsed)
            elif endpoint == "subpath_search":
                reg.inc(catalog.SERVE_SUBPATH_SEARCH_REQUESTS)
                reg.observe(catalog.SERVE_SUBPATH_SEARCH_SECONDS, elapsed)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe worker snapshot written at graceful shutdown."""
        obs = get_active()
        return {
            "schema_version": 1,
            "worker_index": self.worker_index,
            "pid": os.getpid(),
            "metrics": obs.registry.as_dict() if obs is not None else {},
        }
