"""Measures, size accounting and dataset statistics (Section VI-B)."""

from repro.analysis.charts import ascii_chart, chart_from_rows
from repro.analysis.distribution import (
    RedundancyReport,
    edge_popularity,
    length_histogram,
    redundancy_report,
    zipf_exponent,
)
from repro.analysis.metrics import (
    CompressionMeasurement,
    compression_ratio,
    measure_codec,
    measure_decompression,
    measure_partial_decompression,
)
from repro.analysis.sizing import dataset_raw_bytes, tokens_total_bytes
from repro.analysis.stats import dataset_stats_table, format_table

__all__ = [
    "ascii_chart",
    "chart_from_rows",
    "RedundancyReport",
    "edge_popularity",
    "length_histogram",
    "redundancy_report",
    "zipf_exponent",
    "CompressionMeasurement",
    "compression_ratio",
    "measure_codec",
    "measure_decompression",
    "measure_partial_decompression",
    "dataset_raw_bytes",
    "tokens_total_bytes",
    "dataset_stats_table",
    "format_table",
]
