"""Plain-text line charts for the figure reproductions.

The paper's Figures 4–6 are plots; the benchmark harness reproduces their
*data* as tables, and this module renders the same series as ASCII charts so
a terminal/`tee` log shows the curve shapes at a glance — knees, plateaus
and crossovers included.  No plotting dependency, deterministic output.

>>> print(ascii_chart({"CR": [(0, 1.7), (1, 2.2), (2, 3.0), (3, 3.3),
...                            (4, 3.25)]}, width=30, height=6))  # doctest: +SKIP
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

Series = Dict[str, Sequence[Tuple[float, float]]]

_MARKERS = "*o+x#@%&"


def ascii_chart(
    series: Series,
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more ``(x, y)`` series as an ASCII line chart.

    Each series gets its own marker; points are plotted on a
    ``width × height`` grid scaled to the joint data range, with axis
    annotations for the extremes and a legend.
    """
    if width < 10 or height < 4:
        raise ValueError("chart needs width >= 10 and height >= 4")
    if not series or all(len(pts) == 0 for pts in series.values()):
        return (title + "\n" if title else "") + "(no data)"

    points_all = [pt for pts in series.values() for pt in pts]
    xs = [x for x, _ in points_all]
    ys = [y for _, y in points_all]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in pts:
            col = round((x - x_min) / x_span * (width - 1))
            row = height - 1 - round((y - y_min) / y_span * (height - 1))
            grid[row][col] = marker

    y_top = f"{y_max:g}"
    y_bottom = f"{y_min:g}"
    margin = max(len(y_top), len(y_bottom), len(y_label)) + 1

    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = y_top
        elif row_index == height - 1:
            label = y_bottom
        elif row_index == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label.rjust(margin)} |{''.join(row)}")
    axis = f"{'':>{margin}} +{'-' * width}"
    lines.append(axis)
    x_left = f"{x_min:g}"
    x_right = f"{x_max:g}"
    gap = width - len(x_left) - len(x_right)
    x_line = f"{'':>{margin}}  {x_left}{'' if gap < 0 else ' ' * gap}{x_right}"
    if x_label:
        x_line += f"  ({x_label})"
    lines.append(x_line)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"{'':>{margin}}  {legend}")
    return "\n".join(lines)


def chart_from_rows(
    rows: Sequence[Sequence],
    x_column: int,
    y_columns: Dict[str, int],
    **kwargs,
) -> str:
    """Build a chart straight from an experiment's table rows.

    :param rows: header-first rows as the experiment functions return them.
    :param x_column: index of the x-value column.
    :param y_columns: ``{series name: column index}``.
    """
    series: Series = {}
    for name, col in y_columns.items():
        pts = []
        for row in rows[1:]:
            try:
                x = float(str(row[x_column]).rstrip("%").replace(",", ""))
                y = float(str(row[col]).replace(",", ""))
            except (TypeError, ValueError):
                continue
            pts.append((x, y))
        series[name] = pts
    return ascii_chart(series, **kwargs)
