"""Side-by-side codec comparison on arbitrary datasets.

The Fig. 5 experience for *your* data: run every relevant codec over a path
set and get one table of CR / CS / DS plus rule sizes.  Used by the CLI's
``compare`` subcommand and handy in notebooks::

    from repro.analysis.compare import compare_codecs, comparison_rows
    results = compare_codecs(dataset)
    print(format_table(comparison_rows(results)))
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import CompressionMeasurement, measure_codec
from repro.core.config import OFFSConfig
from repro.core.offs import OFFSCodec


def default_roster(
    sample_exponent: int = 2,
    dict_capacity: int = 512,
    include_repair: bool = True,
):
    """The comparison roster, sized for ad-hoc datasets.

    OFFS (default + fast mode), Dlz4, the naive DICTs, and optionally
    Re-Pair (skip it on large inputs — its construction is the slow one).
    """
    from repro.baselines.dlz4 import Dlz4Codec
    from repro.baselines.gfs import GFSCodec
    from repro.baselines.rss import RSSCodec

    offs = OFFSCodec(OFFSConfig(iterations=4, sample_exponent=sample_exponent))
    fast = OFFSCodec(OFFSConfig(iterations=2, sample_exponent=sample_exponent))
    fast.name = "OFFS*"
    roster = [
        offs,
        fast,
        Dlz4Codec(sample_exponent=sample_exponent),
        RSSCodec(capacity=dict_capacity, sample_exponent=sample_exponent),
        GFSCodec(capacity=dict_capacity, sample_exponent=sample_exponent),
    ]
    if include_repair:
        from repro.baselines.repair import RePairCodec

        roster.append(RePairCodec(max_rules=dict_capacity, sample_exponent=sample_exponent))
    return roster


def compare_codecs(
    dataset,
    codecs: Optional[Sequence] = None,
    verify: bool = True,
) -> Dict[str, CompressionMeasurement]:
    """Measure each codec on *dataset*; returns ``{name: measurement}``.

    Every codec's round-trip is verified by default — a comparison against
    a silently lossy configuration would be meaningless.
    """
    codecs = codecs if codecs is not None else default_roster()
    results: Dict[str, CompressionMeasurement] = {}
    for codec in codecs:
        results[codec.name] = measure_codec(codec, dataset, verify=verify)
    return results


def comparison_rows(results: Dict[str, CompressionMeasurement]) -> List[Sequence]:
    """Printable table rows (header first), best CR first."""
    rows: List[Sequence] = [
        ("codec", "CR", "CS (MB/s)", "DS (MB/s)", "rule bytes")
    ]
    ordered = sorted(results.values(), key=lambda m: -m.compression_ratio)
    for m in ordered:
        rows.append(
            (
                m.codec_name,
                round(m.compression_ratio, 3),
                round(m.compression_speed_mbps, 3),
                round(m.decompression_speed_mbps, 3),
                m.rule_bytes,
            )
        )
    return rows
