"""The Section VI-B measures: CR, CS, DS and PDS.

* **Compression ratio** ``CR = |P| / (|P'| + |R|)`` — raw bytes over
  compressed bytes including the rule.
* **Compression speed** ``CS = |P| / T_c`` — raw bytes per second of
  *fit + compress* (table construction is part of the paper's compression
  timing: Exp-1 shows CS varying with the construction parameters ``i``
  and ``k``).
* **Decompression speed** ``DS = |P| / T_d`` over the whole archive.
* **Partial decompression speed** ``PDS = |Q| / T_pd`` for a retrieved
  subset ``Q``.

Throughputs are reported in MB/s (1 MB = 10⁶ bytes, as speed plots usually
do).  Absolute values are pure-Python-scale; the benchmarks compare methods
against each other, which is the paper's claim shape.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.analysis.sizing import dataset_raw_bytes, tokens_total_bytes
from repro.paths.encoding import DEFAULT_ENCODING, Encoding

_MB = 1_000_000.0


@dataclass(frozen=True)
class CompressionMeasurement:
    """One codec's full measurement on one dataset."""

    codec_name: str
    dataset_name: str
    raw_bytes: int
    compressed_bytes: int
    rule_bytes: int
    fit_seconds: float
    compress_seconds: float
    decompress_seconds: float

    @property
    def compression_ratio(self) -> float:
        """``CR = |P| / (|P'| + |R|)``."""
        return self.raw_bytes / self.compressed_bytes if self.compressed_bytes else 0.0

    @property
    def compression_speed_mbps(self) -> float:
        """``CS``: raw MB per second of fit + compress."""
        elapsed = self.fit_seconds + self.compress_seconds
        return self.raw_bytes / _MB / elapsed if elapsed > 0 else 0.0

    @property
    def decompression_speed_mbps(self) -> float:
        """``DS``: raw MB per second of full decompression."""
        if self.decompress_seconds <= 0:
            return 0.0
        return self.raw_bytes / _MB / self.decompress_seconds

    def as_row(self) -> Tuple[str, str, float, float, float]:
        """``(codec, dataset, CR, CS, DS)`` for report tables."""
        return (
            self.codec_name,
            self.dataset_name,
            round(self.compression_ratio, 3),
            round(self.compression_speed_mbps, 3),
            round(self.decompression_speed_mbps, 3),
        )


def compression_ratio(codec, dataset, tokens: Sequence[Any], encoding: Encoding = DEFAULT_ENCODING) -> float:
    """``CR`` of *tokens* produced by *codec* for *dataset*."""
    raw = dataset_raw_bytes(dataset, encoding)
    compressed = tokens_total_bytes(codec, tokens, encoding)
    return raw / compressed if compressed else 0.0


def measure_codec(
    codec,
    dataset,
    encoding: Encoding = DEFAULT_ENCODING,
    verify: bool = True,
) -> CompressionMeasurement:
    """Fit, compress, decompress and time *codec* on *dataset*.

    With ``verify=True`` (default) every decompressed path is checked against
    its original — a measurement of a lossy implementation would be
    meaningless, so corruption raises immediately.
    """
    paths = list(dataset)
    raw = dataset_raw_bytes(paths, encoding)

    started = time.perf_counter()
    codec.fit(dataset)
    fit_seconds = time.perf_counter() - started

    started = time.perf_counter()
    tokens = [codec.compress_path(p) for p in paths]
    compress_seconds = time.perf_counter() - started

    started = time.perf_counter()
    restored = [codec.decompress_path(t) for t in tokens]
    decompress_seconds = time.perf_counter() - started

    if verify:
        for original, back in zip(paths, restored):
            if tuple(original) != tuple(back):
                raise AssertionError(
                    f"{codec.name}: lossy round-trip detected "
                    f"({tuple(original)[:8]}... != {tuple(back)[:8]}...)"
                )

    return CompressionMeasurement(
        codec_name=codec.name,
        dataset_name=getattr(dataset, "name", "dataset"),
        raw_bytes=raw,
        compressed_bytes=tokens_total_bytes(codec, tokens, encoding),
        rule_bytes=codec.rule_size_bytes(encoding),
        fit_seconds=fit_seconds,
        compress_seconds=compress_seconds,
        decompress_seconds=decompress_seconds,
    )


def measure_decompression(codec, tokens: Sequence[Any], raw_bytes: int) -> float:
    """``DS`` in MB/s for decompressing all *tokens* (Fig. 6a)."""
    started = time.perf_counter()
    for token in tokens:
        codec.decompress_path(token)
    elapsed = time.perf_counter() - started
    return raw_bytes / _MB / elapsed if elapsed > 0 else 0.0


def measure_partial_decompression(
    store,
    fraction: float,
    encoding: Encoding = DEFAULT_ENCODING,
    seed: int = 0,
    repeats: Optional[int] = None,
) -> Tuple[float, int]:
    """``PDS`` of retrieving a random *fraction* from a compressed store.

    Returns ``(mbps, retrieved_bytes_per_repeat)``; Fig. 6b sweeps the
    fraction from 1% to 100%.  Small fractions are timed over several
    repeats (different random subsets) so a 1% retrieval is not measured
    from a single sub-millisecond call.
    """
    if repeats is None:
        repeats = max(1, min(25, round(0.25 / fraction)))
    started = time.perf_counter()
    retrieved: List = []
    for r in range(repeats):
        retrieved = store.retrieve_fraction(fraction, seed=seed + r)
    elapsed = time.perf_counter() - started
    out_bytes = dataset_raw_bytes(retrieved, encoding)
    mbps = out_bytes * repeats / _MB / elapsed if elapsed > 0 else 0.0
    return mbps, out_bytes
