"""Workload distribution analysis — will OFFS help on *your* data?

OFFS wins exactly when paths share frequent subpaths; on uniform data it
honestly degrades to CR ≈ 1 (see README limitations).  This module
quantifies that before anyone pays for a fit:

* :func:`length_histogram` — the path-length profile (Table III's max/avg
  columns, in full).
* :func:`edge_popularity` — how often each directed edge recurs; the mean
  recurrence is the single best cheap predictor of DICT compressibility.
* :func:`zipf_exponent` — a log-log least-squares fit of the edge
  popularity ranking; heavy skew (exponent near or above 1) means a small
  table captures most traffic.
* :func:`redundancy_report` — one call bundling the above into a
  compressibility verdict, validated against actual OFFS ratios in the
  test suite.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


def length_histogram(dataset, bucket: int = 1) -> Dict[int, int]:
    """``{bucketed length: path count}`` for *dataset*.

    :param bucket: bucket width (1 = exact lengths).
    """
    if bucket < 1:
        raise ValueError("bucket must be >= 1")
    histogram: Counter = Counter()
    for path in dataset:
        histogram[(len(path) // bucket) * bucket] += 1
    return dict(histogram)


def edge_popularity(dataset) -> List[int]:
    """Occurrence counts of each distinct directed edge, descending."""
    counts: Counter = Counter()
    for path in dataset:
        for i in range(len(path) - 1):
            counts[(path[i], path[i + 1])] += 1
    return sorted(counts.values(), reverse=True)


def zipf_exponent(popularity: Sequence[int]) -> float:
    """Least-squares slope of log(count) vs log(rank) (sign-flipped).

    ≈ 0 means uniform popularity; ≥ 1 means heavy head concentration.
    Returns 0.0 when there are fewer than two distinct counts.
    """
    points = [
        (math.log(rank + 1), math.log(count))
        for rank, count in enumerate(popularity)
        if count > 0
    ]
    if len(points) < 2:
        return 0.0
    n = len(points)
    sum_x = sum(x for x, _ in points)
    sum_y = sum(y for _, y in points)
    sum_xx = sum(x * x for x, _ in points)
    sum_xy = sum(x * y for x, y in points)
    denominator = n * sum_xx - sum_x * sum_x
    if denominator == 0:
        return 0.0
    slope = (n * sum_xy - sum_x * sum_y) / denominator
    return -slope


@dataclass(frozen=True)
class RedundancyReport:
    """The compressibility profile of a path dataset."""

    paths: int
    nodes: int
    distinct_edges: int
    mean_edge_recurrence: float
    top_decile_edge_share: float
    zipf_exponent: float
    mean_length: float

    @property
    def verdict(self) -> str:
        """A coarse expectation: ``high`` / ``moderate`` / ``low``.

        Driven by mean edge recurrence — the cheap signal that separates
        DICT-compressible logs (every edge reused many times; the Table III
        datasets are in the hundreds at full scale) from uniform data.
        It is deliberately coarse: exact-repeat structure and path lengths
        also matter (the ``web`` workload reads ``high`` but lands at a
        lower CR than the surrogates because its sessions are short and a
        third of them are one-offs).
        """
        if self.mean_edge_recurrence >= 5:
            return "high"
        if self.mean_edge_recurrence >= 2:
            return "moderate"
        return "low"

    def as_rows(self) -> List[Tuple[str, float]]:
        """Printable key/value rows."""
        return [
            ("paths", self.paths),
            ("nodes", self.nodes),
            ("distinct edges", self.distinct_edges),
            ("mean edge recurrence", round(self.mean_edge_recurrence, 2)),
            ("top-decile edge share", round(self.top_decile_edge_share, 3)),
            ("zipf exponent", round(self.zipf_exponent, 3)),
            ("mean path length", round(self.mean_length, 2)),
            ("verdict", self.verdict),
        ]


def redundancy_report(dataset) -> RedundancyReport:
    """Analyse *dataset* and return its :class:`RedundancyReport`."""
    paths = list(dataset)
    nodes = sum(len(p) for p in paths)
    popularity = edge_popularity(paths)
    total_edges = sum(popularity)
    distinct = len(popularity)
    head = popularity[: max(1, distinct // 10)]
    return RedundancyReport(
        paths=len(paths),
        nodes=nodes,
        distinct_edges=distinct,
        mean_edge_recurrence=(total_edges / distinct) if distinct else 0.0,
        top_decile_edge_share=(sum(head) / total_edges) if total_edges else 0.0,
        zipf_exponent=zipf_exponent(popularity),
        mean_length=(nodes / len(paths)) if paths else 0.0,
    )
