"""Byte-size accounting under the paper's size model.

The paper's measures are all ratios of byte sizes (Section VI-B):
``CR = |P| / (|P'| + |R|)``, with ``|P|`` the raw path bytes (32-bit ids).
These helpers compute the raw side and the compressed side for any codec's
tokens, always through a real :class:`~repro.paths.encoding.Encoding` so
nothing is estimated.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.paths.encoding import DEFAULT_ENCODING, Encoding


def dataset_raw_bytes(dataset: Iterable[Sequence[int]], encoding: Encoding = DEFAULT_ENCODING) -> int:
    """``|P|``: bytes to store the uncompressed paths.

    Each path costs a length marker plus its ids — the same framing every
    compressed representation is charged, keeping the ratio honest.
    """
    total = 0
    for path in dataset:
        total += encoding.size_of_value(len(path)) + encoding.size_of(path)
    return total


def tokens_total_bytes(codec, tokens: Iterable, encoding: Encoding = DEFAULT_ENCODING) -> int:
    """``|P'| + |R|``: all compressed tokens plus the codec's rule."""
    total = codec.rule_size_bytes(encoding)
    for token in tokens:
        total += codec.compressed_size_bytes(token, encoding)
    return total
