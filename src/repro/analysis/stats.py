"""Dataset statistics tables (Table III) and plain-text table rendering."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.paths.dataset import PathDataset

TABLE3_HEADER = (
    "Dataset", "path number", "node number", "id number",
    "maximum length", "average length",
)


def dataset_stats_table(datasets: Iterable[PathDataset]) -> List[Sequence]:
    """Rows of Table III for *datasets* (header first)."""
    rows: List[Sequence] = [TABLE3_HEADER]
    for ds in datasets:
        rows.append(ds.stats().as_row())
    return rows


def format_table(rows: Sequence[Sequence], title: str = "") -> str:
    """Render rows (first row = header) as an aligned plain-text table.

    Numbers get thousands separators; floats keep their given precision.
    The benchmark harness prints every reproduced table/figure through this.
    """
    if not rows:
        return title

    def fmt(cell) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, int):
            return f"{cell:,}"
        if isinstance(cell, float):
            return f"{cell:,.3f}".rstrip("0").rstrip(".")
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in text_rows) for i in range(len(text_rows[0]))]
    lines = []
    if title:
        lines.append(title)
    header = text_rows[0]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)
