"""Generic byte-level compression substrate.

The paper's strongest straightforward baseline, Dlz4, is "a popular generic
compression method" (lz4's stream mode) seeded with a dictionary trained by
zstd's ``zdict``.  Neither library is assumed here; instead this subpackage
provides the same machinery from scratch:

* :mod:`repro.generic.lz77` — a greedy hash-chain LZ77 codec over bytes with
  preset-dictionary support, mirroring lz4's design (byte-oriented,
  match-offset/length tokens, no entropy stage).
* :mod:`repro.generic.dictionary` — a coverage-greedy dictionary trainer
  standing in for ``zdict``.

The stdlib :mod:`zlib` (which natively supports preset dictionaries) is used
as a second, faster backend by :mod:`repro.baselines.dlz4`.
"""

from repro.generic.dictionary import train_dictionary
from repro.generic.lz77 import lz77_compress, lz77_decompress

__all__ = ["train_dictionary", "lz77_compress", "lz77_decompress"]
