"""Dictionary training for generic compressors — the ``zdict`` stand-in.

The paper trains Dlz4's shared dictionary with zstd's ``zdict`` from a sample
of the data ("we pick one in every 128 as sample, and divide them into blocks
of 1 KB for training").  zstd is not available offline, so this module
implements a small coverage-greedy trainer with the same contract: feed it
sample byte blocks, get back a dictionary blob whose contents are the
substrings that recur most across blocks.

Algorithm: slide fixed-size segments over every sample, score each distinct
segment by ``(occurrences - 1) × length`` (the bytes a back-reference into
the dictionary would save), and greedily pack the best segments into the
budget, skipping segments already covered by a chosen one.  Frequent segments
are placed at the *end* of the dictionary because LZ windows favour recent
bytes — the same layout convention zstd uses.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List

DEFAULT_DICT_SIZE = 4096
_SEGMENT = 16
_STRIDE = 4


def train_dictionary(
    samples: Iterable[bytes],
    dict_size: int = DEFAULT_DICT_SIZE,
    segment: int = _SEGMENT,
    stride: int = _STRIDE,
) -> bytes:
    """Train a preset dictionary from sample byte blocks.

    :param samples: blocks representative of what will be compressed.
    :param dict_size: maximum dictionary size in bytes.
    :param segment: length of the candidate substrings considered.
    :param stride: sampling stride within each block (smaller = slower,
        slightly better dictionaries).
    :returns: the dictionary blob (may be shorter than *dict_size*, possibly
        empty when samples carry no repetition).
    """
    if dict_size < segment:
        return b""
    counts: Counter = Counter()
    for block in samples:
        for i in range(0, max(0, len(block) - segment + 1), stride):
            counts[bytes(block[i : i + segment])] += 1

    scored = [
        ((occurrences - 1) * segment, seg)
        for seg, occurrences in counts.items()
        if occurrences > 1
    ]
    # Highest savings first; lexicographic tiebreak keeps training
    # deterministic across runs.
    scored.sort(key=lambda e: (-e[0], e[1]))

    chosen: List[bytes] = []
    covered: set = set()
    used = 0
    for _, seg in scored:
        if used + segment > dict_size:
            break
        if seg in covered:
            continue
        chosen.append(seg)
        used += segment
        # Mark the segment's own sub-segments as covered so near-duplicates
        # do not waste budget.
        for i in range(0, segment - segment // 2):
            covered.add(seg[i : i + segment])

    # Least valuable first: LZ windows favour the most recent bytes, so the
    # best segments sit at the dictionary's end.
    chosen.reverse()
    return b"".join(chosen)


def train_dictionary_from_paths(
    paths: Iterable[bytes],
    dict_size: int = DEFAULT_DICT_SIZE,
    block_size: int = 1024,
) -> bytes:
    """Train from encoded paths, grouped into ~1 KB blocks as the paper does.

    The paper: "divide them into blocks of 1 KB for training a dictionary".
    Concatenates the encoded sample paths, slices the result into
    *block_size* blocks and delegates to :func:`train_dictionary`.
    """
    joined = b"".join(paths)
    blocks = [joined[i : i + block_size] for i in range(0, len(joined), block_size)]
    return train_dictionary(blocks, dict_size=dict_size)
