"""A from-scratch LZ77 codec with preset-dictionary support.

This is the byte-level substrate for the Dlz4 baseline (Section II-C of the
paper): paths are reinterpreted as byte arrays and compressed per block with
the help of a shared dictionary.  The design follows lz4's:

* greedy parsing with hash-chain match search over 4-byte anchors;
* tokens are ``(literal run, back-reference)`` pairs — no entropy coder, so
  compression and decompression stay cheap ("lightweight");
* a *preset dictionary* is virtually prepended to the input: matches may
  reach back into it, which is what makes tiny blocks (single paths)
  compressible at all.

Wire format (all varints are unsigned LEB128)::

    repeat:
        varint  literal_length
        bytes   literals
        -- end of stream may fall here, after the literals --
        varint  offset        distance back from the current position,
                              counted across dictionary + output so far (>= 1)
        varint  extra_length  match length minus MIN_MATCH (4)

Lossless by construction; the property-based tests round-trip random byte
strings and random dictionaries.
"""

from __future__ import annotations

from typing import Dict, List, Optional

MIN_MATCH = 4
_MAX_CHAIN = 32  # positions probed per anchor; bounds worst-case search cost
_HASH_BYTES = 4


def _write_varint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> "tuple[int, int]":
    value = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint in LZ77 stream")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise ValueError("varint too long in LZ77 stream")


def lz77_compress(data: bytes, zdict: bytes = b"") -> bytes:
    """Compress *data*, allowing matches into the preset dictionary *zdict*.

    Returns the token stream described in the module docstring.  The same
    *zdict* must be supplied to :func:`lz77_decompress`.
    """
    buf = zdict + data
    start = len(zdict)
    n = len(buf)
    out = bytearray()

    # Hash chains over 4-byte anchors; dictionary positions are indexed up
    # front so early input bytes can match into it.
    chains: Dict[bytes, List[int]] = {}
    for i in range(0, max(0, start - _HASH_BYTES + 1)):
        key = buf[i : i + _HASH_BYTES]
        chains.setdefault(key, []).append(i)

    pos = start
    literal_start = pos

    def flush_literals(up_to: int, match: Optional["tuple[int, int]"]) -> None:
        literals = buf[literal_start:up_to]
        _write_varint(out, len(literals))
        out.extend(literals)
        if match is not None:
            offset, length = match
            _write_varint(out, offset)
            _write_varint(out, length - MIN_MATCH)

    while pos < n:
        match = None
        if pos + MIN_MATCH <= n:
            key = buf[pos : pos + _HASH_BYTES]
            candidates = chains.get(key)
            if candidates:
                best_len = 0
                best_pos = -1
                # Probe newest-first: recent positions give small offsets.
                for cand in reversed(candidates[-_MAX_CHAIN:]):
                    length = _HASH_BYTES
                    limit = n - pos
                    while (
                        length < limit
                        and buf[cand + length] == buf[pos + length]
                    ):
                        length += 1
                    if length > best_len:
                        best_len = length
                        best_pos = cand
                        if length == limit:
                            break
                if best_len >= MIN_MATCH:
                    match = (pos - best_pos, best_len)
        if match is None:
            # Extend the pending literal run.
            if pos + _HASH_BYTES <= n:
                chains.setdefault(buf[pos : pos + _HASH_BYTES], []).append(pos)
            pos += 1
            continue
        flush_literals(pos, match)
        offset, length = match
        # Index the positions the match covers so later data can reference it.
        end = pos + length
        for i in range(pos, min(end, n - _HASH_BYTES + 1)):
            chains.setdefault(buf[i : i + _HASH_BYTES], []).append(i)
        pos = end
        literal_start = pos

    if literal_start < n or not out:
        flush_literals(n, None)
    return bytes(out)


def lz77_decompress(blob: bytes, zdict: bytes = b"") -> bytes:
    """Restore the bytes compressed by :func:`lz77_compress`.

    Raises :class:`ValueError` on any malformed stream (truncation, offsets
    reaching before the dictionary, zero offsets).
    """
    out = bytearray(zdict)
    start = len(zdict)
    pos = 0
    n = len(blob)
    while pos < n:
        lit_len, pos = _read_varint(blob, pos)
        if pos + lit_len > n:
            raise ValueError("truncated literal run in LZ77 stream")
        out += blob[pos : pos + lit_len]
        pos += lit_len
        if pos >= n:
            break
        offset, pos = _read_varint(blob, pos)
        extra, pos = _read_varint(blob, pos)
        length = extra + MIN_MATCH
        src = len(out) - offset
        if offset < 1 or src < 0:
            raise ValueError(f"invalid back-reference offset {offset}")
        # Overlapping copies (offset < length) must proceed byte by byte.
        for _ in range(length):
            out.append(out[src])
            src += 1
    return bytes(out[start:])
