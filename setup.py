"""Setup shim for environments whose pip lacks the wheel package.

All real metadata lives in pyproject.toml; `pip install -e .` uses PEP 660
when possible, and `python setup.py develop` remains available offline.
"""
from setuptools import setup

setup()
