"""Tests for the memoized expansion cache and the decode fast paths.

Covers the tentpole contracts:

* :func:`flatten_subpaths` resolves nested (multilevel) supernode rules
  iteratively — deep chains don't recurse, cycles and dangling references
  are :class:`TableError`, never infinite loops;
* :class:`ExpansionCache` is memoized on the table, invalidated by
  ``add``, and observable through ``table.expansion_cache.*`` metrics;
* :func:`slice_token` matches ``decompress_path(...)[start:stop]`` for
  every slice shape Python allows (property-tested);
* :func:`decompress_paths_flat` is identical to the per-path loop on both
  the numpy gather kernel and the pure-Python fallback.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compressor import decompress_path, decompress_paths_flat
from repro.core.errors import TableError
from repro.core.expansion import ExpansionCache, flatten_subpaths, slice_token
from repro.core.flatcorpus import FlatCorpus
from repro.core.supernode_table import SupernodeTable
from repro.obs import catalog
from repro.obs.runtime import instrumented

BASE = 100


@pytest.fixture()
def table():
    return SupernodeTable(BASE, [(1, 2, 3), (4, 5), (6, 7, 8, 9)])


class TestFlattenSubpaths:
    def test_flat_table_passes_through(self):
        by_id = {100: (1, 2), 101: (3, 4, 5)}
        assert flatten_subpaths(100, by_id) == by_id

    def test_forward_reference_resolved(self):
        # 100 references 101, declared later.
        by_id = {100: (1, 101, 9), 101: (2, 3)}
        flat = flatten_subpaths(100, by_id)
        assert flat[100] == (1, 2, 3, 9)
        assert flat[101] == (2, 3)

    def test_backward_reference_resolved(self):
        by_id = {100: (2, 3), 101: (1, 100, 9)}
        flat = flatten_subpaths(100, by_id)
        assert flat[101] == (1, 2, 3, 9)

    def test_multilevel_chain(self):
        by_id = {100: (1, 2), 101: (100, 3), 102: (101, 101), 103: (102, 4)}
        flat = flatten_subpaths(100, by_id)
        assert flat[102] == (1, 2, 3, 1, 2, 3)
        assert flat[103] == (1, 2, 3, 1, 2, 3, 4)

    def test_deep_chain_does_not_recurse(self):
        # A chain far deeper than Python's recursion limit: each entry
        # wraps the previous one.  Iterative resolution must handle it.
        depth = 5000
        by_id = {100: (1, 2)}
        for i in range(1, depth):
            by_id[100 + i] = (100 + i - 1, 3)
        flat = flatten_subpaths(100, by_id)
        assert len(flat[100 + depth - 1]) == 2 + (depth - 1)

    def test_cycle_detected(self):
        by_id = {100: (1, 101), 101: (2, 100)}
        with pytest.raises(TableError, match="cycle"):
            flatten_subpaths(100, by_id)

    def test_self_cycle_detected(self):
        with pytest.raises(TableError, match="cycle"):
            flatten_subpaths(100, {100: (1, 100)})

    def test_dangling_reference_detected(self):
        with pytest.raises(TableError, match="unknown supernode"):
            flatten_subpaths(100, {100: (1, 999)})


class TestExpansionCache:
    def test_expand_matches_table(self, table):
        cache = ExpansionCache.from_table(table)
        for sid, subpath in table:
            assert cache.expand(sid) == subpath

    def test_lengths(self, table):
        cache = ExpansionCache.from_table(table)
        assert cache.expansion_length(BASE) == 3
        assert cache.expansion_length(BASE + 1) == 2
        assert cache.symbol_length(7) == 1
        assert cache.symbol_length(BASE + 2) == 4

    def test_token_length(self, table):
        cache = ExpansionCache.from_table(table)
        token = (BASE, 50, BASE + 2, 51)
        assert cache.token_length(token) == len(decompress_path(token, table))

    def test_unknown_ids_raise(self, table):
        cache = ExpansionCache.from_table(table)
        with pytest.raises(TableError):
            cache.expand(999)
        with pytest.raises(TableError):
            cache.expansion_length(999)
        with pytest.raises(TableError):
            cache.token_length((999,))

    def test_items_in_id_order(self, table):
        cache = ExpansionCache.from_table(table)
        ids = [sid for sid, _ in cache.items()]
        assert ids == [BASE, BASE + 1, BASE + 2]

    def test_flat_views_aligned(self, table):
        cache = ExpansionCache.from_table(table)
        concat, starts = cache.flat_concat, cache.flat_starts
        for i, (sid, expansion) in enumerate(cache.items()):
            assert tuple(concat[starts[i] : starts[i + 1]]) == expansion

    def test_as_numpy_matches_arrays(self, table):
        cache = ExpansionCache.from_table(table)
        arrays = cache.as_numpy()
        if arrays is None:
            pytest.skip("numpy not available")
        concat, starts, lengths = arrays
        assert list(concat) == list(cache.flat_concat)
        assert list(starts) == list(cache.flat_starts)
        assert list(lengths) == [3, 2, 4]

    def test_empty_table(self):
        cache = ExpansionCache.from_table(SupernodeTable(BASE))
        assert len(cache) == 0
        assert cache.token_length((1, 2, 3)) == 3

    def test_nested_table_flattens_once(self, table):
        # SupernodeTable.add forbids nesting today; a future multilevel
        # builder would write _by_id directly, so simulate that.
        table._by_id[BASE + 3] = (BASE, BASE + 1)
        table._by_subpath[(BASE, BASE + 1)] = BASE + 3
        table._expansion_cache = None
        cache = table.expansions()
        assert cache.expand(BASE + 3) == (1, 2, 3, 4, 5)
        assert cache.expansion_length(BASE + 3) == 5


class TestMemoization:
    def test_same_object_until_mutation(self, table):
        first = table.expansions()
        assert table.expansions() is first
        table.add((11, 12))
        second = table.expansions()
        assert second is not first
        assert second.expand(table.id_of((11, 12))) == (11, 12)

    def test_hit_miss_metrics(self, table):
        with instrumented() as obs:
            table.expansions()
            table.expansions()
            table.expansions()
            reg = obs.registry
            assert reg.counter(catalog.TABLE_EXPANSION_CACHE_MISSES).value == 1
            assert reg.counter(catalog.TABLE_EXPANSION_CACHE_HITS).value == 2
            assert reg.gauge(catalog.TABLE_EXPANSION_CACHE_ENTRIES).value == 3
            table.add((21, 22))
            table.expansions()
            assert reg.counter(catalog.TABLE_EXPANSION_CACHE_MISSES).value == 2


# Tokens over the fixture table: literals below BASE, supernodes BASE..BASE+2.
_symbols = st.one_of(
    st.integers(min_value=0, max_value=BASE - 1),
    st.integers(min_value=BASE, max_value=BASE + 2),
)
_tokens = st.lists(_symbols, max_size=12).map(tuple)
_bounds = st.one_of(st.none(), st.integers(min_value=-30, max_value=30))


class TestSliceToken:
    @settings(max_examples=200)
    @given(token=_tokens, start=_bounds, stop=_bounds)
    def test_matches_python_slicing(self, token, start, stop):
        table = SupernodeTable(BASE, [(1, 2, 3), (4, 5), (6, 7, 8, 9)])
        cache = table.expansions()
        full = decompress_path(token, table)
        assert slice_token(token, cache, start, stop) == full[start:stop]

    def test_empty_token(self, table):
        assert slice_token((), table.expansions(), 0, 5) == ()

    def test_defaults(self, table):
        token = (BASE, 42)
        assert slice_token(token, table.expansions()) == (1, 2, 3, 42)


class TestFlatDecodeIdentity:
    def _tokens(self):
        return [
            (BASE, 50, BASE + 2),
            (),
            (51,),
            (BASE + 1, BASE + 1, BASE),
            tuple(range(40, 60)),
        ]

    def test_numpy_kernel_matches_per_path(self, table):
        tokens = self._tokens()
        expected = [decompress_path(t, table) for t in tokens]
        assert decompress_paths_flat(tokens, table) == expected

    def test_fallback_matches_per_path(self, table, monkeypatch):
        # Force the pure-Python route regardless of installed numpy.
        monkeypatch.setattr(FlatCorpus, "as_numpy", lambda self: None)
        tokens = self._tokens()
        expected = [decompress_path(t, table) for t in tokens]
        assert decompress_paths_flat(tokens, table) == expected

    def test_as_corpus_output(self, table):
        tokens = self._tokens()
        corpus = decompress_paths_flat(tokens, table, as_corpus=True)
        assert isinstance(corpus, FlatCorpus)
        assert corpus.to_paths() == [decompress_path(t, table) for t in tokens]

    def test_empty_batch(self, table):
        assert decompress_paths_flat([], table) == []

    def test_unknown_supernode_raises(self, table):
        with pytest.raises(TableError):
            decompress_paths_flat([(BASE + 50,)], table)

    def test_flat_batch_counter(self, table):
        with instrumented() as obs:
            decompress_paths_flat([(BASE,)], table)
            assert obs.registry.counter(catalog.DECOMPRESS_FLAT_BATCHES).value == 1
