"""Unit tests for the supernode table (the rule R)."""

import pytest

from repro.core.errors import TableError
from repro.core.supernode_table import SupernodeTable


class TestConstruction:
    def test_ids_contiguous_from_base(self):
        table = SupernodeTable(100, [(1, 2), (3, 4, 5)])
        assert table.expand(100) == (1, 2)
        assert table.expand(101) == (3, 4, 5)

    def test_readd_returns_existing_id(self):
        table = SupernodeTable(100)
        first = table.add((1, 2))
        assert table.add((1, 2)) == first
        assert len(table) == 1

    def test_single_vertex_rejected(self):
        with pytest.raises(TableError):
            SupernodeTable(100, [(1,)])

    def test_vertex_colliding_with_id_space_rejected(self):
        with pytest.raises(TableError, match="collides"):
            SupernodeTable(100, [(99, 100)])

    def test_negative_vertex_rejected(self):
        with pytest.raises(TableError):
            SupernodeTable(100, [(-1, 2)])

    def test_bad_base_id_rejected(self):
        with pytest.raises(TableError):
            SupernodeTable(0)


class TestLookups:
    @pytest.fixture()
    def table(self):
        return SupernodeTable(50, [(1, 2, 3), (4, 5)])

    def test_is_supernode(self, table):
        assert table.is_supernode(50)
        assert table.is_supernode(51)
        assert not table.is_supernode(49)

    def test_id_of(self, table):
        assert table.id_of((1, 2, 3)) == 50
        assert table.id_of([4, 5]) == 51

    def test_id_of_missing_raises(self, table):
        with pytest.raises(TableError):
            table.id_of((9, 9))

    def test_get_id_missing_returns_none(self, table):
        assert table.get_id((9, 9)) is None

    def test_expand_unknown_raises(self, table):
        with pytest.raises(TableError):
            table.expand(99)

    def test_contains(self, table):
        assert (4, 5) in table
        assert (5, 4) not in table

    def test_iteration(self, table):
        assert dict(table) == {50: (1, 2, 3), 51: (4, 5)}

    def test_max_subpath_length(self, table):
        assert table.max_subpath_length == 3

    def test_subpaths_in_id_order(self, table):
        assert table.subpaths == [(1, 2, 3), (4, 5)]

    def test_inverted_view(self, table):
        assert table.inverted() == {(1, 2, 3): 50, (4, 5): 51}

    def test_equality(self, table):
        assert table == SupernodeTable(50, [(1, 2, 3), (4, 5)])
        assert table != SupernodeTable(51, [(1, 2, 3), (4, 5)])


class TestInvariants:
    def test_validate_accepts_fresh_table(self):
        SupernodeTable(10, [(1, 2), (3, 4)]).validate()

    def test_validate_catches_tampering(self):
        table = SupernodeTable(10, [(1, 2)])
        table._by_id[11] = (3, 4)  # corrupt on purpose
        with pytest.raises(TableError):
            table.validate()

    def test_rule_symbol_count(self):
        table = SupernodeTable(10, [(1, 2), (3, 4, 5)])
        # 2 + 1 marker + 3 + 1 marker
        assert table.rule_symbol_count() == 7
