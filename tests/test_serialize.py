"""Unit tests for binary serialization of tables and stores."""

import pytest

from repro.core.errors import CorruptDataError
from repro.core.serialize import dumps_store, dumps_table, loads_store, loads_table
from repro.core.store import CompressedPathStore
from repro.core.supernode_table import SupernodeTable
from repro.paths.dataset import PathDataset


@pytest.fixture()
def table():
    return SupernodeTable(1_000, [(1, 2, 3), (4, 5), (900, 901, 902, 903)])


@pytest.fixture()
def store(table):
    s = CompressedPathStore(table)
    s.extend([(1, 2, 3, 9), (4, 5), (900, 901, 902, 903, 7)])
    return s


class TestTableBlob:
    def test_roundtrip(self, table):
        restored, consumed = loads_table(dumps_table(table))
        assert restored == table
        assert consumed == len(dumps_table(table))

    def test_empty_table(self):
        table = SupernodeTable(5)
        restored, _ = loads_table(dumps_table(table))
        assert restored == table

    def test_id_assignment_preserved(self, table):
        restored, _ = loads_table(dumps_table(table))
        for sid, subpath in table:
            assert restored.expand(sid) == subpath

    def test_bad_magic(self, table):
        blob = dumps_table(table)
        with pytest.raises(CorruptDataError, match="magic"):
            loads_table(b"ZZZZ" + blob[4:])

    def test_truncated_header(self):
        with pytest.raises(CorruptDataError):
            loads_table(b"RPST\x01\x00")

    def test_truncated_entries(self, table):
        blob = dumps_table(table)
        with pytest.raises(CorruptDataError):
            loads_table(blob[:-3])


class TestStoreBlob:
    def test_roundtrip(self, store):
        restored = loads_store(dumps_store(store))
        assert restored.retrieve_all() == store.retrieve_all()
        assert restored.table == store.table

    def test_roundtrip_preserves_tokens(self, store):
        restored = loads_store(dumps_store(store))
        assert restored.tokens() == store.tokens()

    def test_empty_store(self, table):
        s = CompressedPathStore(table)
        restored = loads_store(dumps_store(s))
        assert len(restored) == 0

    def test_bad_magic(self, store):
        blob = dumps_store(store)
        with pytest.raises(CorruptDataError, match="magic"):
            loads_store(b"ZZZZ" + blob[4:])

    def test_trailing_garbage(self, store):
        # The CRC catches the tampering before the structural check would.
        with pytest.raises(CorruptDataError, match="trailing|checksum"):
            loads_store(dumps_store(store) + b"\x00")

    def test_token_referencing_unknown_supernode(self, store):
        # Hand-corrupt a token symbol beyond the table range.
        blob = bytearray(dumps_store(store))
        # Append a fresh store whose token claims supernode 1_003 (table has
        # ids 1_000..1_002): build it through the public API then corrupt.
        s = CompressedPathStore(store.table)
        s.extend([(1, 2, 3)])
        s._tokens[0] = (5_000,)
        with pytest.raises(CorruptDataError, match="beyond"):
            loads_store(dumps_store(s))
        assert blob  # silence the unused-variable lint

    def test_truncated_tokens(self, store):
        blob = dumps_store(store)
        with pytest.raises(CorruptDataError):
            loads_store(blob[:-2])

    def test_roundtrip_through_real_codec(self, simple_dataset, exhaustive_config):
        from repro.core.offs import OFFSCodec

        codec = OFFSCodec(exhaustive_config)
        store = CompressedPathStore.from_codec(simple_dataset, codec)
        restored = loads_store(dumps_store(store))
        assert restored.retrieve_all() == [tuple(p) for p in simple_dataset]

    def test_blob_smaller_than_raw_for_redundant_data(self, exhaustive_config):
        from repro.core.offs import OFFSCodec
        from repro.paths.io import dumps_binary

        ds = PathDataset([[1, 2, 3, 4, 5, 6, 7, 8]] * 200)
        store = CompressedPathStore.from_codec(ds, OFFSCodec(exhaustive_config))
        assert len(dumps_store(store)) < len(dumps_binary(ds))
