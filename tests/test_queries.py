"""Unit tests for the Case 1 / Case 2 retrieval layer, checked brute-force."""

import pytest

from repro.core.config import OFFSConfig
from repro.core.offs import OFFSCodec
from repro.core.store import CompressedPathStore
from repro.queries.index import VertexIndex
from repro.queries.retrieval import PathQueryEngine
from repro.workloads.registry import make_dataset


@pytest.fixture(scope="module")
def setup():
    dataset = make_dataset("sanfrancisco", "tiny")
    codec = OFFSCodec(OFFSConfig(iterations=3, sample_exponent=0))
    store = CompressedPathStore.from_codec(dataset, codec)
    return dataset, store, PathQueryEngine(store)


class TestVertexIndex:
    def test_postings_match_brute_force(self, setup):
        dataset, store, engine = setup
        index = engine.index
        # Check a spread of vertices against a linear scan of the originals.
        vertices = sorted(dataset.vertex_ids())[::17]
        for v in vertices:
            expected = [i for i, p in enumerate(dataset) if v in p]
            assert index.paths_containing(v) == expected, v

    def test_unknown_vertex_empty(self, setup):
        _, _, engine = setup
        assert engine.index.paths_containing(10**9) == []

    def test_intersection(self, setup):
        dataset, _, engine = setup
        path = dataset[0]
        a, b = path[0], path[-1]
        expected = sorted(
            i for i, p in enumerate(dataset) if a in p and b in p
        )
        assert engine.index.paths_containing_all((a, b)) == expected

    def test_union(self, setup):
        dataset, _, engine = setup
        path = dataset[0]
        a, b = path[0], path[-1]
        expected = sorted(
            i for i, p in enumerate(dataset) if a in p or b in p
        )
        assert engine.index.paths_containing_any((a, b)) == expected

    def test_contains(self, setup):
        dataset, _, engine = setup
        assert dataset[0][0] in engine.index

    def test_refresh_after_append(self, setup):
        dataset, store, _ = setup
        # Build a fresh store/index so appends don't disturb other tests.
        local = CompressedPathStore(store.table)
        local.extend(list(dataset)[:10])
        index = VertexIndex(local)
        new_path = dataset[10]
        pid = local.append(new_path)
        index.refresh()
        assert pid in index.paths_containing(new_path[0])

    def test_empty_intersection_of_nothing(self, setup):
        _, _, engine = setup
        assert engine.index.paths_containing_all(()) == []


class TestCase1AffectedNodes:
    def test_affected_paths_decompress_correctly(self, setup):
        dataset, _, engine = setup
        issue = dataset[3][1]
        expected = [p for p in dataset if issue in p]
        assert engine.affected_paths(issue) == expected

    def test_affected_vertices_excludes_issue_vertex(self, setup):
        dataset, _, engine = setup
        issue = dataset[0][1]
        affected = engine.affected_vertices(issue)
        assert issue not in affected
        brute = set()
        for p in dataset:
            if issue in p:
                brute.update(p)
        brute.discard(issue)
        assert affected == brute


class TestCase2TerminalPairs:
    def test_paths_between_match_brute_force(self, setup):
        dataset, _, engine = setup
        src, dst = dataset[1][0], dataset[1][-1]
        expected = [p for p in dataset if p[0] == src and p[-1] == dst]
        assert engine.paths_between(src, dst) == expected

    def test_intermediates(self, setup):
        dataset, _, engine = setup
        src, dst = dataset[2][0], dataset[2][-1]
        brute = set()
        for p in dataset:
            if p[0] == src and p[-1] == dst:
                brute.update(p[1:-1])
        assert engine.intermediate_vertices(src, dst) == brute

    def test_no_match(self, setup):
        _, _, engine = setup
        assert engine.paths_between(10**9, 10**9 + 1) == []
