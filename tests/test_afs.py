"""Unit tests for AFS — Apriori for Frequent Subpaths (Algorithm 3)."""

from repro.baselines.afs import AFSCodec, afs_frequent_subpaths
from repro.paths.dataset import PathDataset


class TestMining:
    def test_finds_frequent_subpaths_of_all_lengths(self):
        paths = [(1, 2, 3, 4)] * 5 + [(7, 8)] * 2
        mined = afs_frequent_subpaths(paths, max_length=4, threshold=8)
        # (1,2): freq 5, gain 10 >= 8; (1,2,3): 5*3=15; (1,2,3,4): 20.
        assert (1, 2) in mined and (1, 2, 3) in mined and (1, 2, 3, 4) in mined
        # (7,8): gain 4 < 8.
        assert (7, 8) not in mined

    def test_counts_are_gross_frequencies(self):
        paths = [(1, 2, 3, 4)] * 5
        mined = afs_frequent_subpaths(paths, max_length=2, threshold=2)
        assert mined[(2, 3)] == 5  # gross: counted even though OFFS would shadow it

    def test_apriori_pruning_blocks_unsupported_extensions(self):
        # (1,2) and (2,3) frequent, but (1,2,3) never occurs: the join
        # creates it (graph edge exists via another path), CountGain kills it.
        paths = [(1, 2)] * 5 + [(2, 3)] * 5 + [(9, 2, 3)] * 2
        mined = afs_frequent_subpaths(paths, max_length=3, threshold=6)
        assert (1, 2) in mined and (2, 3) in mined
        assert (1, 2, 3) not in mined

    def test_output_is_overlap_heavy(self):
        """Criticism (3): every fragment of a frequent subpath is frequent."""
        paths = [(1, 2, 3, 4, 5)] * 10
        mined = afs_frequent_subpaths(paths, max_length=5, threshold=10)
        lengths = sorted(len(sp) for sp in mined)
        # All 4+3+2+1 fragments of lengths 2..5 are reported.
        assert lengths == [2, 2, 2, 2, 3, 3, 3, 4, 4, 5]

    def test_empty_input(self):
        assert afs_frequent_subpaths([], max_length=4, threshold=1) == {}


class TestCodec:
    def test_roundtrip(self):
        ds = PathDataset([(1, 2, 3, 4)] * 6 + [(5, 6, 7)] * 4)
        codec = AFSCodec(threshold=6).fit(ds)
        for path in ds:
            assert codec.decompress_path(codec.compress_path(path)) == path

    def test_capacity_bound(self):
        ds = PathDataset([(1, 2, 3, 4, 5, 6)] * 10)
        codec = AFSCodec(threshold=2, capacity=3).fit(ds)
        assert len(codec.table) <= 3

    def test_compresses_dominant_pattern(self):
        ds = PathDataset([(1, 2, 3, 4)] * 10)
        codec = AFSCodec(threshold=4).fit(ds)
        assert len(codec.compress_path((1, 2, 3, 4))) == 1
