"""Unit tests for parallel (de)compression — bit-identical to sequential."""

import pytest

from repro.core.compressor import compress_dataset, decompress_dataset
from repro.core.config import OFFSConfig
from repro.core.offs import OFFSCodec
from repro.core.parallel import parallel_compress, parallel_decompress
from repro.workloads.registry import make_dataset


@pytest.fixture(scope="module")
def setup():
    dataset = make_dataset("sanfrancisco", "tiny")
    codec = OFFSCodec(OFFSConfig(iterations=3, sample_exponent=0)).fit(dataset)
    return dataset, codec.table


class TestSequentialPath:
    def test_processes_one_matches_compress_dataset(self, setup):
        dataset, table = setup
        assert parallel_compress(dataset, table, processes=1) == \
            compress_dataset(dataset, table)

    def test_processes_one_decompress(self, setup):
        dataset, table = setup
        tokens = compress_dataset(dataset, table)
        assert parallel_decompress(tokens, table, processes=1) == \
            decompress_dataset(tokens, table)


class TestParallelPath:
    def test_two_workers_identical_tokens(self, setup):
        dataset, table = setup
        sequential = compress_dataset(dataset, table)
        parallel = parallel_compress(dataset, table, processes=2, chunk_size=37)
        assert parallel == sequential

    def test_two_workers_decompress_roundtrip(self, setup):
        dataset, table = setup
        tokens = compress_dataset(dataset, table)
        restored = parallel_decompress(tokens, table, processes=2, chunk_size=53)
        assert restored == [tuple(p) for p in dataset]

    def test_order_preserved_with_tiny_chunks(self, setup):
        dataset, table = setup
        parallel = parallel_compress(dataset, table, processes=2, chunk_size=1)
        assert parallel == compress_dataset(dataset, table)

    def test_empty_input(self, setup):
        _, table = setup
        assert parallel_compress([], table, processes=2) == []
        assert parallel_decompress([], table, processes=2) == []


class TestValidation:
    def test_bad_processes(self, setup):
        dataset, table = setup
        with pytest.raises(ValueError):
            parallel_compress(dataset, table, processes=0)

    def test_bad_chunk_size(self, setup):
        dataset, table = setup
        with pytest.raises(ValueError):
            parallel_compress(dataset, table, processes=2, chunk_size=0)
