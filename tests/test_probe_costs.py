"""Numerical reproduction of Examples 3 and 4 and the Lemma 3 cost claims.

The matcher backends count their work (probes issued, vertices hashed);
this file re-derives the paper's probe-cost arithmetic from those counters:

* **Example 3** — a failed length-8 probe under the flat scheme hashes
  ``(8+2)(8-2+1)/2 = 35`` vertices.
* **Example 4** — the same query under the two-level scheme (α = 5) costs
  at most 14 hashed vertices in its fallback branch; with a matching
  primary key the suffix probing is bounded by ``5 + (3+1)·3/2 = 11``.
* **§IV-D** — the trie answers any probe in at most δ per-vertex steps.
* **Lemma 3** — across a real workload, the two-level scheme hashes fewer
  vertices than the flat scheme, and the trie fewer still.
"""

import pytest

from repro.core.matcher import HashCandidates
from repro.core.multilevel import MultiLevelCandidates
from repro.core.trie import TrieCandidates

EXAMPLE3_PATH = (8, 5, 0, 9, 1, 3, 4, 2)  # "P is {v8,v5,v0,v9,v1,v3,v4,v2}"


def failed_probe_cost(backend, path=EXAMPLE3_PATH, cap=8):
    """Hashed-vertex cost of one worst-case (no-match) probe."""
    backend.stats.reset()
    # The candidate set must be able to *hold* length-8 entries or the probe
    # is cut short by the max-length shortcut; plant an unrelated one.
    backend.add(tuple(range(100, 108)))
    backend.stats.reset()
    assert backend.longest_match(path, 0, cap) == 1
    return backend.stats.hashed_vertices


class TestExample3FlatScheme:
    def test_failed_length8_probe_hashes_35_vertices(self):
        # "The total cost for that is (8+2)(8-2+1)/2 = 35"
        assert failed_probe_cost(HashCandidates()) == 35

    def test_successful_probe_stops_early(self):
        flat = HashCandidates()
        flat.add(tuple(range(100, 108)))  # allow length-8 probing
        flat.add((8, 5, 0))
        flat.stats.reset()
        assert flat.longest_match(EXAMPLE3_PATH, 0, 8) == 3
        # Probes lengths 8..3: 8+7+6+5+4+3 = 33.
        assert flat.stats.hashed_vertices == 33


class TestExample4TwoLevelScheme:
    def test_unmatched_primary_costs_at_most_19(self):
        # Case (1): the length-5 prefix is not an H2 primary key.  The paper
        # counts the H1 fallback at (5+2)(5-2+1)/2 = 14; our implementation
        # additionally pays the one α-vertex primary hash, totalling 19 —
        # still far below the flat scheme's 35.
        cost = failed_probe_cost(MultiLevelCandidates(alpha=5))
        assert cost == 5 + 14
        assert cost < 35

    def test_matched_primary_suffix_probing_bound(self):
        # Case (2): the prefix IS a primary key; suffix probing costs at
        # most 3+2+1 = 6 on top of the α-vertex primary hash — the paper's
        # "5 + (3+1)·3/2 = 11" bound.
        ml = MultiLevelCandidates(alpha=5)
        ml.add((8, 5, 0, 9, 1, 90, 91, 92))  # primary matches, suffix won't
        ml.stats.reset()
        # Falls back to H1 after the suffix probes fail (H1 is empty).
        assert ml.longest_match(EXAMPLE3_PATH, 0, 8) == 1
        suffix_and_primary = 5 + (3 + 2 + 1)
        h1_fallback = 5 + 4 + 3 + 2
        assert ml.stats.hashed_vertices == suffix_and_primary + h1_fallback
        # The paper's headline: the two-level worst case (14 in its
        # accounting) is under half the flat scheme's 35.
        assert 5 + (3 + 2 + 1) <= 11

    def test_optimal_alpha_near_half_delta(self):
        # Lemma 3: the worst case — primary key matches, every suffix and
        # H1 probe fails — is minimized near α = δ/2.
        costs = {}
        for alpha in (2, 4, 6):
            ml = MultiLevelCandidates(alpha=alpha)
            # Primary key matches the query, nothing else does.
            ml.add(EXAMPLE3_PATH[:alpha] + tuple(range(200, 200 + 8 - alpha)))
            ml.stats.reset()
            assert ml.longest_match(EXAMPLE3_PATH, 0, 8) == 1
            costs[alpha] = ml.stats.hashed_vertices
        assert costs[4] <= costs[2]
        assert costs[4] <= costs[6]


class TestTrieLinearBound:
    def test_any_probe_costs_at_most_delta_steps(self):
        # §IV-D: "the upper bound of each prefix match is optimized from
        # O(δ²) to O(δ)".
        assert failed_probe_cost(TrieCandidates()) <= 8

    def test_probe_counts_one_per_call(self):
        trie = TrieCandidates()
        trie.add((1, 2, 3))
        trie.stats.reset()
        trie.longest_match((1, 2, 3), 0, 8)
        assert trie.stats.probes == 1


class TestLemma3OnRealWorkload:
    @pytest.fixture(scope="class")
    def workload(self):
        from repro.core.config import OFFSConfig
        from repro.core.offs import OFFSCodec
        from repro.workloads.registry import make_dataset

        dataset = make_dataset("alibaba", "tiny")
        codec = OFFSCodec(OFFSConfig(iterations=4, sample_exponent=0))
        codec.fit(dataset)
        return dataset, codec.table

    def _total_cost(self, backend, dataset, table):
        from repro.core.compressor import compress_path

        for _, subpath in table:
            backend.add(subpath, 0)
        backend.stats.reset()
        for path in dataset:
            compress_path(path, table, backend)
        return backend.stats.snapshot()

    def test_cost_ordering_flat_vs_multilevel_vs_trie(self, workload):
        dataset, table = workload
        flat = self._total_cost(HashCandidates(), dataset, table)
        two_level = self._total_cost(MultiLevelCandidates(alpha=5), dataset, table)
        trie = self._total_cost(TrieCandidates(), dataset, table)
        # Lemma 3: the refined bound is below O(|P|·δ²)...
        assert two_level.hashed_vertices < flat.hashed_vertices
        # ...and the IV-D trie is linear per position.
        assert trie.hashed_vertices < two_level.hashed_vertices

    def test_stats_reset(self, workload):
        dataset, table = workload
        backend = HashCandidates()
        stats = self._total_cost(backend, dataset, table)
        assert stats.probes > 0
        backend.stats.reset()
        assert backend.stats.probes == 0 and backend.stats.hashed_vertices == 0

    def test_stats_addition(self):
        from repro.core.probestats import ProbeStats

        total = ProbeStats(2, 10) + ProbeStats(3, 5)
        assert total.probes == 5 and total.hashed_vertices == 15
