"""Unit tests for Algorithms 1 and 2 (per-path compression/decompression)."""

import pytest

from repro.core.compressor import (
    chunked,
    compress_dataset,
    compress_path,
    compress_paths_flat,
    decompress_dataset,
    decompress_path,
    decompress_paths_flat,
)
from repro.core.errors import TableError
from repro.core.flatcorpus import FlatCorpus
from repro.core.matcher import static_matcher_from_table
from repro.core.supernode_table import SupernodeTable


@pytest.fixture()
def table():
    return SupernodeTable(100, [(1, 2, 3), (1, 2), (4, 5)])


class TestCompress:
    def test_greedy_prefers_longest(self, table):
        # (1,2,3) beats (1,2) at position 0.
        assert compress_path((1, 2, 3, 9), table) == (100, 9)

    def test_falls_back_to_shorter_match(self, table):
        assert compress_path((1, 2, 9), table) == (101, 9)

    def test_unmatched_vertices_pass_through(self, table):
        assert compress_path((7, 8, 9), table) == (7, 8, 9)

    def test_consecutive_matches(self, table):
        assert compress_path((1, 2, 3, 4, 5), table) == (100, 102)

    def test_empty_path(self, table):
        assert compress_path((), table) == ()

    def test_no_overlapping_matches(self, table):
        # Greedy consumption: after matching (1,2,3), matching restarts at 4.
        # The embedded (4,5) still matches because it is aligned.
        assert compress_path((1, 2, 3, 4, 5, 1, 2), table) == (100, 102, 101)

    def test_empty_table(self):
        table = SupernodeTable(100)
        assert compress_path((1, 2, 3), table) == (1, 2, 3)

    def test_literal_colliding_with_id_space_raises(self, table):
        with pytest.raises(TableError, match="collides"):
            compress_path((100, 1), table)

    def test_shared_matcher_gives_same_result(self, table):
        matcher = static_matcher_from_table(table)
        path = (1, 2, 3, 4, 5, 9)
        assert compress_path(path, table, matcher) == compress_path(path, table)


class TestDecompress:
    def test_expands_supernodes(self, table):
        assert decompress_path((100, 9), table) == (1, 2, 3, 9)

    def test_passes_vertices_through(self, table):
        assert decompress_path((7, 8), table) == (7, 8)

    def test_mixed_stream(self, table):
        assert decompress_path((7, 101, 102), table) == (7, 1, 2, 4, 5)

    def test_unknown_supernode_raises(self, table):
        with pytest.raises(TableError):
            decompress_path((150,), table)

    def test_empty(self, table):
        assert decompress_path((), table) == ()


class TestRoundtrip:
    @pytest.mark.parametrize(
        "path",
        [
            (1, 2, 3),
            (1, 2),
            (4, 5, 1, 2, 3),
            (9, 8, 7, 6),
            (1, 2, 3, 1, 2, 3),
            (),
            (1,),
        ],
    )
    def test_roundtrip(self, table, path):
        assert decompress_path(compress_path(path, table), table) == path

    def test_dataset_roundtrip(self, table):
        paths = [(1, 2, 3, 9), (4, 5), (6, 7)]
        tokens = compress_dataset(paths, table)
        assert decompress_dataset(tokens, table) == [tuple(p) for p in paths]


class TestFlatBatch:
    PATHS = [(1, 2, 3, 9), (4, 5), (6, 7), (), (1, 2, 3, 4, 5, 1, 2)]

    @pytest.mark.parametrize("backend", ["hash", "multilevel", "trie", "rolling"])
    def test_matches_per_path_loop(self, table, backend):
        matcher = static_matcher_from_table(table, backend)
        expected = compress_dataset(self.PATHS, table)
        assert compress_paths_flat(self.PATHS, table, matcher) == expected

    def test_accepts_corpus_and_iterables(self, table):
        corpus = FlatCorpus.from_paths(self.PATHS)
        assert compress_paths_flat(corpus, table) == compress_dataset(self.PATHS, table)

    def test_as_corpus_round_trip(self, table):
        matcher = static_matcher_from_table(table, "rolling")
        tokens = compress_paths_flat(self.PATHS, table, matcher, as_corpus=True)
        assert isinstance(tokens, FlatCorpus)
        restored = decompress_paths_flat(tokens, table)
        assert restored == [tuple(p) for p in self.PATHS]

    def test_decompress_as_corpus(self, table):
        tokens = compress_dataset(self.PATHS, table)
        restored = decompress_paths_flat(tokens, table, as_corpus=True)
        assert isinstance(restored, FlatCorpus)
        assert restored.to_paths() == [tuple(p) for p in self.PATHS]

    def test_literal_collision_raises_for_every_backend(self, table):
        for backend in ("hash", "rolling"):
            matcher = static_matcher_from_table(table, backend)
            with pytest.raises(TableError, match="collides"):
                compress_paths_flat([(100, 1)], table, matcher)

    def test_empty_corpus(self, table):
        matcher = static_matcher_from_table(table, "rolling")
        assert compress_paths_flat([], table, matcher) == []
        assert decompress_paths_flat([], table) == []

    def test_adversarial_hash_bits_still_identical(self, table):
        from repro.core.rollhash import RollingHashCandidates

        matcher = RollingHashCandidates(hash_bits=2)
        for _, subpath in table:
            matcher.add(subpath, 0)
        expected = compress_dataset(self.PATHS, table)
        assert compress_paths_flat(self.PATHS, table, matcher) == expected


class TestChunked:
    def test_chunks_cover_everything_in_order(self):
        items = list(range(10))
        chunks = list(chunked(items, 3))
        assert [list(c) for c in chunks] == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]

    def test_single_chunk(self):
        assert [list(c) for c in chunked([1, 2], 5)] == [[1, 2]]

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            list(chunked([1], 0))

    @pytest.mark.parametrize("bad", [0, -1, -2048])
    def test_bad_chunk_size_raises_eagerly(self, bad):
        # Regression: chunked() used to be a bare generator, so a bad size
        # only surfaced at first iteration — storing the result silently
        # yielded nothing.  Validation must fire at call time.
        with pytest.raises(ValueError, match="chunk_size must be >= 1"):
            chunked([1, 2, 3], bad)
