"""Unit tests for Algorithms 1 and 2 (per-path compression/decompression)."""

import pytest

from repro.core.compressor import (
    chunked,
    compress_dataset,
    compress_path,
    decompress_dataset,
    decompress_path,
)
from repro.core.errors import TableError
from repro.core.matcher import static_matcher_from_table
from repro.core.supernode_table import SupernodeTable


@pytest.fixture()
def table():
    return SupernodeTable(100, [(1, 2, 3), (1, 2), (4, 5)])


class TestCompress:
    def test_greedy_prefers_longest(self, table):
        # (1,2,3) beats (1,2) at position 0.
        assert compress_path((1, 2, 3, 9), table) == (100, 9)

    def test_falls_back_to_shorter_match(self, table):
        assert compress_path((1, 2, 9), table) == (101, 9)

    def test_unmatched_vertices_pass_through(self, table):
        assert compress_path((7, 8, 9), table) == (7, 8, 9)

    def test_consecutive_matches(self, table):
        assert compress_path((1, 2, 3, 4, 5), table) == (100, 102)

    def test_empty_path(self, table):
        assert compress_path((), table) == ()

    def test_no_overlapping_matches(self, table):
        # Greedy consumption: after matching (1,2,3), matching restarts at 4.
        # The embedded (4,5) still matches because it is aligned.
        assert compress_path((1, 2, 3, 4, 5, 1, 2), table) == (100, 102, 101)

    def test_empty_table(self):
        table = SupernodeTable(100)
        assert compress_path((1, 2, 3), table) == (1, 2, 3)

    def test_literal_colliding_with_id_space_raises(self, table):
        with pytest.raises(TableError, match="collides"):
            compress_path((100, 1), table)

    def test_shared_matcher_gives_same_result(self, table):
        matcher = static_matcher_from_table(table)
        path = (1, 2, 3, 4, 5, 9)
        assert compress_path(path, table, matcher) == compress_path(path, table)


class TestDecompress:
    def test_expands_supernodes(self, table):
        assert decompress_path((100, 9), table) == (1, 2, 3, 9)

    def test_passes_vertices_through(self, table):
        assert decompress_path((7, 8), table) == (7, 8)

    def test_mixed_stream(self, table):
        assert decompress_path((7, 101, 102), table) == (7, 1, 2, 4, 5)

    def test_unknown_supernode_raises(self, table):
        with pytest.raises(TableError):
            decompress_path((150,), table)

    def test_empty(self, table):
        assert decompress_path((), table) == ()


class TestRoundtrip:
    @pytest.mark.parametrize(
        "path",
        [
            (1, 2, 3),
            (1, 2),
            (4, 5, 1, 2, 3),
            (9, 8, 7, 6),
            (1, 2, 3, 1, 2, 3),
            (),
            (1,),
        ],
    )
    def test_roundtrip(self, table, path):
        assert decompress_path(compress_path(path, table), table) == path

    def test_dataset_roundtrip(self, table):
        paths = [(1, 2, 3, 9), (4, 5), (6, 7)]
        tokens = compress_dataset(paths, table)
        assert decompress_dataset(tokens, table) == [tuple(p) for p in paths]


class TestChunked:
    def test_chunks_cover_everything_in_order(self):
        items = list(range(10))
        chunks = list(chunked(items, 3))
        assert [list(c) for c in chunks] == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]

    def test_single_chunk(self):
        assert [list(c) for c in chunked([1, 2], 5)] == [[1, 2]]

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            list(chunked([1], 0))
