"""Unit tests for the streaming compressor."""

import pytest

from repro.core.config import OFFSConfig
from repro.core.stream import StreamingCompressor
from repro.workloads.registry import make_dataset


def make_stream(train_after=50, **kwargs) -> StreamingCompressor:
    return StreamingCompressor(
        config=OFFSConfig(iterations=3, sample_exponent=0),
        train_after=train_after,
        **kwargs,
    )


class TestWarmup:
    def test_buffers_until_threshold(self):
        stream = make_stream(train_after=10)
        for i in range(9):
            assert stream.feed((1, 2, 3, 4 + i)) is None
        assert not stream.trained
        assert len(stream) == 9

    def test_trains_at_threshold_and_flushes(self):
        stream = make_stream(train_after=10)
        paths = [(1, 2, 3, 4, i + 10) for i in range(10)]
        for p in paths:
            stream.feed(p)
        assert stream.trained
        assert len(stream.store) == 10
        for i, p in enumerate(paths):
            assert stream.retrieve(i) == p

    def test_store_access_before_training_raises(self):
        stream = make_stream(train_after=10)
        stream.feed((1, 2, 3))
        with pytest.raises(RuntimeError, match="warming"):
            stream.store

    def test_train_now_forces_early_training(self):
        stream = make_stream(train_after=1000)
        stream.feed((1, 2, 3))
        stream.train_now()
        assert stream.trained
        assert stream.retrieve(0) == (1, 2, 3)

    def test_train_now_without_data_raises(self):
        with pytest.raises(RuntimeError, match="nothing buffered"):
            make_stream().train_now()

    def test_double_training_raises(self):
        stream = make_stream(train_after=1)
        stream.feed((1, 2, 3))
        with pytest.raises(RuntimeError, match="already"):
            stream.train_now()


class TestSteadyState:
    def test_ids_dense_across_warmup_boundary(self):
        stream = make_stream(train_after=5)
        ids = stream.feed_many([(1, 2, 3)] * 5)      # warm-up, ids None
        assert ids == [None] * 5
        late = stream.feed_many([(1, 2, 9), (2, 3, 9)])
        assert late == [5, 6]
        assert stream.retrieve(6) == (2, 3, 9)

    def test_unseen_ids_still_compressible(self):
        # Default base_id head-room covers ids up to 4x the warm-up maximum.
        stream = make_stream(train_after=5)
        stream.feed_many([(1, 2, 3)] * 5)
        high = (1, 2, 3, 4 * 3)  # within head-room, above warm-up max
        pid = stream.feed(high)
        assert stream.retrieve(pid) == high

    def test_explicit_base_id(self):
        stream = make_stream(train_after=3, base_id=10_000)
        stream.feed_many([(1, 2, 3)] * 3)
        pid = stream.feed((9_000, 1, 2))
        assert stream.retrieve(pid) == (9_000, 1, 2)

    def test_real_workload_roundtrip(self):
        dataset = make_dataset("sanfrancisco", "tiny")
        stream = make_stream(train_after=100)
        stream.feed_many(dataset)
        assert len(stream.store) == len(dataset)
        for i, path in enumerate(dataset):
            assert stream.retrieve(i) == path


class TestDrift:
    def test_no_drift_on_stationary_stream(self):
        stream = make_stream(train_after=50, window=30)
        stream.feed_many([(1, 2, 3, 4, 5)] * 120)
        assert not stream.drifted

    def test_drift_detected_when_patterns_change(self):
        stream = StreamingCompressor(
            config=OFFSConfig(iterations=3, sample_exponent=0),
            train_after=60,
            window=40,
            refit_ratio=0.8,
            base_id=100_000,
        )
        # Warm-up: one highly compressible pattern.
        stream.feed_many([(1, 2, 3, 4, 5, 6, 7, 8)] * 60)
        assert not stream.drifted
        # Regime change: paths the table knows nothing about.
        import random
        rng = random.Random(0)
        for _ in range(40):
            stream.feed(tuple(rng.sample(range(500, 2000), 8)))
        assert stream.drifted

    def test_window_must_fill_before_drift(self):
        stream = make_stream(train_after=5, window=100)
        stream.feed_many([(1, 2, 3)] * 10)
        assert not stream.drifted


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            StreamingCompressor(train_after=0)
        with pytest.raises(ValueError):
            StreamingCompressor(window=0)
        with pytest.raises(ValueError):
            StreamingCompressor(refit_ratio=0.0)

    def test_repr_shows_state(self):
        stream = make_stream(train_after=5)
        assert "warming" in repr(stream)
        stream.feed_many([(1, 2, 3)] * 5)
        assert "trained" in repr(stream)


class TestDriftObservability:
    """The drift watch publishes through the obs catalog (R004 names)."""

    def _drift_stream(self):
        return StreamingCompressor(
            config=OFFSConfig(iterations=3, sample_exponent=0),
            train_after=60,
            window=40,
            refit_ratio=0.8,
            base_id=100_000,
        )

    def test_drift_ratio_gauge_tracks_property(self):
        from repro.obs import catalog
        from repro.obs.runtime import instrumented

        with instrumented() as obs:
            stream = self._drift_stream()
            stream.feed_many([(1, 2, 3, 4, 5, 6, 7, 8)] * (60 + 40))
            assert stream.drift_ratio is not None
            gauge = obs.registry.gauge(catalog.STREAM_DRIFT_RATIO).value
            assert gauge == pytest.approx(stream.drift_ratio)
            # Stationary traffic compresses exactly as well as the warm-up.
            assert gauge == pytest.approx(1.0)
            assert obs.registry.counter(catalog.STREAM_DRIFTED).value == 0

    def test_drifted_counter_counts_transitions_once(self):
        import random

        from repro.obs import catalog
        from repro.obs.runtime import instrumented

        with instrumented() as obs:
            stream = self._drift_stream()
            stream.feed_many([(1, 2, 3, 4, 5, 6, 7, 8)] * 60)
            rng = random.Random(0)
            for _ in range(80):
                stream.feed(tuple(rng.sample(range(500, 2000), 8)))
            assert stream.drifted
            # One False->True transition, no matter how long it stays drifted.
            assert obs.registry.counter(catalog.STREAM_DRIFTED).value == 1
            assert obs.registry.gauge(catalog.STREAM_DRIFT_RATIO).value < 0.8

    def test_uninstrumented_stream_still_tracks_drift(self):
        import random

        stream = self._drift_stream()
        stream.feed_many([(1, 2, 3, 4, 5, 6, 7, 8)] * 60)
        rng = random.Random(0)
        for _ in range(40):
            stream.feed(tuple(rng.sample(range(500, 2000), 8)))
        assert stream.drifted and stream.drift_ratio is not None
