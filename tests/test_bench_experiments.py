"""Smoke tests for the experiment harness at test scale.

Full-shape assertions live in ``benchmarks/``; these tests verify the
experiment functions run, return well-formed tables and self-consistent
shapes at the ``tiny``/``small`` presets, so a broken bench is caught by
``pytest tests/`` without the benchmark run.
"""

import pytest

from repro.bench.experiments import (
    exp_ablation_matchers,
    exp_ablation_measure,
    exp_fig4_iterations,
    exp_fig4_sampling,
    exp_fig5_comparison,
    exp_fig6_decompression,
    exp_fig6_partial,
    exp_fig6_scalability,
    exp_table3,
)
from repro.bench.harness import BenchConfig, default_codecs, offs_pair

TINY = BenchConfig(size="tiny", sample_exponent=0)
SMALL = BenchConfig(size="small", sample_exponent=2)


class TestHarness:
    def test_offs_pair_names(self):
        default, fast = offs_pair(TINY)
        assert default.name == "OFFS" and fast.name == "OFFS*"
        assert fast.config.iterations < default.config.iterations

    def test_default_roster(self):
        names = [c.name for c in default_codecs(TINY)]
        assert names == ["OFFS", "OFFS*", "Dlz4", "RSS", "GFS"]

    def test_config_overrides(self):
        cfg = TINY.offs_config(delta=6, alpha=3)
        assert cfg.delta == 6 and cfg.sample_exponent == 0


class TestExperimentsRun:
    def test_table3(self):
        rows, shape = exp_table3(TINY)
        assert rows[0][0] == "Dataset"
        assert len(rows) == 5
        assert shape["rome_longest_avg"] == 1.0

    def test_fig4_iterations(self):
        rows, shape = exp_fig4_iterations("sanfrancisco", i_values=(0, 2, 4), config=TINY)
        assert len(rows) == 4
        assert shape["cr_rise_to_knee"] > 0  # CR improves with iterations

    def test_fig4_sampling(self):
        rows, shape = exp_fig4_sampling("sanfrancisco", k_values=(0, 1, 2), config=TINY)
        assert len(rows) == 4
        assert shape["cr_at_default"] > 1.0

    def test_fig5(self):
        rows, shape = exp_fig5_comparison(("sanfrancisco",), config=TINY)
        assert len(rows) == 6  # header + 5 codecs
        assert shape["offs_cr_avg"] > 1.0

    def test_fig6_decompression(self):
        rows, shape = exp_fig6_decompression(("sanfrancisco",), config=TINY)
        assert shape["offs_ds_avg"] > 0
        assert 0 <= shape["dict_ds_spread"] < 1

    def test_fig6_partial(self):
        rows, shape = exp_fig6_partial("sanfrancisco", fractions=(0.1, 1.0), config=TINY)
        assert shape["pds_min"] > 0

    def test_fig6_scalability(self):
        rows, shape = exp_fig6_scalability(
            "sanfrancisco", fractions=(0.5, 1.0), config=TINY
        )
        assert len(rows) == 3
        # Tables from larger samples should not be dramatically worse.
        assert shape["relative_loss_at_20pct"] < 0.5

    def test_ablation_matchers_identical_results(self):
        rows, shape = exp_ablation_matchers("sanfrancisco", config=TINY)
        assert shape["results_identical"] == 1.0

    def test_ablation_measure_offs_beats_gfs(self):
        rows, shape = exp_ablation_measure(config=SMALL)
        assert shape["offs_over_gfs"] > 1.5
