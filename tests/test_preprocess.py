"""Unit and property tests for the Section VI-A preprocessing pipeline."""

from hypothesis import given, strategies as st

import pytest

from repro.paths.dataset import PathDataset
from repro.paths.preprocess import (
    assign_new_ids,
    cut_cycles,
    drop_adjacent_duplicates,
    group_by_passing_vertex,
    group_by_terminals,
    preprocess_paths,
    prune_trivial,
)


class TestNewIds:
    def test_dense_first_seen_order(self):
        paths, mapping = assign_new_ids([["a", "b"], ["b", "c"]])
        assert paths == [[0, 1], [1, 2]]
        assert mapping == {"a": 0, "b": 1, "c": 2}

    def test_tuples_as_labels(self):
        # Grid cells arrive as (row, col) pairs before id assignment.
        paths, mapping = assign_new_ids([[(0, 0), (0, 1)], [(0, 1), (1, 1)]])
        assert paths == [[0, 1], [1, 2]]
        assert len(mapping) == 3

    def test_empty_input(self):
        paths, mapping = assign_new_ids([])
        assert paths == [] and mapping == {}


class TestNoise:
    def test_collapses_runs(self):
        # "keep only the first one and drop the rest"
        assert drop_adjacent_duplicates([1, 1, 1, 2, 2, 3]) == [1, 2, 3]

    def test_keeps_non_adjacent_duplicates(self):
        assert drop_adjacent_duplicates([1, 2, 1]) == [1, 2, 1]

    def test_empty(self):
        assert drop_adjacent_duplicates([]) == []


class TestCycles:
    def test_paper_rule_cut_before_recurring(self):
        # Cutting [1,2,3,2,4] before the recurring 2 gives [1,2,3] and [2,4].
        assert cut_cycles([1, 2, 3, 2, 4]) == [[1, 2, 3], [2, 4]]

    def test_no_cycle_is_one_piece(self):
        assert cut_cycles([1, 2, 3]) == [[1, 2, 3]]

    def test_multiple_cycles(self):
        pieces = cut_cycles([1, 2, 1, 3, 1, 4])
        assert pieces == [[1, 2], [1, 3], [1, 4]]

    def test_every_piece_is_simple(self):
        for piece in cut_cycles([5, 1, 2, 3, 1, 2, 4, 5, 6]):
            assert len(set(piece)) == len(piece)

    def test_empty(self):
        assert cut_cycles([]) == []


class TestPrune:
    def test_drops_short_paths(self):
        # "discarding paths of size no more than 2"
        kept = prune_trivial([[1], [1, 2], [1, 2, 3]])
        assert kept == [[1, 2, 3]]

    def test_custom_threshold(self):
        assert prune_trivial([[1, 2]], min_length=2) == [[1, 2]]


class TestPipeline:
    def test_end_to_end(self):
        raw = [
            [1, 1, 2, 3, 3, 2, 4],  # noise + cycle
            [5, 6],                 # trivial after nothing
            [7, 8, 9, 7],           # pure cycle
        ]
        ds, report = preprocess_paths(raw)
        assert list(ds) == [(1, 2, 3), (7, 8, 9)]
        assert report.input_paths == 3
        assert report.output_paths == 2
        assert report.duplicate_vertices_removed == 2
        assert report.cycles_cut == 2
        # [2,4] (cut piece), [5,6] and the trailing [7] all fall below 3.
        assert report.trivial_paths_dropped == 3
        assert "3 raw" in report.summary()

    def test_cut_piece_of_length_two_dropped(self):
        ds, report = preprocess_paths([[1, 2, 3, 2, 4]])
        # [2, 4] has only two vertices -> pruned.
        assert list(ds) == [(1, 2, 3)]
        assert report.trivial_paths_dropped == 1

    def test_empty_input(self):
        ds, report = preprocess_paths([])
        assert len(ds) == 0
        assert report.input_paths == 0


@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=30), max_size=40),
        max_size=25,
    )
)
def test_pipeline_output_always_simple_and_long_enough(raw):
    """The paper's guarantee: 'the output paths always stay simple'."""
    ds, _ = preprocess_paths(raw)
    for path in ds:
        assert len(path) >= 3
        assert len(set(path)) == len(path)


@given(
    st.lists(st.integers(min_value=0, max_value=20), min_size=0, max_size=60)
)
def test_cycle_cut_preserves_vertex_stream(walk):
    """Concatenating the pieces restores the (deduplicated) walk exactly."""
    deduped = drop_adjacent_duplicates(walk)
    pieces = cut_cycles(deduped)
    rebuilt = [v for piece in pieces for v in piece]
    assert rebuilt == deduped


class TestGrouping:
    def test_group_by_terminals(self):
        ds = PathDataset([[1, 2, 3], [1, 9, 3], [4, 5, 6]])
        groups = group_by_terminals(ds)
        assert set(groups) == {(1, 3), (4, 6)}
        assert len(groups[(1, 3)]) == 2

    def test_group_by_passing_vertex(self):
        ds = PathDataset([[1, 2, 3], [4, 2, 5], [6, 7, 8]])
        groups = group_by_passing_vertex(ds, [2, 7])
        assert len(groups[2]) == 2
        assert len(groups[7]) == 1
        assert set(groups) == {2, 7}

    def test_paths_can_recur_among_groups(self):
        ds = PathDataset([[1, 2, 7, 3]])
        groups = group_by_passing_vertex(ds, [2, 7])
        assert len(groups[2]) == 1 and len(groups[7]) == 1
