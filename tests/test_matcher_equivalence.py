"""Property-based equivalence of the matcher backends.

Algorithm 6 (flat hash), Algorithm 7 (two-level hash), the §IV-D trie and
the rolling-hash backend must be *observationally identical*: same contents
→ same weights, same longest-match answers at every position and cap.  Only
probe cost may differ.  Hypothesis drives random candidate sets and queries
through all of them at once.

The rolling backend appears twice: at full 64-bit hash width and at an
adversarial 2-bit width, where nearly every window hash collides — the
explicit verify step must keep answers exact regardless.
"""

from hypothesis import given, settings, strategies as st

from repro.core.matcher import HashCandidates
from repro.core.multilevel import MultiLevelCandidates
from repro.core.rollhash import RollingHashCandidates
from repro.core.trie import TrieCandidates

candidate = st.lists(st.integers(min_value=0, max_value=9), min_size=2, max_size=8).map(tuple)
candidates = st.lists(st.tuples(candidate, st.integers(min_value=1, max_value=5)), max_size=30)
query_path = st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=20).map(tuple)


def _populate(entries):
    backends = [
        HashCandidates(),
        MultiLevelCandidates(alpha=4),
        TrieCandidates(),
        RollingHashCandidates(),
        RollingHashCandidates(hash_bits=2),  # adversarial collision regime
    ]
    for seq, weight in entries:
        for backend in backends:
            backend.add(seq, weight)
    return backends


def _label(index, backend):
    return f"{index}:{type(backend).__name__}"


@given(candidates, query_path, st.integers(min_value=1, max_value=10))
def test_longest_match_identical(entries, path, cap):
    backends = _populate(entries)
    answers = {
        _label(i, b): [b.longest_match(path, pos, cap) for pos in range(len(path))]
        for i, b in enumerate(backends)
    }
    assert len(set(map(tuple, answers.values()))) == 1, answers


@given(candidates)
def test_contents_identical(entries):
    backends = _populate(entries)
    views = [dict(b.items()) for b in backends]
    assert all(view == views[0] for view in views)


@given(candidates, st.integers(min_value=1, max_value=10))
def test_top_candidates_identical(entries, keep):
    backends = _populate(entries)
    tops = [b.top_candidates(keep) for b in backends]
    assert all(top == tops[0] for top in tops)


@given(candidates, st.lists(candidate, max_size=10))
def test_discard_identical(entries, to_discard):
    backends = _populate(entries)
    for seq in to_discard:
        for b in backends:
            b.discard(seq)
    views = [dict(b.items()) for b in backends]
    assert all(view == views[0] for view in views)
    assert len({len(b) for b in backends}) == 1


@settings(max_examples=30)
@given(candidates, query_path)
def test_prune_then_match_identical(entries, path):
    backends = _populate(entries)
    for b in backends:
        b.prune_to_top(5)
    for pos in range(len(path)):
        answers = {b.longest_match(path, pos, 8) for b in backends}
        assert len(answers) == 1
