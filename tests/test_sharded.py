"""Differential and behaviour tests for the sharded path store.

The central contract: a :class:`ShardedPathStore` over
:func:`build_sharded_store` output answers every query *identically* to the
monolithic archive of the same data — byte-identical for token/retrieve
surfaces, value-identical for the fan-out queries — at every shard count,
both partition functions, and any build process count.  Plus: streaming
ingest seals correct immutable shards with bounded memtables, manifests
reject corruption, and fan-out stores cross fork boundaries safely.
"""

import multiprocessing
import os
import pickle

import pytest

from repro.core.config import OFFSConfig
from repro.core.errors import (
    CorruptDataError,
    InvalidInputError,
    PathIdError,
    StateError,
    TruncatedDataError,
)
from repro.core.mapped import MappedPathStore
from repro.core.offs import OFFSCodec
from repro.core.serialize import dumps_store_v2
from repro.core.sharded import (
    MANIFEST_MAGIC,
    ShardInfo,
    ShardManifest,
    ShardedIngest,
    ShardedPathStore,
    build_sharded_store,
    dumps_manifest,
    loads_manifest,
    open_store,
    partition_corpus,
    shard_filename,
)
from repro.core.store import CompressedPathStore
from repro.paths.dataset import PathDataset
from repro.queries.retrieval import PathQueryEngine
from repro.queries.subpath_search import SubpathSearcher

from conftest import make_fd_leak_guard

# Shard mmaps, pool workers and manifest files must all be released when
# this module's fixtures tear down (the runtime twin of R008).
_fd_leak_guard = make_fd_leak_guard()


def _dataset():
    # Repetitive enough to compress, varied enough that shards differ; the
    # wide path exercises multi-byte varints inside a shard payload.
    wide = [7, 130, 16400, 1 << 21, (1 << 28) + 3]
    paths = []
    for i in range(40):
        paths.append([1, 2, 3, 4, 5, 100 + i])
        paths.append([9, 2, 3, 4, 200 + (i % 7)])
    paths += [wide] * 3 + [[1, 2, 3] + wide] + [[42]]
    return PathDataset(paths)


@pytest.fixture(scope="module")
def corpus_and_table():
    ds = _dataset()
    codec = OFFSCodec(
        OFFSConfig(iterations=3, sample_exponent=0), base_id=(1 << 28) + 10
    )
    corpus = ds.to_flat()
    codec.fit(corpus)
    return corpus, codec.table


@pytest.fixture(scope="module")
def monolithic(corpus_and_table):
    corpus, table = corpus_and_table
    store = CompressedPathStore(table)
    store.extend(corpus.to_paths())
    return store


class TestManifestCodec:
    def _manifest(self):
        return ShardManifest(
            "range",
            [
                ShardInfo("a.shard-00000.rpc2", 0, 10, 0xDEAD),
                ShardInfo("a.shard-00001.rpc2", 10, 5, 0xBEEF),
            ],
        )

    def test_round_trip(self):
        manifest = self._manifest()
        again = loads_manifest(dumps_manifest(manifest))
        assert again.partition == "range"
        assert again.path_count == 15
        assert [s.as_json() for s in again.shards] == [
            s.as_json() for s in manifest.shards
        ]

    def test_magic_and_truncation(self):
        blob = dumps_manifest(self._manifest())
        assert blob[:4] == MANIFEST_MAGIC
        with pytest.raises(CorruptDataError):
            loads_manifest(b"NOPE" + blob[4:])
        with pytest.raises(TruncatedDataError):
            loads_manifest(blob[:8])
        with pytest.raises(TruncatedDataError):
            loads_manifest(blob[:-3])

    def test_json_crc_detects_corruption(self):
        blob = bytearray(dumps_manifest(self._manifest()))
        blob[-1] ^= 0xFF
        with pytest.raises(CorruptDataError):
            loads_manifest(bytes(blob))

    def test_range_must_tile(self):
        with pytest.raises(CorruptDataError):
            ShardManifest(
                "range",
                [ShardInfo("a", 0, 10, 0), ShardInfo("b", 11, 5, 0)],
            )

    def test_hash_counts_must_match_modulo_placement(self):
        with pytest.raises(CorruptDataError):
            ShardManifest(
                "hash",
                [ShardInfo("a", None, 10, 0), ShardInfo("b", None, 2, 0)],
            )

    def test_unknown_partition_rejected(self):
        with pytest.raises(InvalidInputError):
            ShardManifest("zebra", [])

    def test_routing_is_invertible(self):
        for partition, counts in (
            ("range", [4, 4, 3]),
            ("hash", [4, 4, 3]),
        ):
            if partition == "range":
                starts = [0, 4, 8]
                infos = [
                    ShardInfo(f"f{i}", starts[i], counts[i], 0) for i in range(3)
                ]
            else:
                infos = [ShardInfo(f"f{i}", None, counts[i], 0) for i in range(3)]
            manifest = ShardManifest(partition, infos)
            seen = set()
            for gid in range(manifest.path_count):
                shard, local = manifest.locate(gid)
                assert manifest.global_id(shard, local) == gid
                seen.add((shard, local))
            assert len(seen) == manifest.path_count
        with pytest.raises(PathIdError):
            manifest.locate(manifest.path_count)
        with pytest.raises(PathIdError):
            manifest.locate(-1)


class TestPartitionCorpus:
    def test_range_preserves_order_and_balance(self, corpus_and_table):
        corpus, _ = corpus_and_table
        parts = partition_corpus(corpus, 3, "range")
        assert sum(len(p) for p in parts) == len(corpus)
        assert max(len(p) for p in parts) - min(len(p) for p in parts) <= 1
        flat = [path for part in parts for path in part.to_paths()]
        assert flat == corpus.to_paths()

    def test_hash_interleaves(self, corpus_and_table):
        corpus, _ = corpus_and_table
        parts = partition_corpus(corpus, 4, "hash")
        paths = corpus.to_paths()
        for index, part in enumerate(parts):
            assert part.to_paths() == paths[index::4]

    def test_bad_arguments(self, corpus_and_table):
        corpus, _ = corpus_and_table
        with pytest.raises(InvalidInputError):
            partition_corpus(corpus, 0)
        with pytest.raises(InvalidInputError):
            partition_corpus(corpus, 2, "zebra")


@pytest.fixture(
    scope="module",
    params=[("range", 2), ("range", 5), ("hash", 2), ("hash", 5)],
    ids=lambda p: f"{p[0]}-{p[1]}",
)
def sharded(request, corpus_and_table, tmp_path_factory):
    partition, shards = request.param
    corpus, table = corpus_and_table
    out = str(tmp_path_factory.mktemp("sharded") / f"{partition}{shards}.rpsm")
    build_sharded_store(
        corpus, table, out, shards=shards, processes=2, partition=partition
    )
    store = ShardedPathStore.open(out)
    yield store
    store.close()


class TestDifferentialIdentity:
    """Every endpoint, sharded vs monolithic, at 2 and 5 shards × both fns."""

    def test_len_and_tokens_byte_identical(self, sharded, monolithic):
        assert len(sharded) == len(monolithic)
        assert sharded.tokens() == monolithic.tokens()
        for pid in range(len(monolithic)):
            assert sharded.token(pid) == monolithic.token(pid)

    def test_retrieve_surfaces(self, sharded, monolithic):
        for pid in range(len(monolithic)):
            assert sharded.retrieve(pid) == monolithic.retrieve(pid)
            assert sharded.expanded_length(pid) == len(monolithic.retrieve(pid))
        assert sharded.retrieve_all() == monolithic.retrieve_all()
        assert list(sharded) == list(monolithic)

    def test_retrieve_slices(self, sharded, monolithic):
        for pid in (0, 1, len(monolithic) - 1):
            for window in ((None, None), (1, 3), (0, 1), (-1, None), (2, -1)):
                assert sharded.retrieve_slice(pid, *window) == tuple(
                    monolithic.retrieve(pid)[slice(*window)]
                )

    def test_retrieve_many_and_batch(self, sharded, monolithic):
        n = len(monolithic)
        for ids in ([], [0], [n - 1, 0, 3], list(range(n)), [2, 2, 2], [5, 3, 5]):
            expected = monolithic.retrieve_many(ids)
            assert sharded.retrieve_many(ids) == expected
            assert sharded.retrieve_batch(ids) == expected
        assert sharded.retrieve_batch(pid for pid in [4, 1, 4]) == \
            monolithic.retrieve_many([4, 1, 4])
        with pytest.raises(PathIdError):
            sharded.retrieve_batch([0, n])
        with pytest.raises(PathIdError):
            sharded.retrieve_many([0, -1])

    def test_fanout_queries_match_engines(self, sharded, monolithic):
        engine = PathQueryEngine(monolithic)
        for vertex in (2, 42, 7, 99999):
            assert sharded.paths_containing(vertex) == \
                engine.index.paths_containing(vertex)
            assert sharded.affected_paths(vertex) == engine.affected_paths(vertex)
        for src, dst in ((1, 105), (9, 200), (1, 42), (7, (1 << 28) + 3)):
            assert sharded.paths_between(src, dst) == engine.paths_between(src, dst)
        searcher = SubpathSearcher(monolithic, engine.index)
        for query in ((2, 3, 4), (42,), (1, 2, 3), (5, 6)):
            assert sharded.subpath_search_ids(query) == searcher.search_ids(query)
            assert sharded.subpath_search(query) == searcher.search(query)

    def test_vertex_index_view(self, sharded, monolithic):
        engine = PathQueryEngine(monolithic)
        view = sharded.vertex_index()
        assert view.paths_containing(3) == engine.index.paths_containing(3)
        assert view.paths_containing_all((2, 3)) == \
            engine.index.paths_containing_all((2, 3))
        assert view.paths_containing_any((42, 9)) == \
            engine.index.paths_containing_any((42, 9))

    def test_size_accounting(self, sharded, monolithic):
        assert sharded.compressed_symbol_count() == monolithic.compressed_symbol_count()
        assert sharded.compressed_size_bytes() == monolithic.compressed_size_bytes()
        assert sharded.raw_size_bytes() == monolithic.raw_size_bytes()
        assert sharded.compression_ratio() == pytest.approx(
            monolithic.compression_ratio()
        )

    def test_table_shared_and_fingerprinted(self, sharded, monolithic):
        assert len(sharded.table_fingerprints) == 1
        assert sharded.table == monolithic.table


class TestBuildDeterminism:
    def test_identical_across_process_counts(self, corpus_and_table, tmp_path):
        corpus, table = corpus_and_table
        blobs = []
        for processes in (1, 3):
            out = str(tmp_path / f"p{processes}.rpsm")
            build_sharded_store(
                corpus, table, out, shards=3, processes=processes
            )
            shard_blobs = []
            for i in range(3):
                shard = str(tmp_path / shard_filename(f"p{processes}", i))
                with open(shard, "rb") as fh:
                    shard_blobs.append(fh.read())
            blobs.append(shard_blobs)
        assert blobs[0] == blobs[1]

    def test_shards_are_self_contained_v2_files(self, corpus_and_table, tmp_path):
        corpus, table = corpus_and_table
        out = str(tmp_path / "solo.rpsm")
        build_sharded_store(corpus, table, out, shards=2)
        # Any v2 tooling opens a shard directly, no manifest required.
        shard0 = MappedPathStore.open(str(tmp_path / shard_filename("solo", 0)))
        assert shard0.table == table
        assert shard0.retrieve(0) == corpus.to_paths()[0]
        shard0.close()

    def test_single_shard_equals_monolithic_file(self, corpus_and_table, monolithic, tmp_path):
        corpus, table = corpus_and_table
        out = str(tmp_path / "one.rpsm")
        build_sharded_store(corpus, table, out, shards=1)
        with open(str(tmp_path / shard_filename("one", 0)), "rb") as fh:
            assert fh.read() == dumps_store_v2(monolithic)


class TestOpenStoreSniffing:
    def test_all_three_magics(self, corpus_and_table, monolithic, tmp_path):
        corpus, table = corpus_and_table
        v2 = str(tmp_path / "m.rpc2")
        with open(v2, "wb") as fh:
            fh.write(dumps_store_v2(monolithic))
        manifest = str(tmp_path / "m.rpsm")
        build_sharded_store(corpus, table, manifest, shards=2)
        from repro.core.serialize import dumps_store

        v1 = str(tmp_path / "m.offs")
        with open(v1, "wb") as fh:
            fh.write(dumps_store(monolithic))
        assert isinstance(open_store(v2), MappedPathStore)
        assert isinstance(open_store(manifest), ShardedPathStore)
        assert isinstance(open_store(v1), CompressedPathStore)

    def test_empty_file_is_truncation(self, tmp_path):
        empty = str(tmp_path / "empty.rpc2")
        open(empty, "wb").close()
        with pytest.raises(TruncatedDataError, match="byte offset 0"):
            open_store(empty)


class TestCorruptionDetection:
    def _built(self, corpus_and_table, tmp_path):
        corpus, table = corpus_and_table
        out = str(tmp_path / "c.rpsm")
        build_sharded_store(corpus, table, out, shards=2)
        return out, str(tmp_path / shard_filename("c", 0))

    def test_fingerprint_mismatch_detected(self, corpus_and_table, tmp_path):
        manifest_path, shard0 = self._built(corpus_and_table, tmp_path)
        with open(manifest_path, "rb") as fh:
            manifest = loads_manifest(fh.read())
        manifest.shards[0].table_crc ^= 0xFF
        with open(manifest_path, "wb") as fh:
            fh.write(dumps_manifest(manifest))
        store = ShardedPathStore.open(manifest_path)
        with pytest.raises(CorruptDataError, match="fingerprint"):
            store.retrieve(0)

    def test_shard_count_mismatch_detected(self, corpus_and_table, tmp_path):
        manifest_path, shard0 = self._built(corpus_and_table, tmp_path)
        with open(manifest_path, "rb") as fh:
            manifest = loads_manifest(fh.read())
        # Swap the two shard files on disk: counts differ, so open fails.
        shard1 = shard0.replace("shard-00000", "shard-00001")
        a, b = open(shard0, "rb").read(), open(shard1, "rb").read()
        with open(shard0, "wb") as fh:
            fh.write(b)
        with open(shard1, "wb") as fh:
            fh.write(a)
        store = ShardedPathStore.open(manifest_path)
        with pytest.raises(CorruptDataError):
            store.check()

    def test_truncated_shard_detected(self, corpus_and_table, tmp_path):
        manifest_path, shard0 = self._built(corpus_and_table, tmp_path)
        blob = open(shard0, "rb").read()
        with open(shard0, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        store = ShardedPathStore.open(manifest_path)
        with pytest.raises(CorruptDataError):
            store.check()


_fork_required = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method not available on this platform",
)


class TestProcessBoundaries:
    def test_pickle_round_trip_by_path(self, sharded):
        clone = pickle.loads(pickle.dumps(sharded))
        assert clone.retrieve_all() == sharded.retrieve_all()
        assert clone.owner_pid == os.getpid()
        clone.close()

    def test_process_local_same_process_is_self(self, sharded):
        assert sharded.process_local() is sharded

    def test_reopen_is_fresh(self, sharded):
        again = sharded.reopen()
        assert again is not sharded
        assert again.retrieve(0) == sharded.retrieve(0)
        again.close()

    def test_unbacked_store_refuses_pickle_and_reopen(self, sharded):
        bare = ShardedPathStore(sharded.manifest, sharded.directory)
        with pytest.raises(StateError):
            pickle.dumps(bare)
        with pytest.raises(StateError):
            bare.reopen()

    @_fork_required
    def test_fork_after_open_child_and_parent_identical(
        self, corpus_and_table, monolithic, tmp_path
    ):
        """Fork after open (shards already mapped); child must re-map via
        process_local() and both sides answer byte-identically."""
        corpus, table = corpus_and_table
        out = str(tmp_path / "fork.rpsm")
        build_sharded_store(corpus, table, out, shards=3)
        store = ShardedPathStore.open(out)
        expected = {
            "paths": monolithic.retrieve_all(),
            "batch": monolithic.retrieve_many([0, 7, 3]),
            "between": PathQueryEngine(monolithic).paths_between(1, 105),
        }
        # Touch every shard pre-fork so mapped state crosses the fork.
        assert store.retrieve_all() == expected["paths"]

        context = multiprocessing.get_context("fork")
        parent_conn, child_conn = context.Pipe()

        def child() -> None:
            local = store.process_local()
            child_conn.send({
                "reopened": local is not store,
                "owner_is_child": local.owner_pid == os.getpid(),
                "paths": local.retrieve_all(),
                "batch": local.retrieve_batch([0, 7, 3]),
                "between": local.paths_between(1, 105),
            })
            local.close()

        worker = context.Process(target=child)
        worker.start()
        result = parent_conn.recv()
        worker.join(10.0)
        assert worker.exitcode == 0
        assert result["reopened"] is True
        assert result["owner_is_child"] is True
        assert result["paths"] == expected["paths"]
        assert result["batch"] == expected["batch"]
        assert result["between"] == expected["between"]
        # The parent's store is untouched by the child's lifecycle.
        assert store.owner_pid == os.getpid()
        assert store.retrieve_all() == expected["paths"]
        assert store.retrieve_batch([0, 7, 3]) == expected["batch"]
        assert store.paths_between(1, 105) == expected["between"]
        store.close()


class TestStreamingIngest:
    def _paths(self, n=700):
        # Deterministic mildly varied traffic over a fixed vocabulary.
        return [
            (1 + (i % 9), 2, 3, 4, 5 + (i % 4), 60 + (i % 11))
            for i in range(n)
        ]

    def test_seal_and_reopen_round_trip(self, tmp_path):
        paths = self._paths()
        out = str(tmp_path / "stream.rpsm")
        with ShardedIngest(out, train_after=50, memtable_paths=200, window=30) as ingest:
            gids = ingest.feed_many(paths)
            assert len(ingest) == len(paths)
        store = ShardedPathStore.open(out)
        assert len(store) == len(paths)
        assert store.shard_count >= len(paths) // 200
        assert store.retrieve_all() == [tuple(p) for p in paths]
        # Steady-state global ids point at the right paths forever.
        for i, gid in enumerate(gids):
            if gid is not None:
                assert store.retrieve(gid) == tuple(paths[i])
        store.close()

    def test_memtable_memory_is_bounded(self, tmp_path):
        out = str(tmp_path / "bounded.rpsm")
        with ShardedIngest(out, train_after=50, memtable_paths=100, window=30) as ingest:
            high_water = 0
            for path in self._paths(650):
                ingest.feed(path)
                high_water = max(high_water, len(ingest._stream))
                # The live memtable never exceeds its seal threshold.
                assert len(ingest._stream) <= 100
            assert ingest.sealed_paths >= 600
        assert high_water <= 100

    def test_background_seal_identical(self, tmp_path):
        paths = self._paths()
        fg, bg = str(tmp_path / "fg.rpsm"), str(tmp_path / "bg.rpsm")
        with ShardedIngest(fg, train_after=50, memtable_paths=200, window=30) as ingest:
            ingest.feed_many(paths)
        with ShardedIngest(
            bg, train_after=50, memtable_paths=200, window=30, background=True
        ) as ingest:
            ingest.feed_many(paths)
        with open(fg, "rb") as fh:
            fg_manifest = loads_manifest(fh.read())
        with open(bg, "rb") as fh:
            bg_manifest = loads_manifest(fh.read())
        assert [(s.start, s.count, s.table_crc) for s in fg_manifest.shards] == \
            [(s.start, s.count, s.table_crc) for s in bg_manifest.shards]
        for i in range(fg_manifest.shard_count):
            a = open(str(tmp_path / shard_filename("fg", i)), "rb").read()
            b = open(str(tmp_path / shard_filename("bg", i)), "rb").read()
            assert a == b

    def test_manifest_readable_between_seals(self, tmp_path):
        paths = self._paths(500)
        out = str(tmp_path / "live.rpsm")
        ingest = ShardedIngest(out, train_after=50, memtable_paths=100, window=30)
        ingest.feed_many(paths)
        # Not closed: readers still see every *sealed* prefix, consistently.
        store = ShardedPathStore.open(out)
        sealed = len(store)
        assert sealed == ingest.sealed_paths
        assert store.retrieve_all() == [tuple(p) for p in paths[:sealed]]
        store.close()
        ingest.close()

    def test_refit_on_drift_starts_new_fingerprint(self, tmp_path):
        out = str(tmp_path / "refit.rpsm")
        stable = [(1, 2, 3, 4, 5, 6, 7, 8)] * 200
        import random

        rng = random.Random(0)
        shifted = [tuple(rng.sample(range(500, 2000), 8)) for _ in range(200)]
        with ShardedIngest(
            out, train_after=50, memtable_paths=100, window=40,
            refit_ratio=0.8, refit_on_drift=True, base_id=100_000,
        ) as ingest:
            ingest.feed_many(stable)
            ingest.feed_many(shifted)
            assert ingest.refits >= 1
        store = ShardedPathStore.open(out)
        assert len(store.table_fingerprints) >= 2
        with pytest.raises(StateError):
            store.table  # no single shared table after a refit
        # Every path still round-trips — shards are self-contained.
        assert store.retrieve_all() == [tuple(p) for p in stable + shifted]
        # Fan-out queries stay correct across heterogeneous tables.
        expected = sorted(
            i for i, p in enumerate(stable + shifted) if 1 in p
        )
        assert store.paths_containing(1) == expected
        store.close()

    def test_close_is_idempotent_and_seals_tail(self, tmp_path):
        out = str(tmp_path / "tail.rpsm")
        ingest = ShardedIngest(out, train_after=10, memtable_paths=1000, window=5)
        ingest.feed_many(self._paths(37))  # never hits the seal threshold
        assert ingest.close() == out
        assert ingest.close() == out
        with pytest.raises(StateError):
            ingest.feed((1, 2))
        store = ShardedPathStore.open(out)
        assert len(store) == 37
        store.close()

    def test_empty_ingest_writes_valid_empty_manifest(self, tmp_path):
        out = str(tmp_path / "none.rpsm")
        ShardedIngest(out, train_after=10, memtable_paths=100).close()
        store = ShardedPathStore.open(out)
        assert len(store) == 0 and store.shard_count == 0
        store.close()

    def test_warmup_smaller_than_memtable_enforced(self, tmp_path):
        with pytest.raises(InvalidInputError):
            ShardedIngest(str(tmp_path / "x.rpsm"), train_after=500, memtable_paths=100)
