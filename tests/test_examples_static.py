"""Static checks over the example scripts.

The examples are living documentation; these tests keep them honest without
paying their full runtime in the unit suite: every script must parse, carry
a real module docstring with a run instruction, define ``main()``, and
guard execution behind ``__main__``.  (The examples themselves are executed
in the recorded benchmark/verification runs.)
"""

import ast
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_expected_example_set_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "cloud_monitoring.py",
        "taxi_trajectories.py",
        "tuning_parameters.py",
        "streaming_archive.py",
    } <= names
    assert len(names) >= 5


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
class TestExampleScript:
    def test_parses(self, path):
        tree = ast.parse(path.read_text(), filename=str(path))
        assert tree is not None

    def test_has_docstring_with_run_instruction(self, path):
        tree = ast.parse(path.read_text())
        docstring = ast.get_docstring(tree)
        assert docstring, f"{path.name} needs a module docstring"
        assert f"python examples/{path.name}" in docstring

    def test_defines_main(self, path):
        tree = ast.parse(path.read_text())
        functions = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
        assert "main" in functions

    def test_has_main_guard(self, path):
        assert 'if __name__ == "__main__":' in path.read_text()

    def test_imports_resolve(self, path):
        """Every `from repro...` import in the example must exist."""
        import importlib

        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module and \
                    node.module.startswith("repro"):
                module = importlib.import_module(node.module)
                for alias in node.names:
                    assert hasattr(module, alias.name), (
                        f"{path.name}: {node.module}.{alias.name} missing"
                    )
