"""Unit tests for the path abstraction (Section II-A definitions)."""

import pytest

from repro.paths.path import (
    Path,
    common_prefix_length,
    is_simple,
    is_valid_path,
    subpath,
    subpaths_of_length,
)


class TestValidity:
    def test_valid_path(self):
        assert is_valid_path([0, 1, 2])

    def test_empty_is_valid(self):
        assert is_valid_path([])

    def test_negative_id_invalid(self):
        assert not is_valid_path([1, -2, 3])

    def test_non_integer_invalid(self):
        assert not is_valid_path([1, 2.5, 3])

    def test_bool_is_not_a_vertex(self):
        # bool subclasses int; a path of Trues is almost certainly a bug.
        assert not is_valid_path([True, 2])


class TestSimplicity:
    def test_simple(self):
        assert is_simple([1, 2, 3])

    def test_duplicate_not_simple(self):
        assert not is_simple([1, 2, 1])

    def test_empty_is_simple(self):
        assert is_simple([])


class TestSubpath:
    def test_paper_example(self):
        # "given a path P = {1,2,3,5,8,13}, we have P[1:4] = {2,3,5}"
        p = [1, 2, 3, 5, 8, 13]
        assert subpath(p, 1, 4) == (2, 3, 5)

    def test_full_range(self):
        assert subpath([1, 2, 3], 0, 3) == (1, 2, 3)

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            subpath([1, 2, 3], 1, 5)

    def test_inverted_range_raises(self):
        with pytest.raises(IndexError):
            subpath([1, 2, 3], 2, 1)


class TestSubpathsOfLength:
    def test_all_pairs(self):
        assert list(subpaths_of_length([1, 2, 3], 2)) == [(1, 2), (2, 3)]

    def test_whole_path(self):
        assert list(subpaths_of_length([1, 2, 3], 3)) == [(1, 2, 3)]

    def test_too_long_yields_nothing(self):
        assert list(subpaths_of_length([1, 2], 3)) == []

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            list(subpaths_of_length([1, 2], 0))


class TestCommonPrefix:
    def test_shared_prefix(self):
        assert common_prefix_length([1, 2, 3, 4], [1, 2, 9]) == 2

    def test_disjoint(self):
        assert common_prefix_length([1, 2], [3, 4]) == 0

    def test_one_contains_other(self):
        assert common_prefix_length([1, 2], [1, 2, 3]) == 2


class TestPathClass:
    def test_behaves_like_tuple(self):
        p = Path.of([1, 2, 3, 5, 8, 13])
        assert p[4] == 8
        assert p[1:4] == (2, 3, 5)
        assert len(p) == 6

    def test_hashable(self):
        assert {Path.of([1, 2]): "x"}[Path.of([1, 2])] == "x"

    def test_is_simple_property(self):
        assert Path.of([1, 2, 3]).is_simple
        assert not Path.of([1, 2, 1]).is_simple

    def test_edges(self):
        assert Path.of([1, 2, 3]).edges == [(1, 2), (2, 3)]

    def test_terminals(self):
        assert Path.of([4, 5, 6]).terminals() == (4, 6)

    def test_terminals_of_empty_raises(self):
        with pytest.raises(ValueError):
            Path.of([]).terminals()

    def test_contains_vertex(self):
        assert Path.of([1, 2, 3]).contains_vertex(2)
        assert not Path.of([1, 2, 3]).contains_vertex(9)

    def test_rejects_negative_ids(self):
        with pytest.raises(ValueError):
            Path.of([1, -1])

    def test_constructor_matches_of(self):
        assert Path([1, 2]) == Path.of([1, 2])

    def test_repr_roundtrip_readable(self):
        assert repr(Path.of([1, 2])) == "Path([1, 2])"
