"""Unit tests for the segmented archive."""

import pytest

from repro.core.config import OFFSConfig
from repro.core.errors import CorruptDataError, PathIdError
from repro.core.segment import SegmentedArchive


CFG = OFFSConfig(iterations=3, sample_exponent=0)


def day(prefix: int, count: int = 20):
    """A day's traffic: one hot route with per-day machines."""
    hot = [prefix + i for i in range(5)]
    return [tuple([9, *hot, 8])] * count + [tuple([7, *hot])] * (count // 2)


@pytest.fixture()
def archive():
    archive = SegmentedArchive(config=CFG, base_id=100_000)
    day1, day2 = day(100), day(200)
    archive.start_segment(day1)
    archive.extend(day1)
    archive.rotate(day2)
    archive.extend(day2)
    return archive, day1, day2


class TestIngest:
    def test_append_before_segment_fails(self):
        archive = SegmentedArchive(config=CFG)
        with pytest.raises(RuntimeError, match="start_segment"):
            archive.append((1, 2, 3))

    def test_segment_needs_training_data(self):
        archive = SegmentedArchive(config=CFG)
        with pytest.raises(ValueError):
            archive.start_segment([])

    def test_global_ids_are_dense(self, archive):
        arc, day1, day2 = archive
        assert len(arc) == len(day1) + len(day2)
        assert arc.segment_count == 2

    def test_each_segment_has_its_own_table(self, archive):
        arc, _, _ = archive
        tables = [s.table for s in arc.segments()]
        assert tables[0].subpaths != tables[1].subpaths


class TestRetrieval:
    def test_cross_segment_retrieval(self, archive):
        arc, day1, day2 = archive
        assert arc.retrieve(0) == day1[0]
        assert arc.retrieve(len(day1)) == day2[0]
        assert arc.retrieve(len(arc) - 1) == day2[-1]

    def test_retrieve_all_in_order(self, archive):
        arc, day1, day2 = archive
        assert arc.retrieve_all() == list(day1) + list(day2)

    def test_retrieve_many(self, archive):
        arc, day1, day2 = archive
        ids = [len(day1), 0]
        assert arc.retrieve_many(ids) == [day2[0], day1[0]]

    def test_unknown_id(self, archive):
        arc, _, _ = archive
        with pytest.raises(PathIdError):
            arc.retrieve(len(arc))

    def test_empty_archive(self):
        arc = SegmentedArchive(config=CFG)
        assert len(arc) == 0
        assert arc.retrieve_all() == []
        assert arc.compression_ratio() == 0.0


class TestQueries:
    def test_case1_across_segments(self, archive):
        arc, day1, day2 = archive
        # Vertex 9 leads paths in both days.
        ids = arc.paths_containing(9)
        expected = [i for i, p in enumerate(list(day1) + list(day2)) if 9 in p]
        assert ids == expected

    def test_case2_across_segments(self, archive):
        arc, day1, day2 = archive
        matches = arc.paths_between(9, 8)
        expected = [p for p in list(day1) + list(day2) if p[0] == 9 and p[-1] == 8]
        assert matches == expected

    def test_affected_vertices(self, archive):
        arc, day1, day2 = archive
        affected = arc.affected_vertices(9)
        brute = set()
        for p in list(day1) + list(day2):
            if 9 in p:
                brute.update(p)
        brute.discard(9)
        assert affected == brute


class TestSizes:
    def test_compresses(self, archive):
        arc, _, _ = archive
        assert arc.compression_ratio() > 1.0

    def test_sizes_sum_over_segments(self, archive):
        arc, _, _ = archive
        assert arc.compressed_size_bytes() == sum(
            s.compressed_size_bytes() for s in arc.segments()
        )


class TestSerialization:
    def test_roundtrip(self, archive):
        arc, day1, day2 = archive
        restored = SegmentedArchive.loads(arc.dumps(), config=CFG)
        assert restored.segment_count == 2
        assert restored.retrieve_all() == arc.retrieve_all()
        assert restored.base_id == arc.base_id

    def test_restored_archive_accepts_appends(self, archive):
        arc, _, day2 = archive
        restored = SegmentedArchive.loads(arc.dumps(), config=CFG)
        new_id = restored.append(day2[0])
        assert restored.retrieve(new_id) == day2[0]

    def test_bad_magic(self, archive):
        arc, _, _ = archive
        with pytest.raises(CorruptDataError, match="magic"):
            SegmentedArchive.loads(b"XXXX" + arc.dumps()[4:])

    def test_truncated(self, archive):
        arc, _, _ = archive
        with pytest.raises(CorruptDataError):
            SegmentedArchive.loads(arc.dumps()[:-5])

    def test_trailing_garbage(self, archive):
        arc, _, _ = archive
        with pytest.raises(CorruptDataError, match="trailing"):
            SegmentedArchive.loads(arc.dumps() + b"\x00")
