"""Unit and property tests for the lightweight-survey codecs (§II-B)."""

import pytest
from hypothesis import given, strategies as st

from repro.paths.lightweight import (
    LIGHTWEIGHT_CODECS,
    DeltaCoding,
    FrameOfReference,
    NullSuppression,
    RunLengthEncoding,
    lightweight_sizes,
)

values_strategy = st.lists(st.integers(min_value=0, max_value=2**40), max_size=60)


@pytest.mark.parametrize("codec", LIGHTWEIGHT_CODECS, ids=lambda c: c.name)
class TestRoundtrips:
    def test_empty(self, codec):
        assert codec.decode(codec.encode([])) == []

    def test_simple(self, codec):
        values = [5, 17, 17, 3, 900000, 0]
        assert codec.decode(codec.encode(values)) == values

    def test_single(self, codec):
        assert codec.decode(codec.encode([42])) == [42]


@pytest.mark.parametrize("codec", LIGHTWEIGHT_CODECS, ids=lambda c: c.name)
@given(values=values_strategy)
def test_roundtrip_property(codec, values):
    assert codec.decode(codec.encode(values)) == values


class TestStrengths:
    """Each family wins exactly on the data shape it was designed for."""

    def test_for_wins_on_clustered_values(self):
        clustered = [1_000_000 + i % 7 for i in range(50)]
        sizes = lightweight_sizes(clustered)
        assert sizes["FOR"] < sizes["NS"]

    def test_delta_wins_on_sorted_values(self):
        sorted_vals = list(range(10_000, 10_200, 3))
        sizes = lightweight_sizes(sorted_vals)
        assert sizes["DELTA"] < sizes["NS"]
        assert sizes["DELTA"] < sizes["FOR"]

    def test_rle_wins_on_runs(self):
        runs = [7] * 40 + [9] * 40
        sizes = lightweight_sizes(runs)
        assert sizes["RLE"] < min(sizes["NS"], sizes["FOR"], sizes["DELTA"])

    def test_ns_beats_raw32_on_small_ids(self):
        small = [3, 77, 12, 99] * 10
        sizes = lightweight_sizes(small)
        assert sizes["NS"] < sizes["raw32"]

    def test_none_exploits_cross_path_redundancy(self):
        """The §II-B argument for DICT: a frequent subpath repeated across
        *different* paths is invisible to all four families — each path
        encodes to the same size whether or not others share its subpaths."""
        path = [1403, 22, 961, 7, 512, 88, 1200, 45]
        single = lightweight_sizes(path)
        # Encoding the path twice in two separate blocks costs exactly 2x.
        for codec in LIGHTWEIGHT_CODECS:
            two_blocks = len(codec.encode(path)) * 2
            assert two_blocks == 2 * single[codec.name]


class TestErrorHandling:
    def test_ns_length_mismatch(self):
        blob = NullSuppression().encode([1, 2, 3])
        with pytest.raises(ValueError):
            NullSuppression().decode(blob[:-1])

    def test_for_length_mismatch(self):
        blob = FrameOfReference().encode([5, 6])
        with pytest.raises(ValueError):
            FrameOfReference().decode(blob + b"\x01")

    def test_delta_negative_reconstruction(self):
        # A stream whose deltas walk below zero is corrupt for vertex ids.
        delta = DeltaCoding()
        # count=1, delta=zigzag(-1)=1
        from repro.paths.encoding import VarintEncoding
        blob = VarintEncoding().encode([1, 1])
        with pytest.raises(ValueError):
            delta.decode(blob)

    def test_rle_zero_run(self):
        from repro.paths.encoding import VarintEncoding
        blob = VarintEncoding().encode([1, 5, 0])  # one pair: value 5, run 0
        with pytest.raises(ValueError):
            RunLengthEncoding().decode(blob)

    def test_empty_streams_rejected(self):
        for codec in LIGHTWEIGHT_CODECS:
            with pytest.raises(ValueError):
                codec.decode(b"")
