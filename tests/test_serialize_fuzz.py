"""Corruption-robustness tests for the archive format.

An archive that decodes corrupted bytes into *wrong paths* is worse than one
that refuses: the applications built on it (anomaly blast-radius queries)
would silently act on fabricated routes.  The CRC32 in the store blob makes
the guarantee absolute; these tests earn it:

* every single-byte flip anywhere in a store blob raises
  :class:`CorruptDataError` — never a wrong answer, never a stray
  exception type;
* truncation at every length raises cleanly;
* random garbage raises cleanly.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import OFFSConfig
from repro.core.errors import CorruptDataError
from repro.core.offs import OFFSCodec
from repro.core.serialize import dumps_store, loads_store, loads_table
from repro.core.store import CompressedPathStore
from repro.paths.dataset import PathDataset


@pytest.fixture(scope="module")
def blob() -> bytes:
    ds = PathDataset([[1, 2, 3, 4, 5]] * 12 + [[9, 2, 3, 4]] * 6)
    codec = OFFSCodec(OFFSConfig(iterations=3, sample_exponent=0))
    store = CompressedPathStore.from_codec(ds, codec)
    return dumps_store(store)


class TestByteFlips:
    def test_every_single_byte_flip_is_detected(self, blob):
        for position in range(len(blob)):
            corrupted = bytearray(blob)
            corrupted[position] ^= 0xFF
            with pytest.raises(CorruptDataError):
                loads_store(bytes(corrupted))

    def test_every_single_bit_flip_in_header_is_detected(self, blob):
        for position in range(9):  # magic + version + crc
            for bit in range(8):
                corrupted = bytearray(blob)
                corrupted[position] ^= 1 << bit
                with pytest.raises(CorruptDataError):
                    loads_store(bytes(corrupted))


class TestTruncation:
    def test_every_truncation_is_detected(self, blob):
        for length in range(len(blob)):
            with pytest.raises(CorruptDataError):
                loads_store(blob[:length])


class TestGarbage:
    @settings(max_examples=50)
    @given(st.binary(max_size=200))
    def test_random_bytes_never_crash_unexpectedly(self, data):
        try:
            loads_store(data)
        except CorruptDataError:
            pass  # the only acceptable failure mode

    @settings(max_examples=50)
    @given(st.binary(max_size=200))
    def test_table_loader_rejects_garbage_cleanly(self, data):
        try:
            loads_table(data)
        except CorruptDataError:
            pass

    def test_shuffled_blob_detected(self, blob):
        rng = random.Random(0)
        shuffled = bytearray(blob)
        body = list(shuffled[9:])
        rng.shuffle(body)
        shuffled[9:] = bytes(body)
        with pytest.raises(CorruptDataError):
            loads_store(bytes(shuffled))


class TestIntactBlobStillLoads:
    def test_control(self, blob):
        store = loads_store(blob)
        assert len(store) == 18
