"""Corruption-robustness tests for the archive format.

An archive that decodes corrupted bytes into *wrong paths* is worse than one
that refuses: the applications built on it (anomaly blast-radius queries)
would silently act on fabricated routes.  The CRC32 in the store blob makes
the guarantee absolute; these tests earn it:

* every single-byte flip anywhere in a store blob raises
  :class:`CorruptDataError` — never a wrong answer, never a stray
  exception type;
* truncation at every length raises cleanly;
* random garbage raises cleanly.

The v2 mapped format trades the up-front whole-file CRC for lazy,
per-section validation (open = header only), so its contract is staged:
truncation at *every* offset is still caught at open (the header declares
the exact file size), header flips are caught by the header CRC,
table/index flips by the metadata CRC on first table access — and
payload reads, which are deliberately not checksummed, must never fail
with anything but :class:`CorruptDataError` or return out-of-range
symbols.  Decoder bounds errors are :class:`TruncatedDataError`, which
subclasses both :class:`CorruptDataError` and :class:`BoundsError`
(``IndexError``) and carries the byte offset.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import OFFSConfig
from repro.core.errors import BoundsError, CorruptDataError, TruncatedDataError
from repro.core.offs import OFFSCodec
from repro.core.serialize import (
    STORE_V2_HEADER_SIZE,
    _read_varint,
    dumps_store,
    dumps_store_v2,
    loads_store,
    loads_store_v2,
    loads_table,
)
from repro.core.store import CompressedPathStore
from repro.paths.dataset import PathDataset


@pytest.fixture(scope="module")
def seed_store() -> CompressedPathStore:
    ds = PathDataset([[1, 2, 3, 4, 5]] * 12 + [[9, 2, 3, 4]] * 6)
    codec = OFFSCodec(OFFSConfig(iterations=3, sample_exponent=0))
    return CompressedPathStore.from_codec(ds, codec)


@pytest.fixture(scope="module")
def blob(seed_store) -> bytes:
    return dumps_store(seed_store)


@pytest.fixture(scope="module")
def blob_v2(seed_store) -> bytes:
    return dumps_store_v2(seed_store)


class TestByteFlips:
    def test_every_single_byte_flip_is_detected(self, blob):
        for position in range(len(blob)):
            corrupted = bytearray(blob)
            corrupted[position] ^= 0xFF
            with pytest.raises(CorruptDataError):
                loads_store(bytes(corrupted))

    def test_every_single_bit_flip_in_header_is_detected(self, blob):
        for position in range(9):  # magic + version + crc
            for bit in range(8):
                corrupted = bytearray(blob)
                corrupted[position] ^= 1 << bit
                with pytest.raises(CorruptDataError):
                    loads_store(bytes(corrupted))


class TestTruncation:
    def test_every_truncation_is_detected(self, blob):
        for length in range(len(blob)):
            with pytest.raises(CorruptDataError):
                loads_store(blob[:length])


class TestGarbage:
    @settings(max_examples=50)
    @given(st.binary(max_size=200))
    def test_random_bytes_never_crash_unexpectedly(self, data):
        try:
            loads_store(data)
        except CorruptDataError:
            pass  # the only acceptable failure mode

    @settings(max_examples=50)
    @given(st.binary(max_size=200))
    def test_table_loader_rejects_garbage_cleanly(self, data):
        try:
            loads_table(data)
        except CorruptDataError:
            pass

    def test_shuffled_blob_detected(self, blob):
        rng = random.Random(0)
        shuffled = bytearray(blob)
        body = list(shuffled[9:])
        rng.shuffle(body)
        shuffled[9:] = bytes(body)
        with pytest.raises(CorruptDataError):
            loads_store(bytes(shuffled))


class TestIntactBlobStillLoads:
    def test_control(self, blob):
        store = loads_store(blob)
        assert len(store) == 18


class TestV2Truncation:
    def test_every_truncation_is_detected_at_open(self, blob_v2):
        # The header declares the exact file size, so any truncation is
        # caught at open time, before a single token is parsed.
        for length in range(len(blob_v2)):
            with pytest.raises(CorruptDataError):
                loads_store_v2(blob_v2[:length])

    def test_truncation_is_also_a_bounds_error(self, blob_v2):
        # The satellite contract: decoders running off a buffer raise
        # BoundsError (an IndexError) with the byte offset, while staying
        # catchable as CorruptDataError for archive-corruption handlers.
        for length in (0, 1, STORE_V2_HEADER_SIZE - 1, len(blob_v2) - 1):
            with pytest.raises(TruncatedDataError) as exc_info:
                loads_store_v2(blob_v2[:length])
            assert isinstance(exc_info.value, BoundsError)
            assert isinstance(exc_info.value, IndexError)
            assert "byte" in str(exc_info.value) or "bytes" in str(exc_info.value)

    def test_extra_trailing_bytes_detected(self, blob_v2):
        with pytest.raises(CorruptDataError):
            loads_store_v2(blob_v2 + b"\x00")


class TestV2HeaderCorruption:
    def test_every_header_byte_flip_is_detected_at_open(self, blob_v2):
        for position in range(STORE_V2_HEADER_SIZE):
            corrupted = bytearray(blob_v2)
            corrupted[position] ^= 0xFF
            with pytest.raises(CorruptDataError):
                loads_store_v2(bytes(corrupted))


class TestV2MetaCorruption:
    def test_every_table_and_index_flip_is_detected(self, blob_v2, seed_store):
        # Table + index are covered by meta_crc, verified lazily on first
        # table access — flips there must surface before any path does.
        header = loads_store_v2(blob_v2)._header
        for position in range(header.table_offset, header.payload_offset):
            corrupted = loads_store_v2(
                bytes(blob_v2[:position])
                + bytes([blob_v2[position] ^ 0xFF])
                + bytes(blob_v2[position + 1 :])
            )
            with pytest.raises(CorruptDataError):
                _ = corrupted.table

    def test_payload_flips_never_escape_the_error_contract(self, blob_v2):
        # The payload is deliberately unchecksummed (zero-copy serving);
        # a flip there must either decode (varints are dense) or raise
        # CorruptDataError — never any other exception type.
        header = loads_store_v2(blob_v2)._header
        n = len(loads_store_v2(blob_v2))
        for position in range(header.payload_offset, header.total_size):
            corrupted = loads_store_v2(
                bytes(blob_v2[:position])
                + bytes([blob_v2[position] ^ 0xFF])
                + bytes(blob_v2[position + 1 :])
            )
            for pid in range(n):
                try:
                    corrupted.retrieve(pid)
                except CorruptDataError:
                    pass  # the only acceptable failure mode


class TestV2Garbage:
    @settings(max_examples=50)
    @given(st.binary(max_size=200))
    def test_random_bytes_never_crash_unexpectedly(self, data):
        try:
            loads_store_v2(data)
        except CorruptDataError:
            pass  # the only acceptable failure mode


class TestVarintBounds:
    def test_negative_position_does_not_wrap(self):
        with pytest.raises(TruncatedDataError) as exc_info:
            _read_varint(b"\x01\x02\x03", -1)
        assert "-1" in str(exc_info.value)

    def test_position_past_end_reports_offset(self):
        with pytest.raises(TruncatedDataError) as exc_info:
            _read_varint(b"\x01", 5)
        assert "5" in str(exc_info.value)

    def test_truncated_continuation_reports_start_offset(self):
        with pytest.raises(TruncatedDataError) as exc_info:
            _read_varint(b"\x00\x80", 1)  # continuation bit set, no next byte
        assert "1" in str(exc_info.value)

    def test_overlong_varint_is_corrupt_not_bounds(self):
        blob = b"\x80" * 10 + b"\x01"
        with pytest.raises(CorruptDataError) as exc_info:
            _read_varint(blob, 0)
        assert not isinstance(exc_info.value, BoundsError)


class TestV2IntactBlobStillLoads:
    def test_control_matches_v1(self, blob, blob_v2):
        v1 = loads_store(blob)
        v2 = loads_store_v2(blob_v2)
        assert len(v2) == len(v1) == 18
        assert v2.tokens() == v1.tokens()
        assert v2.retrieve_all() == v1.retrieve_all()
