"""Unit tests for the command-line interface (in-process via cli.main)."""

import pytest

from repro.cli import main
from repro.paths.dataset import PathDataset
from repro.paths.io import load_text, save_text


@pytest.fixture()
def paths_file(tmp_path):
    ds = PathDataset(
        [[1, 2, 3, 4, 5]] * 20 + [[9, 2, 3, 4, 8]] * 10 + [[7, 6, 5]] * 5,
        name="cli",
    )
    target = tmp_path / "paths.txt"
    save_text(ds, target)
    return target, ds


@pytest.fixture()
def archive(paths_file, tmp_path):
    source, ds = paths_file
    out = tmp_path / "paths.offs"
    code = main(["compress", str(source), str(out), "--sample-exponent", "0"])
    assert code == 0
    return out, ds


class TestCompressDecompress:
    def test_compress_creates_archive(self, archive, capsys):
        out, _ = archive
        assert out.exists() and out.stat().st_size > 0

    def test_decompress_roundtrip(self, archive, tmp_path):
        out, ds = archive
        restored = tmp_path / "restored.txt"
        assert main(["decompress", str(out), str(restored)]) == 0
        assert load_text(restored) == ds

    def test_compress_reports_ratio(self, paths_file, tmp_path, capsys):
        source, _ = paths_file
        main(["compress", str(source), str(tmp_path / "x.offs"), "--sample-exponent", "0"])
        out = capsys.readouterr().out
        assert "CR=" in out and "table=" in out

    def test_options_forwarded(self, paths_file, tmp_path):
        source, ds = paths_file
        out = tmp_path / "x.offs"
        code = main([
            "compress", str(source), str(out),
            "--sample-exponent", "0", "--iterations", "2",
            "--delta", "4", "--topdown-rounds", "1",
        ])
        assert code == 0
        restored = tmp_path / "r.txt"
        assert main(["decompress", str(out), str(restored)]) == 0
        assert load_text(restored) == ds

    @pytest.mark.parametrize("backend", ["multilevel", "trie", "rolling"])
    def test_backend_selection_archives_identically(self, paths_file, tmp_path, backend):
        # Backends differ only in probe cost: the archive bytes must match
        # the default hash backend's exactly.
        source, ds = paths_file
        baseline = tmp_path / "hash.offs"
        assert main(["compress", str(source), str(baseline),
                     "--sample-exponent", "0"]) == 0
        out = tmp_path / f"{backend}.offs"
        assert main(["compress", str(source), str(out),
                     "--sample-exponent", "0", "--backend", backend]) == 0
        assert out.read_bytes() == baseline.read_bytes()
        restored = tmp_path / "r.txt"
        assert main(["decompress", str(out), str(restored)]) == 0
        assert load_text(restored) == ds

    def test_unknown_backend_rejected(self, paths_file, tmp_path, capsys):
        source, _ = paths_file
        with pytest.raises(SystemExit):
            main(["compress", str(source), str(tmp_path / "x.offs"),
                  "--backend", "bloom"])


class TestV2Format:
    @pytest.fixture()
    def archive_v2(self, paths_file, tmp_path):
        source, ds = paths_file
        out = tmp_path / "paths.rpc2"
        assert main(["compress", str(source), str(out),
                     "--sample-exponent", "0", "--format", "v2"]) == 0
        return out, ds

    def test_compress_v2_reports_format(self, paths_file, tmp_path, capsys):
        source, _ = paths_file
        assert main(["compress", str(source), str(tmp_path / "x.rpc2"),
                     "--sample-exponent", "0", "--format", "v2"]) == 0
        assert "v2" in capsys.readouterr().out

    def test_decompress_roundtrip(self, archive_v2, tmp_path):
        out, ds = archive_v2
        restored = tmp_path / "restored.txt"
        assert main(["decompress", str(out), str(restored)]) == 0
        assert load_text(restored) == ds

    def test_retrieve_from_v2(self, archive_v2, capsys):
        out, _ = archive_v2
        assert main(["retrieve", str(out), "--id", "0"]) == 0
        assert capsys.readouterr().out.strip() == "1 2 3 4 5"

    def test_query_over_v2(self, archive_v2, capsys):
        out, _ = archive_v2
        assert main(["query", str(out), "--between", "9", "8"]) == 0
        assert "9 2 3 4 8" in capsys.readouterr().out

    def test_stats_over_v2(self, archive_v2, capsys):
        out, _ = archive_v2
        assert main(["stats", str(out)]) == 0
        assert "byte_ratio" in capsys.readouterr().out


class TestRetrieveSliceOption:
    def test_slice_window(self, archive, capsys):
        out, _ = archive
        assert main(["retrieve", str(out), "--id", "0", "--slice", "1", "4"]) == 0
        assert capsys.readouterr().out.strip() == "2 3 4"

    def test_slice_applies_to_every_id(self, archive, capsys):
        out, _ = archive
        assert main(["retrieve", str(out), "--id", "0", "--id", "34",
                     "--slice", "0", "2"]) == 0
        assert capsys.readouterr().out.strip().splitlines() == ["1 2", "7 6"]

    def test_slice_on_v2_archive(self, paths_file, tmp_path, capsys):
        source, _ = paths_file
        out = tmp_path / "paths.rpc2"
        assert main(["compress", str(source), str(out),
                     "--sample-exponent", "0", "--format", "v2"]) == 0
        capsys.readouterr()
        assert main(["retrieve", str(out), "--id", "0", "--slice", "1", "4"]) == 0
        assert capsys.readouterr().out.strip() == "2 3 4"


class TestStats:
    def test_stats_table(self, archive, capsys):
        out, _ = archive
        assert main(["stats", str(out)]) == 0
        text = capsys.readouterr().out
        assert "paths" in text and "byte_ratio" in text
        assert "hottest table entries" in text

    def test_stats_without_hot(self, archive, capsys):
        out, _ = archive
        assert main(["stats", str(out), "--hot", "0"]) == 0
        assert "hottest" not in capsys.readouterr().out


class TestRetrieve:
    def test_single_path(self, archive, capsys):
        out, ds = archive
        assert main(["retrieve", str(out), "--id", "0"]) == 0
        assert capsys.readouterr().out.strip() == "1 2 3 4 5"

    def test_multiple_ids(self, archive, capsys):
        out, ds = archive
        assert main(["retrieve", str(out), "--id", "0", "--id", "34"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines == ["1 2 3 4 5", "7 6 5"]

    def test_unknown_id_fails_cleanly(self, archive, capsys):
        out, _ = archive
        assert main(["retrieve", str(out), "--id", "999"]) == 1
        assert "error:" in capsys.readouterr().err


class TestQuery:
    def test_contains(self, archive, capsys):
        out, ds = archive
        assert main(["query", str(out), "--contains", "9"]) == 0
        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        assert lines == ["9 2 3 4 8"] * 10
        assert "10 path(s)" in captured.err

    def test_between(self, archive, capsys):
        out, _ = archive
        assert main(["query", str(out), "--between", "1", "5"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines == ["1 2 3 4 5"] * 20

    def test_no_match(self, archive, capsys):
        out, _ = archive
        assert main(["query", str(out), "--contains", "12345"]) == 0
        assert capsys.readouterr().out.strip() == ""


class TestErrors:
    def test_missing_input_file(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.offs")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_corrupt_archive(self, tmp_path, capsys):
        bad = tmp_path / "bad.offs"
        bad.write_bytes(b"not an archive")
        assert main(["stats", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_malformed_text_input(self, tmp_path, capsys):
        src = tmp_path / "bad.txt"
        src.write_text("1 2 x\n")
        assert main(["compress", str(src), str(tmp_path / "o.offs")]) == 1


class TestGenerate:
    def test_generate_workload(self, tmp_path, capsys):
        out = tmp_path / "gen.txt"
        assert main(["generate", "sanfrancisco", str(out), "--paths", "50"]) == 0
        ds = load_text(out)
        assert len(ds) == 50
        assert "50 paths" in capsys.readouterr().out

    def test_generate_seeded_deterministic(self, tmp_path):
        a, b = tmp_path / "a.txt", tmp_path / "b.txt"
        main(["generate", "collision", str(a), "--paths", "30", "--seed", "7"])
        main(["generate", "collision", str(b), "--paths", "30", "--seed", "7"])
        assert a.read_text() == b.read_text()

    def test_generate_unknown_workload(self, tmp_path, capsys):
        assert main(["generate", "mars", str(tmp_path / "x.txt")]) == 1
        assert "unknown workload" in capsys.readouterr().err


class TestTune:
    def test_tune_prints_modes(self, paths_file, capsys):
        source, _ = paths_file
        assert main(["tune", str(source), "--pilot", "35"]) == 0
        out = capsys.readouterr().out
        assert "default mode:" in out and "fast mode:" in out
        assert "tuning sweep" in out


class TestSubpathQuery:
    def test_subpath_query(self, archive, capsys):
        out, _ = archive
        assert main(["query", str(out), "--subpath", "2", "3", "4"]) == 0
        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        assert len(lines) == 30  # both path families contain 2 3 4
        assert "30 path(s)" in captured.err

    def test_subpath_query_no_match(self, archive, capsys):
        out, _ = archive
        assert main(["query", str(out), "--subpath", "3", "2"]) == 0
        assert capsys.readouterr().out.strip() == ""


class TestCompare:
    def test_compare_table(self, paths_file, capsys):
        source, _ = paths_file
        assert main(["compare", str(source), "--sample-exponent", "0"]) == 0
        out = capsys.readouterr().out
        for name in ("OFFS", "OFFS*", "Dlz4", "RSS", "GFS", "RePair"):
            assert name in out
        assert "CR" in out and "rule bytes" in out

    def test_compare_without_repair(self, paths_file, capsys):
        source, _ = paths_file
        assert main(["compare", str(source), "--no-repair",
                     "--sample-exponent", "0"]) == 0
        assert "RePair" not in capsys.readouterr().out


class TestViaQuery:
    def test_via_query(self, archive, capsys):
        out, _ = archive
        assert main(["query", str(out), "--via", "1", "3", "5"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines == ["1 2 3 4 5"] * 20

    def test_via_needs_two_vertices(self, archive, capsys):
        out, _ = archive
        assert main(["query", str(out), "--via", "1"]) == 1
        assert "at least" in capsys.readouterr().err


class TestAutoCompress:
    @pytest.fixture()
    def report_file(self, tmp_path):
        import json

        from repro.bench.ablation import run_ablation

        report = run_ablation(workloads=["alibaba"], size="tiny", rounds=1)
        target = tmp_path / "BENCH_ablation.json"
        target.write_text(json.dumps(report))
        return target

    def test_auto_compresses_and_round_trips(self, paths_file, tmp_path, capsys):
        source, ds = paths_file
        out = tmp_path / "auto.offs"
        assert main(["compress", str(source), str(out), "--auto",
                     "--auto-pilot", "30"]) == 0
        err = capsys.readouterr().err
        assert "autotuned:" in err
        restored = tmp_path / "restored.txt"
        assert main(["decompress", str(out), str(restored)]) == 0
        assert load_text(restored) == ds

    def test_auto_with_ablation_report(self, paths_file, report_file,
                                       tmp_path, capsys):
        source, ds = paths_file
        out = tmp_path / "auto.offs"
        assert main(["compress", str(source), str(out), "--auto",
                     "--ablation-report", str(report_file),
                     "--auto-pilot", "30"]) == 0
        assert "ablation-guided" in capsys.readouterr().err
        restored = tmp_path / "restored.txt"
        assert main(["decompress", str(out), str(restored)]) == 0
        assert load_text(restored) == ds

    def test_report_without_auto_rejected(self, paths_file, tmp_path, capsys):
        source, _ = paths_file
        assert main(["compress", str(source), str(tmp_path / "x.offs"),
                     "--ablation-report", "whatever.json"]) == 1
        assert "requires --auto" in capsys.readouterr().err

    def test_missing_report_file_errors(self, paths_file, tmp_path, capsys):
        source, _ = paths_file
        assert main(["compress", str(source), str(tmp_path / "x.offs"),
                     "--auto", "--ablation-report",
                     str(tmp_path / "nope.json")]) == 1

    def test_tune_with_report_prints_recommendation(self, paths_file,
                                                    report_file, capsys):
        source, _ = paths_file
        assert main(["tune", str(source), "--pilot", "30",
                     "--ablation-report", str(report_file)]) == 0
        assert "recommended (ablation-guided)" in capsys.readouterr().out
