"""Unit tests for the RSS/GFS one-pass DICT baselines (Algorithm 4)."""

import pytest

from repro.baselines.gfs import GFSCodec, gross_weighted_frequency
from repro.baselines.onepass import collect_subpath_counts
from repro.baselines.rss import RSSCodec
from repro.paths.dataset import PathDataset


class TestCollectSubpathCounts:
    def test_counts_every_position(self):
        counts = collect_subpath_counts([(1, 2, 1, 2)], max_len=2)
        # Gross counting: (1,2) occurs at positions 0 and 2; (2,1) once.
        assert counts[(1, 2)] == 2
        assert counts[(2, 1)] == 1

    def test_counts_overlapping_occurrences(self):
        counts = collect_subpath_counts([(5, 5 + 0, 7)], max_len=3)
        assert counts[(5, 5, 7)] == 1  # sanity on short input

    def test_lengths_up_to_max(self):
        counts = collect_subpath_counts([(1, 2, 3, 4)], max_len=3)
        assert (1, 2, 3) in counts
        assert (1, 2, 3, 4) not in counts

    def test_pruning_keeps_top_by_rank(self):
        paths = [tuple(range(i, i + 6)) for i in range(0, 60, 6)]
        paths += [(100, 101)] * 10
        def rank(item):
            seq, count = item
            return (-count * len(seq), seq)
        counts = collect_subpath_counts(
            paths, max_len=4, prune_threshold=20, prune_keep=10, prune_rank=rank
        )
        assert len(counts) <= 10 + 9 * 4  # last path's additions may exceed keep
        assert (100, 101) in counts


class TestGFS:
    def test_measure(self):
        assert gross_weighted_frequency((1, 2, 3), 4) == 12

    def test_picks_top_gross_candidates(self):
        ds = PathDataset([[1, 2, 3]] * 10 + [[4, 5]] * 2)
        codec = GFSCodec(capacity=2, sample_exponent=0)
        codec.fit(ds)
        assert set(codec.table.subpaths) == {(1, 2, 3), (1, 2)} or \
            (1, 2, 3) in codec.table

    def test_overlapping_candidates_crowd_the_table(self):
        # All fragments of the hot subpath rank above the cold pattern.
        ds = PathDataset([[1, 2, 3, 4, 5]] * 10 + [[7, 8]] * 3)
        codec = GFSCodec(capacity=5, max_len=5, sample_exponent=0)
        codec.fit(ds)
        hot = (1, 2, 3, 4, 5)
        fragments = [
            sp for sp in codec.table.subpaths
            if any(hot[i : i + len(sp)] == sp for i in range(len(hot)))
        ]
        assert len(fragments) == 5  # (7,8) never made it

    def test_roundtrip(self):
        ds = PathDataset([[1, 2, 3, 4]] * 5 + [[5, 6, 7]] * 5)
        codec = GFSCodec(capacity=10, sample_exponent=0).fit(ds)
        for path in ds:
            assert codec.decompress_path(codec.compress_path(path)) == path


class TestRSS:
    def test_respects_capacity(self):
        ds = PathDataset([[i, i + 1, i + 2] for i in range(0, 90, 3)])
        codec = RSSCodec(capacity=7, sample_exponent=0).fit(ds)
        assert len(codec.table) <= 7

    def test_deterministic_for_seed(self):
        ds = PathDataset([[i, i + 1, i + 2] for i in range(0, 90, 3)])
        a = RSSCodec(capacity=5, sample_exponent=0, seed=3).fit(ds)
        b = RSSCodec(capacity=5, sample_exponent=0, seed=3).fit(ds)
        assert a.table.subpaths == b.table.subpaths

    def test_different_seeds_differ(self):
        ds = PathDataset([[i, i + 1, i + 2] for i in range(0, 300, 3)])
        a = RSSCodec(capacity=5, sample_exponent=0, seed=1).fit(ds)
        b = RSSCodec(capacity=5, sample_exponent=0, seed=2).fit(ds)
        assert a.table.subpaths != b.table.subpaths

    def test_small_candidate_pool_taken_whole(self):
        ds = PathDataset([[1, 2, 3]])
        codec = RSSCodec(capacity=100, sample_exponent=0).fit(ds)
        assert set(codec.table.subpaths) == {(1, 2), (2, 3), (1, 2, 3)}

    def test_roundtrip(self):
        ds = PathDataset([[1, 2, 3, 4, 5]] * 3 + [[9, 8, 7]] * 3)
        codec = RSSCodec(capacity=64, sample_exponent=0).fit(ds)
        for path in ds:
            assert codec.decompress_path(codec.compress_path(path)) == path


class TestValidation:
    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            RSSCodec(capacity=0)

    def test_bad_max_len(self):
        with pytest.raises(ValueError):
            GFSCodec(max_len=1)
