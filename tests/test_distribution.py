"""Unit tests for the workload distribution analysis."""

import pytest

from repro.analysis.distribution import (
    edge_popularity,
    length_histogram,
    redundancy_report,
    zipf_exponent,
)
from repro.paths.dataset import PathDataset
from repro.workloads.registry import make_dataset


class TestLengthHistogram:
    def test_exact_lengths(self):
        ds = PathDataset([[1, 2], [3, 4], [5, 6, 7]])
        assert length_histogram(ds) == {2: 2, 3: 1}

    def test_bucketed(self):
        ds = PathDataset([[1] * 4, [1] * 7, [1] * 12])
        assert length_histogram(ds, bucket=5) == {0: 1, 5: 1, 10: 1}

    def test_bad_bucket(self):
        with pytest.raises(ValueError):
            length_histogram(PathDataset([]), bucket=0)


class TestEdgePopularity:
    def test_counts_descending(self):
        ds = PathDataset([[1, 2, 3]] * 3 + [[2, 3, 4]])
        pop = edge_popularity(ds)
        assert pop == sorted(pop, reverse=True)
        assert pop[0] == 4  # (2,3) occurs in all four paths

    def test_empty(self):
        assert edge_popularity(PathDataset([])) == []


class TestZipfExponent:
    def test_uniform_is_near_zero(self):
        assert zipf_exponent([5] * 50) == pytest.approx(0.0, abs=1e-9)

    def test_perfect_zipf_recovered(self):
        counts = [round(1000 / (rank + 1)) for rank in range(60)]
        assert zipf_exponent(counts) == pytest.approx(1.0, abs=0.1)

    def test_degenerate_inputs(self):
        assert zipf_exponent([]) == 0.0
        assert zipf_exponent([7]) == 0.0


class TestRedundancyReport:
    def test_surrogates_read_high(self):
        report = redundancy_report(make_dataset("alibaba", "tiny"))
        assert report.verdict == "high"

    def test_noise_reads_low(self):
        report = redundancy_report(make_dataset("noise", "tiny"))
        assert report.verdict == "low"
        assert report.mean_edge_recurrence < 2

    def test_verdict_tracks_actual_compressibility(self):
        """The report's ordering must agree with measured OFFS ratios."""
        from repro.analysis.metrics import measure_codec
        from repro.core.config import OFFSConfig
        from repro.core.offs import OFFSCodec

        rank = {"low": 0, "moderate": 1, "high": 2}
        results = []
        for name in ("noise", "sanfrancisco"):
            ds = make_dataset(name, "tiny")
            verdict = rank[redundancy_report(ds).verdict]
            cr = measure_codec(
                OFFSCodec(OFFSConfig(iterations=3, sample_exponent=0)), ds
            ).compression_ratio
            results.append((verdict, cr))
        results.sort()
        crs = [cr for _, cr in results]
        assert crs == sorted(crs)  # higher verdict, higher measured CR

    def test_rows_include_verdict(self):
        report = redundancy_report(PathDataset([[1, 2, 3]] * 5))
        rows = dict(report.as_rows())
        assert rows["verdict"] in ("low", "moderate", "high")
        assert rows["paths"] == 5

    def test_empty_dataset(self):
        report = redundancy_report(PathDataset([]))
        assert report.verdict == "low"
        assert report.mean_length == 0.0
