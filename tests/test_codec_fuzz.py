"""Seeded round-trip fuzz over every registered codec.

Satellite coverage: each codec the repository registers — OFFS, OFFS*
(fast mode), AFS, RSS, GFS, Dlz4, and the blockwise strawman — must
round-trip losslessly over adversarial path sets:

* the empty path set (fit and compress nothing);
* length-1 paths (no edges to mine at all);
* a path exactly equal to one table entry (whole-path supernode hit);
* max-degree repeats (one hub vertex on every other position, plus long
  two-vertex oscillations — the highest-degree shapes the generators make);
* seeded pseudo-random mixtures of motifs, repeats and noise.

Everything is deterministic: the generator is ``random.Random(seed)`` and
codecs with internal randomness (RSS) get fixed seeds.
"""

import random

import pytest

from repro.baselines import AFSCodec, BlockwiseZlibStore, Dlz4Codec, GFSCodec, RSSCodec
from repro.core.config import OFFSConfig
from repro.core.offs import OFFSCodec

SEEDS = (0, 1, 2)


def registered_codecs():
    """Fresh instances of every registered per-path codec, fuzz-sized.

    ``sample_exponent=0`` everywhere: adversarial sets are tiny, so the
    codecs must train on all of them.
    """
    fast = OFFSCodec.fast(sample_exponent=0)
    return [
        OFFSCodec(OFFSConfig(iterations=3, sample_exponent=0)),
        fast,  # OFFS*
        AFSCodec(threshold=2, capacity=256),
        RSSCodec(capacity=64, sample_exponent=0, seed=7),
        GFSCodec(capacity=64, sample_exponent=0),
        Dlz4Codec(sample_exponent=0),
    ]


def codec_ids():
    return [codec.name for codec in registered_codecs()]


def adversarial_sets():
    """Named handcrafted path sets covering the satellite's edge cases."""
    hub = 0
    max_degree_repeats = [
        # Star walk: the hub neighbours every other vertex (max in/out degree).
        [hub, 1, hub, 2, hub, 3, hub, 4, hub, 5, hub, 1, hub, 2],
        [hub, 1, hub, 2, hub, 3, hub, 4, hub, 5, hub, 1, hub, 2],
        # Tight oscillation: the same edge repeated far past delta.
        [1, 2] * 12,
        [1, 2] * 12,
        [2, 1] * 9,
    ]
    return {
        "empty_path_set": [],
        "length_1_paths": [[5], [7], [5], [11]],
        "table_entry_path": [
            # [3, 4, 5, 6] repeats often enough to become a table entry, and
            # appears verbatim as a whole path below.
            [1, 3, 4, 5, 6, 2],
            [8, 3, 4, 5, 6, 9],
            [3, 4, 5, 6],
            [3, 4, 5, 6],
            [7, 3, 4, 5, 6],
        ],
        "max_degree_repeats": max_degree_repeats,
        "with_empty_and_singleton": [
            [],
            [4],
            [1, 2, 3, 1, 2, 3],
            [1, 2, 3, 1, 2, 3],
            [],
        ],
    }


def fuzz_paths(seed: int, count: int = 40):
    """A seeded mixture of shared motifs, repeats, noise and degenerates."""
    rng = random.Random(seed)
    motifs = [
        [rng.randrange(20) for _ in range(rng.randint(2, 6))] for _ in range(4)
    ]
    paths = []
    for _ in range(count):
        shape = rng.random()
        if shape < 0.1:
            paths.append([])
        elif shape < 0.2:
            paths.append([rng.randrange(20)])
        elif shape < 0.6:
            path = []
            for _ in range(rng.randint(1, 4)):
                path.extend(rng.choice(motifs))
            paths.append(path)
        elif shape < 0.8:
            edge = [rng.randrange(20), rng.randrange(20)]
            paths.append(edge * rng.randint(1, 10))
        else:
            paths.append([rng.randrange(20) for _ in range(rng.randint(2, 15))])
    return paths


def assert_round_trip(codec, paths):
    codec.fit(paths)
    for path in paths:
        token = codec.compress_path(path)
        assert codec.decompress_path(token) == tuple(path), (
            f"{codec.name} failed to round-trip {path!r}"
        )


class TestAdversarialSets:
    @pytest.mark.parametrize("codec_index", range(len(codec_ids())), ids=codec_ids())
    @pytest.mark.parametrize("set_name", sorted(adversarial_sets()))
    def test_round_trip(self, codec_index, set_name):
        codec = registered_codecs()[codec_index]
        assert_round_trip(codec, adversarial_sets()[set_name])

    def test_table_entry_path_really_hits_the_table(self):
        """Guard the case's premise: [3,4,5,6] must be a table entry."""
        codec = OFFSCodec(OFFSConfig(iterations=3, sample_exponent=0))
        codec.fit(adversarial_sets()["table_entry_path"])
        assert (3, 4, 5, 6) in codec.table.subpaths
        token = codec.compress_path([3, 4, 5, 6])
        assert len(token) == 1  # the whole path is one supernode id
        assert codec.decompress_path(token) == (3, 4, 5, 6)


class TestSeededFuzz:
    @pytest.mark.parametrize("codec_index", range(len(codec_ids())), ids=codec_ids())
    @pytest.mark.parametrize("seed", SEEDS)
    def test_round_trip(self, codec_index, seed):
        codec = registered_codecs()[codec_index]
        assert_round_trip(codec, fuzz_paths(seed))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fuzz_sets_are_deterministic(self, seed):
        assert fuzz_paths(seed) == fuzz_paths(seed)


class TestBlockwise:
    """The blockwise store is not a PathCodec; fuzz its own API."""

    @pytest.mark.parametrize("paths_per_block", (1, 4, 64))
    @pytest.mark.parametrize("seed", SEEDS)
    def test_seeded_round_trip(self, paths_per_block, seed):
        paths = fuzz_paths(seed)
        store = BlockwiseZlibStore(paths_per_block=paths_per_block)
        store.compress_dataset(paths)
        assert store.retrieve_all() == [tuple(p) for p in paths]
        for path_id in range(0, len(paths), 7):
            assert store.retrieve(path_id) == tuple(paths[path_id])

    @pytest.mark.parametrize("set_name", sorted(adversarial_sets()))
    def test_adversarial_round_trip(self, set_name):
        paths = adversarial_sets()[set_name]
        store = BlockwiseZlibStore(paths_per_block=2)
        store.compress_dataset(paths)
        assert store.retrieve_all() == [tuple(p) for p in paths]
