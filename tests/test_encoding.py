"""Unit and property tests for the integer stream encodings."""

import pytest
from hypothesis import given, strategies as st

from repro.paths.encoding import (
    DEFAULT_ENCODING,
    FixedWidthEncoding,
    VarintEncoding,
    decode_stream,
    encode_stream,
)


class TestFixedWidth:
    def test_default_is_32_bit(self):
        # The paper's size model: one 32-bit integer per vertex.
        assert DEFAULT_ENCODING.width == 4
        assert DEFAULT_ENCODING.size_of([1, 2, 3]) == 12

    def test_roundtrip(self):
        enc = FixedWidthEncoding(4)
        values = [0, 1, 2**31, 2**32 - 1]
        assert enc.decode(enc.encode(values)) == values

    def test_width_one(self):
        enc = FixedWidthEncoding(1)
        assert enc.decode(enc.encode([0, 255])) == [0, 255]

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            FixedWidthEncoding(1).encode([256])

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            FixedWidthEncoding(4).encode([-1])

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            FixedWidthEncoding(3)

    def test_misaligned_decode_raises(self):
        with pytest.raises(ValueError):
            FixedWidthEncoding(4).decode(b"\x00\x01\x02")

    def test_size_of_value_constant(self):
        assert FixedWidthEncoding(2).size_of_value(65535) == 2


class TestVarint:
    def test_small_values_cost_one_byte(self):
        enc = VarintEncoding()
        assert enc.size_of_value(0) == 1
        assert enc.size_of_value(127) == 1

    def test_boundary_values(self):
        enc = VarintEncoding()
        assert enc.size_of_value(128) == 2
        assert enc.size_of_value(16383) == 2
        assert enc.size_of_value(16384) == 3

    def test_roundtrip(self):
        enc = VarintEncoding()
        values = [0, 1, 127, 128, 300, 2**20, 2**40]
        assert enc.decode(enc.encode(values)) == values

    def test_size_matches_encoding(self):
        enc = VarintEncoding()
        values = [5, 1000, 2**30]
        assert enc.size_of(values) == len(enc.encode(values))

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            VarintEncoding().encode([-3])

    def test_truncated_stream_raises(self):
        enc = VarintEncoding()
        data = enc.encode([300])
        with pytest.raises(ValueError):
            enc.decode(data[:-1])

    def test_module_level_helpers(self):
        values = [3, 1, 4, 1, 5]
        assert decode_stream(encode_stream(values)) == values


@given(st.lists(st.integers(min_value=0, max_value=2**32 - 1)))
def test_fixed_width_roundtrip_property(values):
    enc = FixedWidthEncoding(4)
    assert enc.decode(enc.encode(values)) == values


@given(st.lists(st.integers(min_value=0, max_value=2**63 - 1)))
def test_varint_roundtrip_property(values):
    enc = VarintEncoding()
    assert enc.decode(enc.encode(values)) == values


@given(st.lists(st.integers(min_value=0, max_value=2**63 - 1), min_size=1))
def test_varint_size_accounting_is_exact(values):
    enc = VarintEncoding()
    assert enc.size_of(values) == len(enc.encode(values))
