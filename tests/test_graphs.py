"""Unit tests for the graph substrates: topology, road network, walks."""

import random

import pytest

from repro.graphs.road import RoadNetwork
from repro.graphs.topology import CloudTopology
from repro.graphs.walks import random_simple_walks, zipf_choice


class TestZipf:
    def test_bounds(self):
        rng = random.Random(0)
        for _ in range(200):
            assert 0 <= zipf_choice(rng, 10) < 10

    def test_single_option(self):
        assert zipf_choice(random.Random(0), 1) == 0

    def test_skew_favours_low_indices(self):
        rng = random.Random(0)
        draws = [zipf_choice(rng, 50, exponent=1.2) for _ in range(3000)]
        head = sum(1 for d in draws if d < 5)
        assert head > len(draws) * 0.4  # the head dominates

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            zipf_choice(random.Random(0), 0)


class TestRandomWalks:
    ADJ = {1: [2, 3], 2: [3], 3: [1, 4], 4: []}

    def test_walks_follow_edges(self):
        for walk in random_simple_walks(self.ADJ, 50, 6, seed=1):
            for a, b in zip(walk, walk[1:]):
                assert b in self.ADJ[a]

    def test_walks_are_simple(self):
        for walk in random_simple_walks(self.ADJ, 50, 6, seed=2):
            assert len(set(walk)) == len(walk)

    def test_max_length_respected(self):
        for walk in random_simple_walks(self.ADJ, 50, 3, seed=3):
            assert len(walk) <= 3

    def test_empty_graph(self):
        assert random_simple_walks({}, 5, 4) == []

    def test_bad_length(self):
        with pytest.raises(ValueError):
            random_simple_walks(self.ADJ, 1, 0)


class TestCloudTopology:
    def test_paths_are_simple(self):
        topo = CloudTopology(seed=1)
        for path in topo.generate_paths(300, seed=2):
            assert len(set(path)) == len(path)

    def test_path_structure(self):
        topo = CloudTopology(seed=1)
        client_limit = topo.clients
        for path in topo.generate_paths(100, seed=3):
            assert path[0] < client_limit            # starts at a client
            assert path[-1] >= topo.vertex_count - topo.databases  # ends at a DB

    def test_deterministic(self):
        topo = CloudTopology(seed=5)
        assert topo.generate_paths(20, seed=9) == topo.generate_paths(20, seed=9)

    def test_templates_are_simple_and_bounded(self):
        topo = CloudTopology(seed=0, chain_length=(3, 6))
        for template in topo.templates:
            assert 3 <= len(template) <= 6
            assert len(set(template)) == len(template)

    def test_pod_routes_shape(self):
        topo = CloudTopology(seed=0)
        assert len(topo.pod_routes) == topo.pods
        for pod in topo.pod_routes:
            assert len(pod) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            CloudTopology(gateways=0)
        with pytest.raises(ValueError):
            CloudTopology(chain_length=(5, 3))
        with pytest.raises(ValueError):
            CloudTopology(services=4, chain_length=(3, 6))
        with pytest.raises(ValueError):
            CloudTopology(pod_probability=1.5)


class TestRoadNetwork:
    @pytest.fixture()
    def net(self):
        return RoadNetwork(width=12, height=10, hotspots=6, seed=4)

    def test_cell_id_roundtrip(self, net):
        for cell in [(0, 0), (9, 11), (5, 7)]:
            assert net.cell_of(net.cell_id(cell)) == cell

    def test_cell_id_bounds(self, net):
        with pytest.raises(ValueError):
            net.cell_id((10, 0))
        with pytest.raises(ValueError):
            net.cell_of(12 * 10)

    def test_route_is_shortest(self, net):
        route = net.route((0, 0), (3, 4))
        assert len(route) == 3 + 4 + 1  # Manhattan distance + 1 cells

    def test_route_is_connected_and_simple(self, net):
        route = net.route((1, 1), (8, 9))
        cells = [net.cell_of(v) for v in route]
        for a, b in zip(cells, cells[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1
        assert len(set(route)) == len(route)

    def test_route_deterministic_and_cached(self, net):
        first = net.route((0, 0), (5, 5))
        second = net.route((0, 0), (5, 5))
        assert first is second  # cache hit returns the same tuple

    def test_route_via_joins_legs(self, net):
        via = net.route_via((0, 0), (5, 5), (9, 9))
        direct_a = net.route((0, 0), (5, 5))
        assert via[: len(direct_a)] == direct_a

    def test_trips_have_hotspot_terminals(self, net):
        rng = random.Random(0)
        hotspot_ids = {net.cell_id(h) for h in net.hotspots}
        for _ in range(30):
            trip = net.sample_trip(rng, detour_probability=0.0)
            assert trip[0] in hotspot_ids and trip[-1] in hotspot_ids

    def test_generate_trips_deterministic(self, net):
        assert net.generate_trips(10, seed=1) == net.generate_trips(10, seed=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RoadNetwork(width=1)
        with pytest.raises(ValueError):
            RoadNetwork(hotspots=1)
        with pytest.raises(ValueError):
            RoadNetwork(width=2, height=2, hotspots=9)
