"""Unit tests for the auto-segmenting stream (drift → rotate, closed loop)."""

import random

import pytest

from repro.core.config import OFFSConfig
from repro.core.stream import AutoSegmentingStream

CFG = OFFSConfig(iterations=3, sample_exponent=0)


def hot_epoch(prefix: int, count: int):
    """Highly compressible traffic over one machine set."""
    hot = tuple(prefix + i for i in range(7))
    return [(9,) + hot + (8,)] * count


def make_stream(**kwargs) -> AutoSegmentingStream:
    defaults = dict(
        config=CFG, base_id=1 << 20, warmup=100, window=80,
        refit_ratio=0.6, min_segment_paths=150,
    )
    defaults.update(kwargs)
    return AutoSegmentingStream(**defaults)


class TestWarmup:
    def test_first_segment_trains_at_warmup(self):
        stream = make_stream()
        ids = stream.feed_many(hot_epoch(1000, 100))
        assert stream.archive.segment_count == 1
        assert ids[-1] == 99  # warm-up flush assigned dense global ids
        assert stream.retrieve(0) == (9,) + tuple(range(1000, 1007)) + (8,)

    def test_no_segment_before_warmup(self):
        stream = make_stream()
        assert stream.feed((1, 2, 3)) is None
        assert stream.archive.segment_count == 0
        assert len(stream) == 1


class TestStationaryTraffic:
    def test_never_rotates_on_stationary_stream(self):
        stream = make_stream()
        stream.feed_many(hot_epoch(1000, 900))
        assert stream.rotations == 0
        assert stream.archive.segment_count == 1


class TestDriftRotation:
    def _drifted_stream(self):
        stream = make_stream()
        stream.feed_many(hot_epoch(1000, 300))
        # Regime change: incompressible traffic the table cannot match.
        rng = random.Random(0)
        noise = [tuple(rng.sample(range(5000, 20000), 9)) for _ in range(400)]
        stream.feed_many(noise)
        return stream, noise

    def test_rotates_on_drift(self):
        stream, _ = self._drifted_stream()
        assert stream.rotations >= 1
        assert stream.archive.segment_count >= 2

    def test_all_paths_retrievable_across_rotation(self):
        stream, noise = self._drifted_stream()
        assert stream.retrieve(0) == (9,) + tuple(range(1000, 1007)) + (8,)
        assert stream.retrieve(len(stream) - 1) == noise[-1]

    def test_rotation_respects_min_segment_age(self):
        stream = make_stream(min_segment_paths=10_000)
        stream.feed_many(hot_epoch(1000, 300))
        rng = random.Random(0)
        stream.feed_many(
            tuple(rng.sample(range(5000, 20000), 9)) for _ in range(400)
        )
        assert stream.rotations == 0

    def test_second_epoch_compresses_after_rotation(self):
        """After rotating onto epoch-2 training, epoch-2 traffic contracts."""
        stream = make_stream()
        stream.feed_many(hot_epoch(1000, 300))
        stream.feed_many(hot_epoch(400_000, 400))  # drifted but regular
        if stream.rotations:
            last_segment = stream.archive.segments()[-1]
            last_token = last_segment.token(len(last_segment) - 1)
            assert len(last_token) < 9  # the new table matches epoch 2


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            make_stream(warmup=0)
        with pytest.raises(ValueError):
            make_stream(refit_ratio=0.0)
        with pytest.raises(ValueError):
            make_stream(window=0)

    def test_repr(self):
        stream = make_stream()
        assert "AutoSegmentingStream" in repr(stream)
