"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.analysis.charts import ascii_chart, chart_from_rows


class TestAsciiChart:
    def test_renders_title_axes_legend(self):
        text = ascii_chart(
            {"CR": [(0, 1.0), (5, 3.0)]},
            width=20, height=5, title="Fig X", x_label="i", y_label="CR",
        )
        lines = text.splitlines()
        assert lines[0] == "Fig X"
        assert "3" in lines[1]          # y max annotation
        assert "+" in text and "-" in text  # axis
        assert "* CR" in lines[-1]      # legend

    def test_extreme_points_plotted_at_corners(self):
        text = ascii_chart({"s": [(0, 0.0), (10, 10.0)]}, width=11, height=5)
        lines = text.splitlines()
        top_row = next(line for line in lines if line.rstrip().endswith("*"))
        assert top_row  # the max point sits on the top row, rightmost column
        bottom_rows = [line for line in lines if "|*" in line]
        assert bottom_rows  # the min point sits at the left edge

    def test_multiple_series_distinct_markers(self):
        text = ascii_chart(
            {"a": [(0, 1), (1, 2)], "b": [(0, 2), (1, 1)]},
            width=12, height=5,
        )
        assert "* a" in text and "o b" in text
        grid_rows = [line for line in text.splitlines() if "|" in line]
        assert any("o" in row for row in grid_rows)
        assert any("*" in row for row in grid_rows)

    def test_flat_series_does_not_crash(self):
        text = ascii_chart({"flat": [(0, 2.0), (1, 2.0), (2, 2.0)]}, width=12, height=5)
        assert "*" in text

    def test_single_point(self):
        assert "*" in ascii_chart({"p": [(1, 1)]}, width=10, height=4)

    def test_empty_series(self):
        assert "(no data)" in ascii_chart({"e": []}, title="T")

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            ascii_chart({"a": [(0, 1)]}, width=5, height=4)
        with pytest.raises(ValueError):
            ascii_chart({"a": [(0, 1)]}, width=20, height=2)


class TestChartFromRows:
    ROWS = [
        ("i", "CR", "CS"),
        (0, 1.5, 6.0),
        (1, 2.2, 5.0),
        (2, "3.0", "4.2"),     # string cells parse too
        (3, 3.2, 3.9),
    ]

    def test_extracts_series(self):
        text = chart_from_rows(
            self.ROWS, x_column=0, y_columns={"CR": 1, "CS": 2},
            width=20, height=6,
        )
        assert "* CR" in text and "o CS" in text

    def test_skips_unparseable_cells(self):
        rows = [("x", "y"), ("n/a", "nope"), (1, 2)]
        text = chart_from_rows(rows, 0, {"y": 1}, width=12, height=4)
        assert "*" in text

    def test_percentage_x_values(self):
        rows = [("frac", "CR"), ("20%", 3.2), ("100%", 3.0)]
        text = chart_from_rows(rows, 0, {"CR": 1}, width=15, height=4)
        assert "100" in text
