"""Fixture tests for repro.lint: each rule demonstrated positive + negative.

Every rule gets at least one miniature project that *triggers* it and one
that passes clean, built under ``tmp_path`` with the same shape as the real
checkout (``src/repro/...``, ``docs/...``, ``tests/...``).  The suite ends
with the self-check: the actual repository must lint clean modulo the
checked-in ``lint_baseline.json``.
"""

from pathlib import Path

import pytest

from repro.lint import Project, all_rules, load_baseline, run_rules, save_baseline
from repro.lint.baseline import Baseline
from repro.lint.engine import Finding, LintInternalError
from repro.lint.rules import rules_by_id
from repro.lint.rules.codec_symmetry import CodecSymmetryRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.doc_drift import DocDriftRule
from repro.lint.rules.error_hygiene import ErrorHygieneRule
from repro.lint.rules.obs_discipline import ObsDisciplineRule
from repro.lint.rules.registry_sync import RegistrySyncRule

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_project(tmp_path, files):
    """Write *files* (relpath -> text) under tmp_path; return a Project."""
    for relpath, text in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text, encoding="utf-8")
    return Project(tmp_path)


def messages(findings):
    return [f.message for f in findings]


# ---------------------------------------------------------------- R001


class TestDeterminismRule:
    def test_flags_nondeterminism(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/bad.py": (
                "import random\n"
                "import time\n"
                "\n"
                "def stamp():\n"
                "    return time.time()\n"
                "\n"
                "def pick(items, bag=[]):\n"
                "    bag.append(random.choice(items))\n"
                "    return bag\n"
                "\n"
                "def order(values):\n"
                "    return [v for v in set(values)]\n"
                "\n"
                "def fresh_rng():\n"
                "    return random.Random()\n"
            ),
        })
        found = messages(run_rules(project, [DeterminismRule()]))
        assert any("time.time" in m for m in found)
        assert any("random.choice" in m for m in found)
        assert any("mutable default" in m for m in found)
        assert any("unordered set" in m for m in found)
        assert any("without a seed" in m for m in found)

    def test_clean_deterministic_module(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/good.py": (
                "import random\n"
                "import time\n"
                "\n"
                "def sample(items, seed=0):\n"
                "    rng = random.Random(seed)\n"
                "    return rng.sample(items, 2)\n"
                "\n"
                "def timed():\n"
                "    return time.perf_counter()\n"
                "\n"
                "def order(values):\n"
                "    return [v for v in sorted(set(values))]\n"
            ),
        })
        assert run_rules(project, [DeterminismRule()]) == []

    def test_outside_core_is_not_in_scope(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/bench/timing.py": "import time\nNOW = time.time()\n",
        })
        assert run_rules(project, [DeterminismRule()]) == []

    def test_pragma_suppresses_one_line(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/pragmas.py": (
                "import time\n"
                "\n"
                "def stamp():\n"
                "    return time.time()  # lint: ignore[R001]\n"
                "\n"
                "def stamp2():\n"
                "    return time.time()\n"
            ),
        })
        found = run_rules(project, [DeterminismRule()])
        assert len(found) == 1 and found[0].line == 7


# ---------------------------------------------------------------- R002


_R002_COMPLETE = {
    "src/repro/core/config.py": 'MATCHER_BACKENDS = ("hash", "trie")\n',
    "src/repro/core/matcher.py": (
        "class HashCandidates:\n    pass\n"
        "class TrieCandidates:\n    pass\n"
        "def make_candidate_set(backend, alpha=5):\n"
        '    if backend == "hash":\n'
        "        return HashCandidates()\n"
        '    if backend == "trie":\n'
        "        return TrieCandidates()\n"
        '    raise KeyError(backend)\n'
    ),
    "src/repro/cli.py": (
        "import argparse\n"
        "from repro.core.config import MATCHER_BACKENDS\n"
        "def make_parser():\n"
        "    p = argparse.ArgumentParser()\n"
        '    p.add_argument("--backend", choices=MATCHER_BACKENDS)\n'
        "    return p\n"
    ),
    "tests/test_matcher_equivalence.py": (
        "from repro.core.matcher import HashCandidates, TrieCandidates\n"
        "def test_equivalent():\n"
        "    assert HashCandidates and TrieCandidates\n"
    ),
    "docs/performance.md": "Backends: `hash` vs `trie`.\n",
}


class TestRegistrySyncRule:
    def test_complete_registry_is_clean(self, tmp_path):
        project = make_project(tmp_path, _R002_COMPLETE)
        assert run_rules(project, [RegistrySyncRule()]) == []

    def test_missing_everywhere_is_flagged(self, tmp_path):
        files = dict(_R002_COMPLETE)
        files["src/repro/core/matcher.py"] = (
            "class HashCandidates:\n    pass\n"
            "def make_candidate_set(backend, alpha=5):\n"
            '    if backend == "hash":\n'
            "        return HashCandidates()\n"
            '    raise KeyError(backend)\n'
        )
        files["src/repro/cli.py"] = (
            "import argparse\n"
            "def make_parser():\n"
            "    p = argparse.ArgumentParser()\n"
            '    p.add_argument("--backend", choices=("hash",))\n'
            "    return p\n"
        )
        files["tests/test_matcher_equivalence.py"] = (
            "from repro.core.matcher import HashCandidates\n"
            "def test_equivalent():\n"
            "    assert HashCandidates\n"
        )
        files["docs/performance.md"] = "Backends: `hash` only.\n"
        found = messages(run_rules(project := make_project(tmp_path, files),
                                   [RegistrySyncRule()]))
        assert any("not handled" in m for m in found)  # factory
        assert any("choices literal is missing" in m for m in found)  # CLI
        assert any("never exercises backend 'trie'" in m for m in found)
        assert any("does not document backend 'trie'" in m for m in found)

    def test_factory_key_missing_from_registry(self, tmp_path):
        files = dict(_R002_COMPLETE)
        files["src/repro/core/config.py"] = 'MATCHER_BACKENDS = ("hash",)\n'
        files["docs/performance.md"] = "Only `hash`.\n"
        files["tests/test_matcher_equivalence.py"] = (
            "from repro.core.matcher import HashCandidates\n"
        )
        found = messages(run_rules(make_project(tmp_path, files),
                                   [RegistrySyncRule()]))
        assert any("missing from MATCHER_BACKENDS" in m for m in found)


# ---------------------------------------------------------------- R003


class TestCodecSymmetryRule:
    def test_missing_inverse_is_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/oneway.py": (
                "def compress_blob(data):\n    return data\n"
                "class Packer:\n"
                "    def encode_row(self, row):\n        return row\n"
            ),
        })
        found = messages(run_rules(project, [CodecSymmetryRule()]))
        assert "module defines compress_blob() but no decompress_blob()" in found
        assert (
            "class Packer defines encode_row() but no decode_row()" in found
        )

    def test_paired_and_nonforward_names_are_clean(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/roundtrip.py": (
                "def compress_blob(data):\n    return data\n"
                "def decompress_blob(data):\n    return data\n"
                "def compression_ratio():\n    return 1.0\n"
                "def compressed_size_bytes():\n    return 0\n"
                "def _compress_private(data):\n    return data\n"
            ),
        })
        assert run_rules(project, [CodecSymmetryRule()]) == []


# ---------------------------------------------------------------- R004


_R004_CATALOG = (
    "def _counter(name):\n"
    "    return name\n"
    "\n"
    'FOO = _counter("foo.count")\n'
)


class TestObsDisciplineRule:
    def test_unregistered_and_dynamic_names_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/obs/catalog.py": _R004_CATALOG,
            "src/repro/emit.py": (
                "def report(registry, suffix):\n"
                '    registry.counter("unregistered.name").inc()\n'
                '    registry.timer("also." + suffix)\n'
                "    local = 'foo.count'\n"
                "    registry.gauge(local)\n"
            ),
        })
        found = messages(run_rules(project, [ObsDisciplineRule()]))
        assert any("'unregistered.name'" in m for m in found)
        assert any("dynamic" in m for m in found)
        assert any("local name 'local'" in m for m in found)

    def test_catalog_constants_and_registered_literals_pass(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/obs/catalog.py": _R004_CATALOG,
            "src/repro/emit.py": (
                "from repro.obs import catalog\n"
                "from repro.obs.catalog import FOO\n"
                "def report(registry):\n"
                "    registry.counter(FOO).inc()\n"
                "    registry.counter(catalog.FOO).inc(2)\n"
                '    registry.counter("foo.count").inc(3)\n'
                "    registry.observe(1.5)\n"
            ),
        })
        assert run_rules(project, [ObsDisciplineRule()]) == []

    def test_obs_internals_are_exempt(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/obs/catalog.py": _R004_CATALOG,
            "src/repro/obs/registry.py": (
                "def merge(self, registry, name):\n"
                "    registry.counter(name)\n"
            ),
        })
        assert run_rules(project, [ObsDisciplineRule()]) == []


# ---------------------------------------------------------------- R005


class TestErrorHygieneRule:
    def test_flags_broad_excepts_builtin_raises_and_shadowing(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/sloppy.py": (
                "def load(path):\n"
                "    try:\n"
                "        return open(path).read()\n"
                "    except:\n"
                "        return None\n"
                "\n"
                "def parse(text):\n"
                "    try:\n"
                "        return int(text)\n"
                "    except Exception:\n"
                '        raise ValueError("bad")\n'
                "\n"
                "def probe(hash, items):\n"
                "    list = [hash]\n"
                "    return list\n"
            ),
        })
        found = messages(run_rules(project, [ErrorHygieneRule()]))
        assert any(m.startswith("bare except") for m in found)
        assert any(m.startswith("broad except Exception") for m in found)
        assert any("raises builtin ValueError" in m for m in found)
        assert any("parameter 'hash'" in m for m in found)
        assert any("shadows builtin 'list'" in m for m in found)

    def test_clean_error_discipline(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/tidy.py": (
                "from repro.core.errors import InvalidInputError\n"
                "\n"
                "def parse(text):\n"
                "    try:\n"
                "        return int(text)\n"
                "    except (TypeError, ValueError) as exc:\n"
                '        raise InvalidInputError("bad input") from exc\n'
                "\n"
                "def abstract():\n"
                "    raise NotImplementedError\n"
            ),
        })
        assert run_rules(project, [ErrorHygieneRule()]) == []


# ---------------------------------------------------------------- R006


class TestDocDriftRule:
    def test_undocumented_export_is_flagged(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/__init__.py": (
                '__all__ = ["documented_thing", "missing_thing"]\n'
            ),
            "docs/api.md": "# API\n\n`documented_thing` does things.\n",
        })
        found = run_rules(project, [DocDriftRule()])
        assert len(found) == 1
        assert "missing_thing" in found[0].message

    def test_documented_exports_pass(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/__init__.py": '__all__ = ["documented_thing"]\n',
            "docs/api.md": "`documented_thing` does things.\n",
        })
        assert run_rules(project, [DocDriftRule()]) == []


# ---------------------------------------------------------------- engine plumbing


class TestEngine:
    def test_rules_by_id_rejects_unknown(self):
        with pytest.raises(LintInternalError):
            rules_by_id(["R999"])

    def test_rules_by_id_selects(self):
        rules = rules_by_id(["R003", "R001"])
        assert [r.id for r in rules] == ["R003", "R001"]

    def test_all_rules_cover_r001_to_r010(self):
        assert [r.id for r in all_rules()] == [
            "R001", "R002", "R003", "R004", "R005", "R006",
            "R007", "R008", "R009", "R010",
        ]

    def test_path_filter_restricts_reporting(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/a.py": "import time\nT = time.time()\n",
            "src/repro/core/b.py": "import time\nU = time.time()\n",
        })
        found = run_rules(project, [DeterminismRule()],
                          paths=["src/repro/core/b.py"])
        assert [f.path for f in found] == ["src/repro/core/b.py"]

    def test_syntax_error_is_internal_error(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/broken.py": "def oops(:\n",
        })
        with pytest.raises(LintInternalError):
            run_rules(project, [DeterminismRule()])


class TestBaseline:
    def _finding(self, msg="m"):
        return Finding(path="src/repro/x.py", line=3, rule="R001", message=msg)

    def test_roundtrip_and_split(self, tmp_path):
        target = tmp_path / "baseline.json"
        accepted = self._finding("accepted")
        save_baseline(target, [accepted])
        baseline = load_baseline(target)
        new, suppressed = baseline.split([accepted, self._finding("new")])
        assert [f.message for f in suppressed] == ["accepted"]
        assert [f.message for f in new] == ["new"]

    def test_stale_entries_reported(self, tmp_path):
        target = tmp_path / "baseline.json"
        save_baseline(target, [self._finding("gone")])
        baseline = load_baseline(target)
        assert baseline.stale([]) == [("R001", "src/repro/x.py", "gone")]

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json").entries == set()

    def test_wrong_schema_version_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text('{"schema_version": 99, "entries": []}')
        with pytest.raises(LintInternalError):
            load_baseline(target)

    def test_line_numbers_do_not_affect_identity(self):
        a = Finding(path="p", line=1, rule="R001", message="m")
        b = Finding(path="p", line=99, rule="R001", message="m")
        baseline = Baseline(entries={a.key()})
        new, suppressed = baseline.split([b])
        assert new == [] and suppressed == [b]


class TestCli:
    def test_exit_codes_and_json_schema(self, tmp_path, capsys):
        import json

        from repro.lint.__main__ import main

        make_project(tmp_path, {
            "src/repro/core/bad.py": "import time\nT = time.time()\n",
        })
        assert main(["--root", str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["findings"][0]["rule"] == "R001"

        (tmp_path / "src/repro/core/bad.py").write_text(
            "import time\nT = time.perf_counter()\n"
        )
        assert main(["--root", str(tmp_path)]) == 0

    def test_internal_error_exit_code(self, tmp_path, capsys):
        from repro.lint.__main__ import main

        assert main(["--root", str(tmp_path / "not-a-checkout")]) == 2

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        from repro.lint.__main__ import main

        make_project(tmp_path, {
            "src/repro/core/bad.py": "import time\nT = time.time()\n",
        })
        assert main(["--root", str(tmp_path), "--write-baseline"]) == 0
        assert (tmp_path / "lint_baseline.json").is_file()
        assert main(["--root", str(tmp_path)]) == 0
        assert main(["--root", str(tmp_path), "--no-baseline"]) == 1

    def test_gha_format_annotations(self, tmp_path, capsys):
        from repro.lint.__main__ import main

        make_project(tmp_path, {
            "src/repro/core/bad.py": "import time\nT = time.time()\n",
        })
        assert main(["--root", str(tmp_path), "--format", "gha"]) == 1
        out = capsys.readouterr().out
        assert out.startswith("::error file=src/repro/core/bad.py,line=")
        assert "title=repro.lint R001::" in out
        # workflow-command data must escape newlines and percent signs
        assert "\n" not in out.rstrip("\n").split("::error", 1)[1]

    def test_unknown_pragma_warns_and_strict_exits_2(self, tmp_path, capsys):
        from repro.lint.__main__ import main

        make_project(tmp_path, {
            "src/repro/core/ok.py": (
                "import time\n"
                "T = time.perf_counter()  # lint: ignore[R999]\n"
            ),
        })
        assert main(["--root", str(tmp_path)]) == 0
        err = capsys.readouterr().err
        assert "pragma names unknown rule R999" in err
        assert main(["--root", str(tmp_path), "--strict"]) == 2

    def test_known_pragma_is_not_warned(self, tmp_path, capsys):
        from repro.lint.__main__ import main

        make_project(tmp_path, {
            "src/repro/core/ok.py": (
                "import time\n"
                "T = time.time()  # lint: ignore[R001]\n"
            ),
        })
        assert main(["--root", str(tmp_path), "--strict"]) == 0
        assert "unknown rule" not in capsys.readouterr().err

    def test_changed_mode_filters_to_git_diff(self, tmp_path, capsys):
        import subprocess

        from repro.lint.__main__ import main

        make_project(tmp_path, {
            "src/repro/core/committed.py": "import time\nT = time.time()\n",
            "src/repro/core/untouched.py": "import time\nU = time.time()\n",
        })
        git = ["git", "-C", str(tmp_path)]
        subprocess.run(git + ["init", "-q"], check=True)
        subprocess.run(git + ["add", "-A"], check=True)
        subprocess.run(
            git + ["-c", "user.email=t@t", "-c", "user.name=t",
                   "commit", "-q", "-m", "seed"],
            check=True,
        )
        # untouched since HEAD: nothing to report
        assert main(["--root", str(tmp_path), "--changed"]) == 0
        assert "no changed python files" in capsys.readouterr().out
        # touch one file: only its findings are reported
        (tmp_path / "src/repro/core/committed.py").write_text(
            "import time\nT = time.time()\nX = 1\n"
        )
        assert main(["--root", str(tmp_path), "--changed"]) == 1
        out = capsys.readouterr().out
        assert "committed.py" in out
        assert "untouched.py" not in out

    def test_changed_mode_falls_back_outside_git(self, tmp_path, capsys):
        from repro.lint.__main__ import main

        make_project(tmp_path, {
            "src/repro/core/bad.py": "import time\nT = time.time()\n",
        })
        assert main(["--root", str(tmp_path), "--changed"]) == 1
        captured = capsys.readouterr()
        assert "falling back to a full scan" in captured.err
        assert "bad.py" in captured.out


# ---------------------------------------------------------------- the repo itself


class TestRepositoryIsClean:
    def test_repo_lints_clean_modulo_baseline(self):
        project = Project(REPO_ROOT)
        findings = run_rules(project, all_rules())
        baseline = load_baseline(REPO_ROOT / "lint_baseline.json")
        new, _suppressed = baseline.split(findings)
        assert new == [], "non-baselined lint findings:\n" + "\n".join(
            f.render() for f in new
        )

    def test_baseline_has_no_stale_entries(self):
        project = Project(REPO_ROOT)
        findings = run_rules(project, all_rules())
        baseline = load_baseline(REPO_ROOT / "lint_baseline.json")
        assert baseline.stale(findings) == []
