"""Cross-matrix integration: every workload family × the OFFS modes.

A coarse but broad safety net: for each bundled workload (including the
adversarial ones) and each OFFS operating mode, the full fit → compress →
store → retrieve → serialize cycle must be lossless, and the compression
ratio must sit in the band the workload's structure implies.
"""

import pytest

from repro.core.config import OFFSConfig
from repro.core.offs import OFFSCodec
from repro.core.serialize import dumps_store, loads_store
from repro.core.store import CompressedPathStore
from repro.workloads.registry import make_dataset

WORKLOADS = ("alibaba", "rome", "porto", "sanfrancisco", "web", "collision", "noise")

MODES = {
    "default": OFFSConfig(iterations=4, sample_exponent=0),
    "fast": OFFSConfig(iterations=2, sample_exponent=0),
    "trie": OFFSConfig(iterations=3, sample_exponent=0, matcher="trie"),
    "hybrid": OFFSConfig(iterations=3, sample_exponent=0, topdown_rounds=2),
}

#: CR sanity bands per workload (tiny preset, exhaustive training).
CR_BANDS = {
    "alibaba": (1.5, 9.0),
    "rome": (1.5, 9.0),
    "porto": (1.5, 9.0),
    "sanfrancisco": (1.5, 9.0),
    "web": (1.0, 6.0),
    "collision": (2.0, 9.0),
    "noise": (0.7, 1.2),
}


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("mode", sorted(MODES))
def test_full_cycle(workload, mode):
    dataset = make_dataset(workload, "tiny")
    codec = OFFSCodec(MODES[mode])
    store = CompressedPathStore.from_codec(dataset, codec)

    # Losslessness across the whole archive.
    assert store.retrieve_all() == list(dataset)

    # Random access agrees.
    probe = len(dataset) // 3
    assert store.retrieve(probe) == dataset[probe]

    # Serialization survives.
    restored = loads_store(dumps_store(store))
    assert restored.retrieve(probe) == dataset[probe]

    # Ratio lands in the structural band (default mode only — the reduced
    # modes trade ratio deliberately).
    if mode == "default":
        low, high = CR_BANDS[workload]
        cr = store.compression_ratio()
        assert low <= cr <= high, f"{workload}: CR {cr:.2f} outside [{low}, {high}]"
